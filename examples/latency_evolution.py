#!/usr/bin/env python3
"""Latency evolution over time (paper §4, Figs 1 and 2).

Reconstructs five networks on January 1st of every year 2013–2019 plus
1 April 2020, printing the latency trajectories, active-license counts,
and the grant/cancellation churn that net counts hide (National Tower
Company's rise and fall).  Also writes gnuplot-ready ``.dat`` series and
the Fig 3 map renderings (SVG + GeoJSON) for New Line Networks.

Run:  python examples/latency_evolution.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.figures import (
    fig1_latency_evolution,
    fig2_active_licenses,
    fig3_network_maps,
)
from repro.analysis.report import format_latency_ms, format_table
from repro.core.timeline import grant_cancellation_activity
from repro.synth.scenario import paper2020_scenario
from repro.viz.figdata import write_series_dat


def main() -> None:
    scenario = paper2020_scenario()
    out = Path("out")
    out.mkdir(exist_ok=True)

    latencies = fig1_latency_evolution(scenario)
    dates = [point.date for point in next(iter(latencies.values()))]
    header = ("Licensee", *(d.strftime("%Y-%m") for d in dates))
    print(
        format_table(
            header,
            [
                (name, *(format_latency_ms(p.latency_ms, 4) for p in points))
                for name, points in latencies.items()
            ],
            title="Fig 1 — CME-NY4 latency (ms); '—' = no end-to-end path",
        )
    )

    counts = fig2_active_licenses(scenario)
    print(
        "\n"
        + format_table(
            header,
            [
                (name, *(str(c) for c in series.counts))
                for name, series in counts.items()
            ],
            title="Fig 2 — active licenses",
        )
    )

    print("\nNational Tower Company's churn (grants / cancellations by year):")
    for year in range(2013, 2019):
        grants, cancels = grant_cancellation_activity(
            scenario.database, "National Tower Company", year
        )
        print(f"  {year}: +{grants:3d} / -{cancels:3d}")

    write_series_dat(
        out / "fig1.dat",
        {
            name: [
                (p.date.year + (p.date.month - 1) / 12.0, p.latency_ms)
                for p in points
                if p.latency_ms is not None
            ]
            for name, points in latencies.items()
        },
        header="CME-NY4 one-way latency (ms)",
    )
    artifacts = fig3_network_maps(scenario, output_dir=out)
    print(f"\nwrote {out / 'fig1.dat'} and Fig 3 maps:")
    for artifact in artifacts:
        print(
            f"  {artifact.svg_path}  ({artifact.tower_count} towers, "
            f"{artifact.link_count} links)"
        )


if __name__ == "__main__":
    main()
