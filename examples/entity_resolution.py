#!/usr/bin/env python3
"""Unmasking hidden networks (paper §2.4 limitation, §6 future work).

The paper's per-licensee methodology cannot see a network whose owner
files under several names.  Its future-work section proposes two fixes —
licensee e-mail analysis and complementary-link analysis — both
implemented here and run against the corridor scenario, which plants
exactly such a split identity.

Run:  python examples/entity_resolution.py
"""

from __future__ import annotations

from repro.analysis.entities import (
    complementary_pairs,
    contact_domains,
    resolve_entities,
)
from repro.analysis.funnel import run_scraping_funnel
from repro.analysis.report import format_table
from repro.analysis.tables import table1_connected_networks
from repro.synth.scenario import SPLIT_NETWORK_EAST, paper2020_scenario


def main() -> None:
    scenario = paper2020_scenario()

    # Signal 1: shared filing-contact domains.
    print("contact domains of a few licensees:")
    for name in ("New Line Networks", "Midwest Relay Partners",
                 "Garden State Relay Partners"):
        domains = ", ".join(sorted(contact_domains(scenario.database, name)))
        print(f"  {name:32s} {domains}")

    # Signals combined: shared domain + complementary links.
    resolved = resolve_entities(
        scenario.database, scenario.corridor, scenario.snapshot_date
    )
    print(
        "\n"
        + format_table(
            ("Shared domain", "Licensees", "Joint CME-NY4 (ms)"),
            [
                (
                    entity.domain,
                    " + ".join(entity.licensees),
                    f"{entity.analysis.joint_latency_ms:.5f}",
                )
                for entity in resolved
            ],
            title="Resolved entities (domain + complementarity confirmed)",
        )
    )

    # Where would the hidden network have ranked?
    rankings = table1_connected_networks(scenario)
    joint_ms = resolved[0].analysis.joint_latency_ms
    rank = 1 + sum(1 for r in rankings if r.latency_ms < joint_ms)
    print(
        f"\nThe joint network would have ranked #{rank} of "
        f"{len(rankings) + 1} in Table 1 at {joint_ms:.5f} ms — invisible "
        "to the per-licensee analysis."
    )

    # The geometry-only search (the paper's 'with some uncertainty' route).
    funnel = run_scraping_funnel(
        scenario.database, scenario.corridor, scenario.snapshot_date
    )
    candidates = [
        name
        for name in funnel.shortlisted_licensees
        if name not in funnel.connected_licensees
    ] + [SPLIT_NETWORK_EAST]
    pairs = complementary_pairs(
        scenario.database, scenario.corridor, candidates, scenario.snapshot_date
    )
    print(
        f"\ngeometric complementarity over {len(candidates)} non-connected "
        f"licensees finds {len(pairs)} pair(s):"
    )
    for pair in pairs:
        print(f"  {' + '.join(pair.licensees)} -> {pair.joint_latency_ms:.5f} ms")


if __name__ == "__main__":
    main()
