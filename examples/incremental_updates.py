#!/usr/bin/env python3
"""A production ingest pipeline: snapshot + weekly transactions (§2.2 ops).

The FCC publishes full dumps and incremental transaction files; a
long-running monitor ingests the snapshot once and then replays
transactions.  This example runs that pipeline over the corridor's
2016→2020 history: snapshot at 2016-01-01, derive the transaction log,
validate the incoming records, replay, and verify the result reproduces
Table 1 exactly — then watches the race year by year.

Run:  python examples/incremental_updates.py
"""

from __future__ import annotations

import io

from repro.analysis.flux import race_history
from repro.analysis.report import format_table
from repro.core.timeline import yearly_snapshot_dates
from repro.metrics.rankings import rank_connected_networks
from repro.synth.scenario import paper2020_scenario
from repro.uls.transactions import (
    apply_transactions,
    read_transaction_log,
    snapshot_database,
    transactions_between,
    write_transaction_log,
)
from repro.uls.validation import partition_by_severity, validate_licenses

import datetime as dt

T0 = dt.date(2016, 1, 1)


def main() -> None:
    scenario = paper2020_scenario()

    # 1. Bootstrap from the full snapshot.
    base = snapshot_database(scenario.database, T0)
    print(f"snapshot {T0}: {len(base)} licenses on file")

    # 2. Derive + serialise + re-read the transaction log (the weekly files).
    log = transactions_between(scenario.database, T0, scenario.snapshot_date)
    buffer = io.StringIO()
    write_transaction_log(log, buffer)
    buffer.seek(0)
    replayable = read_transaction_log(buffer)
    grants = sum(1 for tx in replayable if tx.action == "grant")
    cancels = sum(1 for tx in replayable if tx.action == "cancel")
    print(
        f"transaction log {T0} -> {scenario.snapshot_date}: "
        f"{len(replayable)} events ({grants} grants, {cancels} cancellations; "
        f"{len(buffer.getvalue()) // 1024} KiB serialised)"
    )

    # 3. Validate incoming records before applying (the scrubbing pass).
    incoming = [tx.license for tx in replayable if tx.license is not None]
    errors, warnings = partition_by_severity(validate_licenses(incoming))
    print(f"validation: {len(errors)} errors, {len(warnings)} warnings")
    assert not errors

    # 4. Replay and verify against the ground-truth snapshot.
    apply_transactions(base, replayable)
    rankings = rank_connected_networks(
        base, scenario.corridor, scenario.snapshot_date
    )
    reference = rank_connected_networks(
        scenario.database, scenario.corridor, scenario.snapshot_date
    )
    assert [(r.licensee, round(r.latency_ms, 5)) for r in rankings] == [
        (r.licensee, round(r.latency_ms, 5)) for r in reference
    ]
    print(
        "replayed database reproduces Table 1 exactly "
        f"({rankings[0].licensee} leads at {rankings[0].latency_ms:.5f} ms)\n"
    )

    # 5. Watch the race year by year (§3: 'rankings are still in flux').
    history = race_history(scenario, dates=yearly_snapshot_dates())
    rows = [
        (
            date.isoformat(),
            leader or "—",
            "—" if gap is None else f"{gap:+.1f}",
        )
        for (date, leader), (_, gap) in zip(
            history.leaders, history.gap_to_bound_us()
        )
    ]
    print(
        format_table(
            ("Snapshot", "Fastest network", "Gap to c-bound (µs)"),
            rows,
            title=f"The race over time ({history.leadership_changes} leadership changes)",
        )
    )


if __name__ == "__main__":
    main()
