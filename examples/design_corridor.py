#!/usr/bin/env python3
"""Design your own corridor network (paper §6 takeaways).

Given a market of candidate tower sites (pricier near the geodesic — the
§1 bidding wars), designs a CME→NY4 network under a lease budget:

1. a latency-optimal trunk via a resource-constrained shortest path;
2. greedy 6 GHz bypass augmentation for APA (takeaways 1 and 3);
3. evaluation with the paper's own metrics plus a storm ensemble.

Run:  python examples/design_corridor.py [trunk_budget] [bypass_budget]
"""

from __future__ import annotations

import sys

from repro.analysis.report import format_table
from repro.core.corridor import CME, NY4
from repro.design.evaluate import (
    NetworkDesign,
    corridor_endpoints,
    design_to_network,
    evaluate_design,
    latency_lower_bound_ms,
)
from repro.design.redundancy import augment_with_bypasses
from repro.design.sites import CandidateSite, generate_site_pool
from repro.design.trunk import design_trunk
from repro.geodesy.path import offset_point
from repro.viz.svgmap import render_network_svg


def main() -> None:
    trunk_budget = float(sys.argv[1]) if len(sys.argv) > 1 else 45.0
    bypass_budget = float(sys.argv[2]) if len(sys.argv) > 2 else 18.0

    pool = generate_site_pool(CME.point, NY4.point, n_sites=400, seed=3)
    print(
        f"site market: {len(pool)} candidate towers in a 30 km band; "
        f"budget {trunk_budget:g} (trunk) + {bypass_budget:g} (redundancy)"
    )

    west_gw = CandidateSite(
        "gw-west", offset_point(CME.point, NY4.point, 0.0008, 0.0), 3.0, 0.0
    )
    east_gw = CandidateSite(
        "gw-east", offset_point(CME.point, NY4.point, 0.9992, 0.0), 3.0, 0.0
    )
    trunk = design_trunk(pool, west_gw, east_gw, budget=trunk_budget)
    print(
        f"trunk: {trunk.hop_count} hops, {trunk.microwave_length_m / 1000.0:.2f} km, "
        f"cost {trunk.total_cost:.1f}"
    )

    bypasses = tuple(augment_with_bypasses(trunk, pool, budget=bypass_budget))
    covered = sorted(set().union(*(b.covered_links for b in bypasses))) if bypasses else []
    print(f"redundancy: {len(bypasses)} bypass towers covering {len(covered)} links")

    west, east = corridor_endpoints(CME.point, NY4.point)
    design = NetworkDesign(trunk=trunk, bypasses=bypasses, west=west, east=east)
    report = evaluate_design(design, n_storms=20)
    bound = latency_lower_bound_ms(CME.point, NY4.point)

    print(
        "\n"
        + format_table(
            ("Metric", "Designed network", "Context"),
            [
                ("one-way latency", f"{report.latency_ms:.5f} ms",
                 f"c-bound {bound:.5f}; NLN (paper) 3.96171"),
                ("path stretch", f"{report.stretch:.4f}", "NLN ~1.0013"),
                ("APA (5% slack)", f"{report.apa:.0%}", "NLN 54%, WH 85%"),
                ("storm survival", f"{report.storm_survival:.0%}",
                 "NLN ~33%, WH 100% on the same ensemble"),
                ("towers on path", str(report.tower_count), "NLN 25, JM 22"),
                ("median hop", f"{report.median_hop_km:.1f} km", "WH 36, NLN 48.5"),
                ("total annual cost", f"{report.total_cost:.1f}", ""),
            ],
            title="Design report",
        )
    )

    network = design_to_network(design)
    render_network_svg(network, "out/designed_network.svg",
                       highlight_route=("WEST", "EAST"))
    print("\nwrote out/designed_network.svg")


if __name__ == "__main__":
    main()
