#!/usr/bin/env python3
"""The data pipeline end to end (paper §2): scrape → reconstruct → export.

Drives the simulated FCC ULS portal exactly as the paper's tool drove the
real one: geographic search around CME, the MG/FXO site filter, the
filing-count shortlist, per-licensee detail scraping — then reconstructs
one network from the *scraped* records, round-trips the raw data through
the pipe-delimited ULS dump format, and exports YAML/GeoJSON/SVG.

Run:  python examples/scrape_and_export.py
"""

from __future__ import annotations

from pathlib import Path

from repro.constants import MIN_FILINGS_FOR_SHORTLIST
from repro.core.reconstruction import NetworkReconstructor
from repro.core.yamlio import network_to_yaml
from repro.synth.scenario import paper2020_scenario
from repro.uls.dumpio import read_uls_dump, write_uls_dump
from repro.uls.portal import UlsPortal
from repro.uls.scraper import UlsScraper
from repro.viz.geojson import network_to_geojson
from repro.viz.svgmap import render_network_svg


def main() -> None:
    scenario = paper2020_scenario()
    cme = scenario.corridor.site("CME").point
    portal = UlsPortal(scenario.database)
    scraper = UlsScraper(portal)

    # §2.2 step 1: geographic search, 10 km around CME, MG/FXO only.
    rows = scraper.geographic_search(cme.latitude, cme.longitude, 10.0)
    candidates = sorted(
        {
            row["licensee_name"]
            for row in rows
            if row["radio_service_code"] == "MG" and row["station_class"] == "FXO"
        }
    )
    print(f"geographic search: {len(rows)} licenses, {len(candidates)} candidate licensees")

    # §2.2 step 2: shortlist by filing count.
    shortlisted = [
        name
        for name in candidates
        if len(scraper.licenses_of(name)) >= MIN_FILINGS_FOR_SHORTLIST
    ]
    print(f"shortlisted (>= {MIN_FILINGS_FOR_SHORTLIST} filings): {len(shortlisted)}")

    # §2.2 step 3: scrape one licensee's full license set.
    target = "Webline Holdings"
    licenses = scraper.scrape_licensee(target)
    print(
        f"scraped {len(licenses)} license detail pages for {target} "
        f"({scraper.stats.detail_pages} fetched, {scraper.stats.cache_hits} cached)"
    )

    out = Path("out")
    out.mkdir(exist_ok=True)

    # Round-trip the scraped records through the ULS dump format.
    dump_path = out / "webline_holdings.uls"
    write_uls_dump(licenses, dump_path)
    reread = read_uls_dump(dump_path)
    assert len(reread) == len(licenses)
    print(f"wrote + re-read {dump_path} ({dump_path.stat().st_size} bytes)")

    # Reconstruct from the re-read records and export.
    reconstructor = NetworkReconstructor(scenario.corridor)
    network = reconstructor.reconstruct(
        reread, scenario.snapshot_date, licensee=target
    )
    route = network.lowest_latency_route("CME", "NY4")
    print(
        f"reconstructed {target}: {network.tower_count} towers, "
        f"CME-NY4 {route.latency_ms:.5f} ms over {route.tower_count} towers"
    )

    stem = out / "webline_holdings_2020-04-01"
    network_to_yaml(network, stem.with_suffix(".yaml"))
    network_to_geojson(network, stem.with_suffix(".geojson"))
    render_network_svg(network, stem.with_suffix(".svg"))
    print(f"exported {stem}.yaml / .geojson / .svg")


if __name__ == "__main__":
    main()
