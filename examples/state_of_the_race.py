#!/usr/bin/env python3
"""The state of the race (paper §3 + §5): Tables 1, 2 and 3.

Replays the full §2.2 scraping funnel through the simulated ULS portal,
then ranks every connected network on each corridor path and contrasts
the speed-optimised leader (New Line Networks) with the
reliability-optimised survivor (Webline Holdings).

Run:  python examples/state_of_the_race.py
"""

from __future__ import annotations

from repro.analysis.funnel import run_scraping_funnel
from repro.analysis.report import format_latency_ms, format_table
from repro.analysis.tables import (
    table1_connected_networks,
    table2_top_networks,
    table3_apa,
)
from repro.metrics.rankings import latency_gap_us
from repro.synth.scenario import paper2020_scenario


def main() -> None:
    scenario = paper2020_scenario()

    funnel = run_scraping_funnel(
        scenario.database, scenario.corridor, scenario.snapshot_date
    )
    candidates, shortlisted, connected = funnel.counts
    print(
        f"funnel: {candidates} candidate licensees near CME -> "
        f"{shortlisted} with >= 11 filings -> {connected} connected "
        f"end-to-end ({funnel.pages_scraped} portal pages scraped)\n"
    )

    rankings = table1_connected_networks(scenario)
    print(
        format_table(
            ("Licensee", "Latency (ms)", "APA (%)", "#Towers"),
            [
                (r.licensee, format_latency_ms(r.latency_ms), r.apa_percent, r.tower_count)
                for r in rankings
            ],
            title="Table 1 — connected networks, CME-NY4, 2020-04-01",
        )
    )
    print(
        f"\nNLN leads PB by {latency_gap_us(rankings[0], rankings[1]):.2f} us —"
        " the sub-microsecond scale the race is fought at.\n"
    )

    rows = []
    for path_ranking in table2_top_networks(scenario):
        for rank, entry in enumerate(path_ranking.top, start=1):
            rows.append(
                (
                    f"{path_ranking.source}-{path_ranking.target}",
                    f"{path_ranking.geodesic_km:.0f}",
                    rank,
                    entry.licensee,
                    format_latency_ms(entry.latency_ms),
                )
            )
    print(
        format_table(
            ("Path", "Geodesic km", "Rank", "Licensee", "Latency (ms)"),
            rows,
            title="Table 2 — fastest networks per path",
        )
    )

    apa_rows = table3_apa(scenario)
    print(
        "\n"
        + format_table(
            ("Path", "NLN", "WH"),
            [
                (
                    f"{row.path[0]}-{row.path[1]}",
                    f"{row.values['New Line Networks']}%",
                    f"{row.values['Webline Holdings']}%",
                )
                for row in apa_rows
            ],
            title="Table 3 — alternate path availability (redundancy)",
        )
    )
    print(
        "\nWH is slower in fair weather on every path, but dominates on "
        "redundancy — the design trade §5 argues keeps it in business."
    )


if __name__ == "__main__":
    main()
