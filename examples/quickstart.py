#!/usr/bin/env python3
"""Quickstart: reconstruct an HFT network and estimate its latency.

Builds the calibrated ``paper2020`` corridor scenario (synthetic FCC
license data), reconstructs New Line Networks — the fastest network of
the paper's Table 1 — as of 1 April 2020, routes CME → NY4, and exports
the network as YAML.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

import repro


def main() -> None:
    scenario = repro.paper2020_scenario()
    print(f"scenario: {len(scenario.database)} licenses, "
          f"{len(scenario.database.licensee_names())} licensees, "
          f"snapshot {scenario.snapshot_date}")

    reconstructor = repro.NetworkReconstructor(scenario.corridor)
    network = reconstructor.reconstruct_licensee(
        scenario.database, "New Line Networks", scenario.snapshot_date
    )
    print(f"\n{network.licensee}: {network.tower_count} towers, "
          f"{network.link_count} microwave links")

    for target in ("NY4", "NYSE", "NASDAQ"):
        route = network.lowest_latency_route("CME", target)
        geodesic_km = scenario.corridor.geodesic_m("CME", target) / 1000.0
        print(
            f"  CME -> {target:6s}: {route.latency_ms:.5f} ms one-way over "
            f"{route.tower_count} towers "
            f"({route.microwave_length_m / 1000.0:.1f} km MW + "
            f"{route.fiber_length_m / 1000.0:.2f} km fiber; "
            f"geodesic {geodesic_km:.0f} km)"
        )

    # The paper's headline redundancy metric.
    apa = repro.alternate_path_availability(network, "CME", "NY4")
    print(f"\nalternate path availability (CME-NY4): {apa:.0%}")

    out = Path("out")
    out.mkdir(exist_ok=True)
    path = out / "new_line_networks_2020-04-01.yaml"
    repro.network_to_yaml(network, path)
    print(f"wrote {path} ({path.stat().st_size} bytes of human-readable YAML)")


if __name__ == "__main__":
    main()
