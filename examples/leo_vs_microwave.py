#!/usr/bin/env python3
"""Satellites versus terrestrial microwave (paper §6, Fig 5).

Compares one-way latency over ground distance for terrestrial microwave,
idealised LEO shells at 550 km and 300 km, and long-haul fiber — then
routes two concrete segments over a Starlink-like Walker constellation
with +Grid inter-satellite links: the Chicago–NJ corridor (microwave
wins) and Frankfurt–Washington (LEO beats fiber across the ocean).

Run:  python examples/leo_vs_microwave.py
"""

from __future__ import annotations

from repro.analysis.figures import fig5_leo_comparison
from repro.analysis.report import format_table
from repro.geodesy import GeoPoint, geodesic_distance
from repro.leo.constellation import STARLINK_SHELL, Constellation
from repro.leo.latency import (
    constellation_latency_s,
    fiber_latency_s,
    leo_fiber_crossover_km,
    microwave_latency_s,
    transatlantic_endpoints,
)

CME = GeoPoint(41.7580, -88.1801)
NY4 = GeoPoint(40.7773, -74.0700)


def main() -> None:
    points = fig5_leo_comparison()
    rows = [
        (
            f"{p.distance_km:.0f}",
            f"{p.microwave_ms:.3f}",
            f"{p.leo_550_ms:.3f}",
            f"{p.leo_300_ms:.3f}",
            f"{p.fiber_ms:.3f}",
        )
        for p in points
        if p.distance_km % 1000 == 0
    ]
    print(
        format_table(
            ("km", "MW (ms)", "LEO 550", "LEO 300", "fiber"),
            rows,
            title="Fig 5 — one-way latency vs ground distance",
        )
    )
    print(
        f"\nLEO (550 km shell) beats long-haul fiber beyond "
        f"~{leo_fiber_crossover_km(550_000.0):.0f} km of ground distance."
    )

    constellation = Constellation(STARLINK_SHELL)
    print(
        f"\nRouting over a {STARLINK_SHELL.n_planes}x"
        f"{STARLINK_SHELL.sats_per_plane} Walker shell at "
        f"{STARLINK_SHELL.altitude_m / 1000.0:.0f} km (+Grid ISLs):"
    )

    for label, a, b, buildable in (
        ("CME-NY4 (corridor)", CME, NY4, True),
        ("Frankfurt-Washington", *transatlantic_endpoints(), False),
    ):
        distance = geodesic_distance(a, b)
        leo = constellation_latency_s(constellation, a, b)
        mw = microwave_latency_s(distance)
        fiber = fiber_latency_s(distance)
        if buildable and mw < leo:
            verdict = "terrestrial MW wins"
        elif not buildable:
            verdict = "LEO wins: no MW towers across the ocean, and LEO beats fiber"
        else:
            verdict = "LEO wins"
        print(
            f"  {label:22s} {distance / 1000.0:7.0f} km: "
            f"LEO {leo * 1e3:6.3f} ms, MW {mw * 1e3:6.3f} ms, "
            f"fiber {fiber * 1e3:6.3f} ms -> {verdict}"
        )

    print(
        "\nThe paper's takeaway: HFT will keep microwave on land, but LEO "
        "constellations open the oceanic segments (Tokyo-New York, "
        "Frankfurt-Washington) that fiber serves poorly."
    )


if __name__ == "__main__":
    main()
