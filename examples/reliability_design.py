#!/usr/bin/env python3
"""Why slower networks survive (paper §5): reliability engineering.

Walks through the microwave-engineering substrate behind the paper's
reliability argument — fade margins, rain attenuation, per-link
availability — then simulates a storm season over the corridor to show
the latency crossover: New Line Networks wins in fair weather, Webline
Holdings wins when it rains hard on the 11 GHz trunk.

Run:  python examples/reliability_design.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.reconstruction import NetworkReconstructor
from repro.metrics.frequencies import shortest_path_frequencies_ghz
from repro.metrics.link_lengths import link_length_cdf
from repro.radio.availability import link_availability, rain_rate_to_kill_link_mm_h
from repro.radio.budget import LinkBudget
from repro.synth.scenario import paper2020_scenario
from repro.synth.weather import random_storm, storm_latency_ms


def engineering_table() -> None:
    budget = LinkBudget()
    rows = []
    for frequency in (6.0, 11.0, 18.0, 23.0):
        for distance in (36.0, 48.5):
            kill = rain_rate_to_kill_link_mm_h(frequency, distance, budget)
            rows.append(
                (
                    f"{frequency:.0f} GHz",
                    f"{distance:.1f} km",
                    f"{budget.fade_margin_db(frequency, distance):.1f} dB",
                    f"{100 * link_availability(frequency, distance, budget):.4f}%",
                    "never" if kill == float("inf") else f"{kill:.0f} mm/h",
                )
            )
    print(
        format_table(
            ("Band", "Hop", "Fade margin", "Availability", "Rain to kill"),
            rows,
            title="Link engineering: why 6 GHz and short hops are robust "
            "(36 km = WH's median hop, 48.5 km = NLN's)",
        )
    )


def storm_season() -> None:
    scenario = paper2020_scenario()
    reconstructor = NetworkReconstructor(scenario.corridor)
    nln = reconstructor.reconstruct_licensee(
        scenario.database, "New Line Networks", scenario.snapshot_date
    )
    wh = reconstructor.reconstruct_licensee(
        scenario.database, "Webline Holdings", scenario.snapshot_date
    )

    print("\nDesign contrast on the CME-NY4 shortest path:")
    for name, network in (("NLN", nln), ("WH", wh)):
        cdf = link_length_cdf(network, "CME", "NY4")
        freqs = shortest_path_frequencies_ghz(network, "CME", "NY4")
        share_6ghz = sum(1 for f in freqs if f < 7.0) / len(freqs)
        print(
            f"  {name}: median hop {cdf.median:.1f} km, "
            f"{share_6ghz:.0%} of channels under 7 GHz"
        )

    corridor = (
        scenario.corridor.site("CME").point,
        scenario.corridor.site("NY4").point,
    )
    rows = []
    wh_wins = 0
    for seed in range(12):
        storm = random_storm(seed, corridor, n_cells=4, peak_mm_h=(60.0, 170.0))
        nln_ms = storm_latency_ms(nln, storm, "CME", "NY4")
        wh_ms = storm_latency_ms(wh, storm, "CME", "NY4")
        winner = "WH" if (nln_ms is None or (wh_ms or 9e9) < nln_ms) else "NLN"
        wh_wins += winner == "WH"
        rows.append(
            (
                seed,
                f"{max(c.peak_rate_mm_h for c in storm.cells):.0f} mm/h",
                "down" if nln_ms is None else f"{nln_ms:.5f}",
                "down" if wh_ms is None else f"{wh_ms:.5f}",
                winner,
            )
        )
    print(
        "\n"
        + format_table(
            ("Storm", "Peak rain", "NLN (ms)", "WH (ms)", "Faster"),
            rows,
            title="A storm season on the corridor (CME-NY4 one-way latency)",
        )
    )
    print(
        f"\nWH is faster (or the only network standing) in {wh_wins}/12 storms"
        " — §5's conclusion: the most competitive firms would buy both."
    )


def main() -> None:
    engineering_table()
    storm_season()


if __name__ == "__main__":
    main()
