"""Physical constants and corridor-wide defaults.

The values here mirror the modelling assumptions of the paper (§2.3):
microwave links are traversed at (almost) the speed of light in air, fiber
tails at roughly two thirds of c, and data centers are assumed to have fiber
connectivity to towers within 50 km.
"""

from __future__ import annotations

#: Speed of light in vacuum, meters per second.
SPEED_OF_LIGHT = 299_792_458.0

#: Speed of a signal over a microwave link.  The paper treats the microwave
#: part of a path as traversed at "(almost) c"; we use c exactly, matching
#: the paper's latency arithmetic (1,186 km -> 3.955 ms lower bound).
MICROWAVE_SPEED = SPEED_OF_LIGHT

#: Speed of a signal in optical fiber (refractive index ~1.5), i.e. 2c/3.
FIBER_SPEED = SPEED_OF_LIGHT * 2.0 / 3.0

#: Maximum length of the fiber tail connecting a data center to the nearest
#: towers of a network (paper §2.3: "up to 50 km away").
MAX_FIBER_TAIL_M = 50_000.0

#: Latency-slack factor used for the alternate-path-availability metric and
#: for near-optimal path enumeration (paper §5: "not more than 5% greater
#: than the c-speed latency along the geodesic").
APA_SLACK_FACTOR = 1.05

#: Radius of the geographic license search around CME (paper §2.2: 10 km).
CME_SEARCH_RADIUS_M = 10_000.0

#: Minimum number of license filings for a licensee to be shortlisted
#: (paper §2.2: networks with fewer than 11 filings cannot span the
#: ~1,100 km corridor with <100 km hops).
MIN_FILINGS_FOR_SHORTLIST = 11

#: FCC radio service code for the Microwave Industrial/Business Pool.
RADIO_SERVICE_MG = "MG"

#: FCC station class for Operational Fixed microwave stations.
STATION_CLASS_FXO = "FXO"

#: Tolerance used when deciding that two license endpoints refer to the same
#: physical tower.  FCC filings quote coordinates to fractions of an
#: arc-second; 30 m comfortably absorbs rounding while never merging
#: distinct towers (which are kilometres apart).
STITCH_TOLERANCE_M = 30.0

#: Conventional licensed point-to-point microwave bands on the corridor, GHz.
MICROWAVE_BANDS_GHZ = (6.0, 11.0, 18.0, 23.0)
