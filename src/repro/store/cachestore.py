"""The persistent cache store: disk-backed warm starts for engines.

:class:`CacheStore` persists :class:`~repro.core.engine
.EngineCacheExport` payloads (snapshot cache, route cache, geodesic
memo, temporal-index cursors) under content-addressed fingerprints
(:func:`~repro.store.fingerprint.store_fingerprint`), so a cold process
— a CLI driver, a restarted server, a parallel worker — starts from the
previous run's warm state instead of rebuilding it.

Failure discipline: the store **never makes an answer wrong and never
crashes a driver**.  Unreadable or unpicklable entries are quarantined
and treated as misses; entries whose envelope (schema / fingerprint /
payload type / params) does not match are stale misses; every error path
degrades to a cold start that produces byte-identical output anyway.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.core.engine import EngineCacheExport
from repro.store.fingerprint import STORE_SCHEMA_VERSION, store_fingerprint
from repro.store.layout import (
    default_cache_dir,
    list_entries,
    quarantine_entry,
    read_entry,
    write_entry,
)


@dataclass(frozen=True)
class StoreEntry:
    """One published entry, as reported by :meth:`CacheStore.stat`."""

    fingerprint: str
    path: Path
    size_bytes: int
    mtime_s: float


@dataclass(frozen=True)
class StoreSeedRef:
    """A tiny picklable pointer to a published entry.

    :class:`~repro.parallel.grid.GridSession` ships one of these to each
    worker instead of the full (potentially multi-megabyte) cache
    export; the worker resolves it against the on-disk store in its own
    process.  A missing or corrupt entry resolves to ``None`` — the
    worker just starts cold, byte-identical either way.
    """

    cache_dir: str
    fingerprint: str

    def load(self) -> EngineCacheExport | None:
        return CacheStore(self.cache_dir).load_export(self.fingerprint)


class CacheStore:
    """A content-addressed on-disk store of engine cache exports.

    Parameters
    ----------
    cache_dir:
        Store root.  ``None`` resolves ``$REPRO_CACHE_DIR``, then
        ``$XDG_CACHE_HOME/repro``, then ``~/.cache/repro``.

    Engines attach via the constructor's ``store=`` parameter (or the
    process-wide :data:`repro.core.engine.STORE_DEFAULT` the CLI sets):
    :meth:`attach` registers the engine for :meth:`checkpoint_all` and
    immediately loads a matching entry if one exists.
    """

    def __init__(self, cache_dir: "Path | str | None" = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.loads = 0
        self.hits = 0
        self.misses = 0
        self.saves = 0
        self.corrupt = 0
        self.stale = 0
        self._engines: list = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    def fingerprint_for(self, engine) -> str:
        """The entry key for an engine's (database, params, kernel)."""
        return store_fingerprint(
            engine.database.content_digest(), engine.params_key, engine.kernel
        )

    # ------------------------------------------------------------------
    # Engine attachment
    # ------------------------------------------------------------------

    def attach(self, engine) -> bool:
        """Register ``engine`` for checkpointing and warm it if possible.

        Returns whether a store entry was loaded into the engine.
        """
        with self._lock:
            self._engines.append(engine)
        return self.load_into(engine)

    def engines(self) -> tuple:
        """Engines attached to this store, in attachment order."""
        with self._lock:
            return tuple(self._engines)

    def load_into(self, engine) -> bool:
        """Seed ``engine`` from its matching entry; ``False`` on any miss."""
        fingerprint = self.fingerprint_for(engine)
        with obs.span("store.load", fingerprint=fingerprint[:12]) as span:
            export = self.load_export(fingerprint)
            if export is None or export.params_key != engine.params_key:
                span.tag(outcome="miss")
                return False
            engine.seed_cache_state(export)
            span.tag(
                outcome="hit",
                snapshots=len(export.snapshots),
                routes=len(export.routes),
            )
        return True

    def save_from(self, engine) -> Path:
        """Publish ``engine``'s current cache contents as its entry.

        Callers that may race with other threads should go through
        :meth:`~repro.core.engine.CorridorEngine.checkpoint`, which holds
        the engine lock across the export.
        """
        fingerprint = self.fingerprint_for(engine)
        payload = pickle.dumps(
            {
                "schema": STORE_SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "export": engine.export_cache_state(),
            },
            protocol=4,
        )
        with obs.span(
            "store.save", fingerprint=fingerprint[:12], bytes=len(payload)
        ):
            path = write_entry(self.cache_dir, fingerprint, payload)
        with self._lock:
            self.saves += 1
        obs.count("store.save")
        return path

    def checkpoint_all(self) -> int:
        """Checkpoint every attached engine; returns how many saved."""
        saved = 0
        for engine in self.engines():
            if engine.checkpoint() is not None:
                saved += 1
        return saved

    # ------------------------------------------------------------------
    # Raw entry access
    # ------------------------------------------------------------------

    def load_export(self, fingerprint: str) -> EngineCacheExport | None:
        """The export stored under ``fingerprint``, or ``None``.

        Misses are silent; corrupt entries (unreadable pickles) are
        quarantined and counted; well-formed pickles with a mismatched
        envelope (schema bump, foreign fingerprint, wrong payload type)
        are *stale* misses left in place for ``cache gc`` to age out.
        """
        with self._lock:
            self.loads += 1
        obs.count("store.load")
        data = read_entry(self.cache_dir, fingerprint)
        if data is None:
            return self._miss()
        try:
            payload = pickle.loads(data)
        except Exception:  # lint: disable=broad-except (unpickling an arbitrary corrupt file can raise nearly anything; the contract is quarantine-and-go-cold, never crash the driver)
            quarantine_entry(self.cache_dir, fingerprint)
            with self._lock:
                self.corrupt += 1
            obs.count("store.corrupt")
            return self._miss()
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != STORE_SCHEMA_VERSION
            or payload.get("fingerprint") != fingerprint
            or not isinstance(payload.get("export"), EngineCacheExport)
        ):
            with self._lock:
                self.stale += 1
            obs.count("store.stale")
            return self._miss()
        with self._lock:
            self.hits += 1
        obs.count("store.hit")
        return payload["export"]

    def _miss(self) -> None:
        with self._lock:
            self.misses += 1
        obs.count("store.miss")
        return None

    # ------------------------------------------------------------------
    # Maintenance (cache stat / gc / clear)
    # ------------------------------------------------------------------

    def stat(self) -> tuple[StoreEntry, ...]:
        """Published entries with sizes and mtimes, sorted by fingerprint."""
        entries = []
        for path in list_entries(self.cache_dir):
            try:
                info = path.stat()
            except OSError:
                continue
            entries.append(
                StoreEntry(
                    fingerprint=path.stem,
                    path=path,
                    size_bytes=info.st_size,
                    mtime_s=info.st_mtime,
                )
            )
        return tuple(entries)

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_s: float | None = None,
        now_s: float | None = None,
    ) -> tuple[StoreEntry, ...]:
        """Remove entries beyond a size or age bound; returns the removed.

        ``max_bytes`` keeps the newest entries whose cumulative size fits
        the bound; ``max_age_s`` removes entries older than the bound
        relative to ``now_s``.  The store never reads the wall clock
        itself — the one ``time.time()`` call lives in the CLI, behind an
        explicit lint pragma — so ``max_age_s`` requires ``now_s``.
        """
        if max_age_s is not None and now_s is None:
            raise ValueError("max_age_s requires now_s")
        removed: dict[str, StoreEntry] = {}
        entries = sorted(self.stat(), key=lambda e: e.mtime_s, reverse=True)
        if max_age_s is not None:
            for entry in entries:
                if now_s - entry.mtime_s > max_age_s:
                    removed[entry.fingerprint] = entry
        if max_bytes is not None:
            kept_bytes = 0
            for entry in entries:
                if entry.fingerprint in removed:
                    continue
                if kept_bytes + entry.size_bytes > max_bytes:
                    removed[entry.fingerprint] = entry
                else:
                    kept_bytes += entry.size_bytes
        for entry in removed.values():
            try:
                entry.path.unlink()
            except OSError:
                pass
        return tuple(
            sorted(removed.values(), key=lambda e: e.fingerprint)
        )

    def clear(self) -> int:
        """Remove every entry (quarantine included); returns the count.

        Only counts published entries; quarantined and stale temp files
        are swept as a side effect.
        """
        count = 0
        for entry in self.stat():
            try:
                entry.path.unlink()
            except OSError:
                continue
            count += 1
        for extra in self._sweepable():
            try:
                extra.unlink()
            except OSError:
                pass
        return count

    def _sweepable(self) -> list[Path]:
        """Quarantined entries and abandoned temp files."""
        from repro.store.layout import entry_dir, quarantine_dir

        paths: list[Path] = []
        qdir = quarantine_dir(self.cache_dir)
        try:
            paths.extend(sorted(p for p in qdir.iterdir() if p.is_file()))
        except OSError:
            pass
        try:
            children = sorted(entry_dir(self.cache_dir).iterdir())
        except OSError:
            children = []
        paths.extend(
            p for p in children if p.is_file() and p.name.startswith(".tmp-")
        )
        return paths

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Lifetime load/save activity, for ``/stats`` and ``cache stat``."""
        with self._lock:
            return {
                "loads": self.loads,
                "hits": self.hits,
                "misses": self.misses,
                "saves": self.saves,
                "corrupt": self.corrupt,
                "stale": self.stale,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheStore({str(self.cache_dir)!r})"
