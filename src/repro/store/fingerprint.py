"""Content-addressed keys for the persistent cache store.

An on-disk entry is only reusable when *everything* that shaped the
cached values is unchanged.  The fingerprint therefore hashes:

- the database **content digest** (:meth:`repro.uls.database.UlsDatabase
  .content_digest`) — any license added/changed bumps the generation and
  changes the digest, invalidating every persisted entry for that
  database;
- the engine's **reconstruction parameters** (``params_key``) — entries
  under different stitch tolerances, fiber modes, latency models, etc.
  must never be confused;
- the **kernel** — columnar and object kernels are byte-identical (and
  deliberately share in-memory cache keys), but persisted payloads
  produced under one kernel should not mask a regression in the other,
  so warm stores are kernel-scoped;
- the **store schema version** — the on-disk payload envelope;
- the **code version** — a manual guard bumped whenever the pickled
  payload classes (`EngineCacheExport`, networks, routes, memo entries)
  change shape.

Fingerprints are plain sha256 hexdigests, used verbatim as entry file
names, so the store is content-addressed: concurrent writers publishing
the same fingerprint are by construction publishing equivalent payloads.
"""

from __future__ import annotations

import hashlib

#: On-disk payload envelope version.  Bump when the pickled dict layout
#: (not the cached values) changes; old entries become stale misses.
STORE_SCHEMA_VERSION = 1

#: Manual guard over the *pickled value* classes.  Bump whenever
#: ``EngineCacheExport`` or anything reachable from it (networks, routes,
#: geodesic solutions, cursors) changes in a way that would make an old
#: pickle wrong or unreadable.
CODE_VERSION = "2026.08"


def store_fingerprint(
    content_digest: str, params_key: tuple, kernel: str
) -> str:
    """The entry key for one (database, params, kernel) combination."""
    hasher = hashlib.sha256()
    for part in (
        content_digest,
        repr(params_key),
        kernel,
        str(STORE_SCHEMA_VERSION),
        CODE_VERSION,
    ):
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()
