"""On-disk layout of the persistent cache store.

::

    <cache_dir>/
        v1/                          # one directory per schema version
            <fingerprint>.pkl        # published entries (atomic renames)
            .tmp-<fp>-<pid>-<tid>    # in-flight writes, never read
            quarantine/              # corrupt entries, moved aside

Every path computation and raw file touch lives here — the
cache-discipline lint rule confines calls to these functions to
``src/repro/store/`` so no other layer can grow a private on-disk
protocol.  Publication is write-then-rename: a writer streams the
payload to a uniquely named temp file in the same directory, then
:func:`os.replace`\\ s it over the final name.  Readers therefore see
either the old complete entry or the new complete entry, never a torn
write, and concurrent writers of the same fingerprint are safe (last
rename wins; both payloads are equivalent by content-addressing).
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from repro.store.fingerprint import STORE_SCHEMA_VERSION

#: Suffix for published entries.
ENTRY_SUFFIX = ".pkl"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def entry_dir(cache_dir: Path) -> Path:
    """The schema-versioned directory holding published entries."""
    return Path(cache_dir) / f"v{STORE_SCHEMA_VERSION}"


def entry_path(cache_dir: Path, fingerprint: str) -> Path:
    """Where the entry for ``fingerprint`` lives (whether or not it exists)."""
    return entry_dir(cache_dir) / f"{fingerprint}{ENTRY_SUFFIX}"


def quarantine_dir(cache_dir: Path) -> Path:
    """Where corrupt entries are moved for post-mortem inspection."""
    return entry_dir(cache_dir) / "quarantine"


def read_entry(cache_dir: Path, fingerprint: str) -> bytes | None:
    """The raw payload for ``fingerprint``, or ``None`` if unreadable.

    Any OS-level failure (missing entry, permissions, transient FS
    errors) is a miss, never an exception — the store's contract is that
    a broken disk degrades to a cold start.
    """
    try:
        return entry_path(cache_dir, fingerprint).read_bytes()
    except OSError:
        return None


def write_entry(cache_dir: Path, fingerprint: str, payload: bytes) -> Path:
    """Atomically publish ``payload`` as the entry for ``fingerprint``.

    The temp name carries pid and thread id so concurrent writers (two
    drivers, or a driver and its workers) never collide on the staging
    file; :func:`os.replace` makes the publication itself atomic.
    """
    directory = entry_dir(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    final = entry_path(cache_dir, fingerprint)
    tmp = directory / (
        f".tmp-{fingerprint}-{os.getpid()}-{threading.get_ident()}"
    )
    tmp.write_bytes(payload)
    os.replace(tmp, final)
    return final


def quarantine_entry(cache_dir: Path, fingerprint: str) -> Path | None:
    """Move a corrupt entry aside so it is never re-read.

    Returns the quarantine path, or ``None`` if the entry vanished (a
    concurrent writer may have already replaced it — fine either way).
    The quarantined name carries the pid so two processes quarantining
    the same entry do not clobber each other's evidence.
    """
    source = entry_path(cache_dir, fingerprint)
    destination = quarantine_dir(cache_dir) / (
        f"{fingerprint}-{os.getpid()}{ENTRY_SUFFIX}"
    )
    try:
        destination.parent.mkdir(parents=True, exist_ok=True)
        os.replace(source, destination)
    except OSError:
        return None
    return destination


def list_entries(cache_dir: Path) -> list[Path]:
    """Published entry files, sorted by name (i.e. by fingerprint).

    Temp files and the quarantine directory are not entries.
    """
    directory = entry_dir(cache_dir)
    try:
        children = sorted(directory.iterdir())
    except OSError:
        return []
    return [
        child
        for child in children
        if child.suffix == ENTRY_SUFFIX and child.is_file()
    ]
