"""Persistent cache tier: disk-backed warm starts for corridor engines.

The PR 4 cache transplant protocol (``export_cache_state`` /
``seed_cache_state`` / delta merge-back) moves engine cache state
between *live* processes; this package extends it across process
lifetimes.  A :class:`CacheStore` persists those exports under
content-addressed fingerprints — (database content digest,
reconstruction params, kernel, schema version, code version) — so a
cold CLI run, a restarted ``repro.serve`` server, or a parallel worker
boots from the previous run's warm state instead of rebuilding it.

See DESIGN.md §14 for the store layout, key derivation, and
invalidation rules.
"""

from repro.store.cachestore import CacheStore, StoreEntry, StoreSeedRef
from repro.store.fingerprint import (
    CODE_VERSION,
    STORE_SCHEMA_VERSION,
    store_fingerprint,
)
from repro.store.layout import default_cache_dir

__all__ = [
    "CacheStore",
    "StoreEntry",
    "StoreSeedRef",
    "CODE_VERSION",
    "STORE_SCHEMA_VERSION",
    "store_fingerprint",
    "default_cache_dir",
]
