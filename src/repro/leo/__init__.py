"""LEO satellite constellation substrate (Fig 5, §6).

The paper's future outlook compares terrestrial microwave paths against
low-Earth-orbit constellation paths: satellites enjoy line-of-sight
inter-satellite links at c, but every path pays the up/down overhead of a
few hundred kilometres of altitude, so over land microwave wins — while
over oceans (where towers cannot stand) LEO beats fiber.

* :mod:`repro.leo.constellation` — Walker-delta shells, circular-orbit
  geometry, ECEF positions;
* :mod:`repro.leo.isl` — +Grid inter-satellite link topology;
* :mod:`repro.leo.latency` — ground-station attachment, constellation
  routing, and the MW / LEO / fiber comparison model behind Fig 5.
"""

from repro.leo.constellation import Constellation, Satellite, WalkerShell
from repro.leo.isl import isl_graph
from repro.leo.latency import (
    ComparisonPoint,
    constellation_latency_s,
    fiber_latency_s,
    leo_lower_bound_s,
    microwave_latency_s,
    sweep_distances,
)

__all__ = [
    "Constellation",
    "Satellite",
    "WalkerShell",
    "isl_graph",
    "ComparisonPoint",
    "constellation_latency_s",
    "fiber_latency_s",
    "leo_lower_bound_s",
    "microwave_latency_s",
    "sweep_distances",
]
