"""Latency comparison: terrestrial microwave vs LEO vs fiber (Fig 5).

Three models, all per one-way path between two ground points:

* **Microwave**: geodesic distance at c times a small path-stretch factor
  (HFT networks achieve ~1.001–1.05; see Table 1).
* **LEO**: up + down slant ranges plus the inter-satellite path, all at c.
  Two variants: an exact route over a Walker shell's +Grid, and a closed
  form lower bound (up/down at minimum slant plus great-circle at
  altitude) useful for sweeps.
* **Fiber**: geodesic distance times a route-stretch factor at 2c/3
  (terrestrial fiber routes are circuitous; stretch ~1.2–1.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.constants import FIBER_SPEED, SPEED_OF_LIGHT
from repro.geodesy import GeoPoint, geodesic_destination, geodesic_distance
from repro.geodesy.earth import EARTH_MEAN_RADIUS_M
from repro.leo.constellation import Constellation, WalkerShell, ecef_of
from repro.leo.isl import isl_graph

#: Default microwave path stretch: Table 1's fastest network runs ~0.15%
#: above the geodesic.
DEFAULT_MICROWAVE_STRETCH = 1.0015

#: Default fiber route stretch over long-haul routes.
DEFAULT_FIBER_STRETCH = 1.35


def microwave_latency_s(
    distance_m: float, stretch: float = DEFAULT_MICROWAVE_STRETCH
) -> float:
    """Terrestrial microwave one-way latency over a ground distance."""
    if distance_m < 0.0:
        raise ValueError("distance cannot be negative")
    if stretch < 1.0:
        raise ValueError("stretch cannot be below 1")
    return distance_m * stretch / SPEED_OF_LIGHT


def fiber_latency_s(distance_m: float, stretch: float = DEFAULT_FIBER_STRETCH) -> float:
    """Terrestrial fiber one-way latency over a ground distance."""
    if distance_m < 0.0:
        raise ValueError("distance cannot be negative")
    if stretch < 1.0:
        raise ValueError("stretch cannot be below 1")
    return distance_m * stretch / FIBER_SPEED


def leo_lower_bound_s(distance_m: float, altitude_m: float) -> float:
    """Optimistic LEO latency over a ground distance (ideal satellites).

    Minimises, over the number of satellite touches k, the length of the
    symmetric k-bounce path: ground → satellite → … → satellite → ground
    with ideally placed satellites on the shell.  k=1 captures the
    single-bounce geometry that dominates short distances; k→∞ tends to
    "up + shell arc + down", the long-haul regime.  Real routes (discrete
    constellations, elevation masks, +Grid detours) are slower, so this
    bound makes the Fig-5 comparison *conservative in LEO's favour* — if
    microwave beats the bound, it beats any real constellation.
    """
    if distance_m < 0.0 or altitude_m <= 0.0:
        raise ValueError("distance must be non-negative, altitude positive")
    r_ground = EARTH_MEAN_RADIUS_M
    r_shell = EARTH_MEAN_RADIUS_M + altitude_m
    theta = distance_m / EARTH_MEAN_RADIUS_M
    best = math.inf
    for k in range(1, 201):
        half_angle = theta / (2.0 * k)
        slant = math.sqrt(
            r_ground**2
            + r_shell**2
            - 2.0 * r_ground * r_shell * math.cos(half_angle)
        )
        inter_satellite = 2.0 * r_shell * math.sin(half_angle)
        length = 2.0 * slant + (k - 1) * inter_satellite
        best = min(best, length)
    return best / SPEED_OF_LIGHT


def constellation_latency_s(
    constellation: Constellation,
    source: GeoPoint,
    target: GeoPoint,
    min_elevation_deg: float = 25.0,
    gateway_candidates: int = 3,
) -> float | None:
    """Exact one-way latency over a Walker shell's +Grid, or None.

    Both endpoints attach to their best few visible satellites; the route
    is the lowest-latency combination of up-link, ISL path and down-link.
    Returns None when either endpoint sees no satellite above the mask.
    """
    up = constellation.visible_from(source, min_elevation_deg)[:gateway_candidates]
    down = constellation.visible_from(target, min_elevation_deg)[:gateway_candidates]
    if not up or not down:
        return None
    graph = isl_graph(constellation)
    best: float | None = None
    down_keys = {sat.key: slant for sat, slant in down}
    for sat, up_slant in up:
        lengths = nx.single_source_dijkstra_path_length(
            graph, sat.key, weight="latency_s"
        )
        for key, down_slant in down_keys.items():
            isl_latency = lengths.get(key)
            if isl_latency is None:
                continue
            total = (up_slant + down_slant) / SPEED_OF_LIGHT + isl_latency
            if best is None or total < best:
                best = total
    return best


@dataclass(frozen=True, slots=True)
class ComparisonPoint:
    """One row of the Fig-5 comparison sweep."""

    distance_km: float
    microwave_ms: float
    leo_550_ms: float
    leo_300_ms: float
    fiber_ms: float

    @property
    def microwave_beats_leo(self) -> bool:
        return self.microwave_ms < min(self.leo_550_ms, self.leo_300_ms)

    @property
    def leo_beats_fiber(self) -> bool:
        return min(self.leo_550_ms, self.leo_300_ms) < self.fiber_ms


def sweep_distances(
    distances_km: list[float],
    microwave_stretch: float = DEFAULT_MICROWAVE_STRETCH,
    fiber_stretch: float = DEFAULT_FIBER_STRETCH,
) -> list[ComparisonPoint]:
    """The Fig-5 series: MW vs LEO (550/300 km) vs fiber over distance."""
    points = []
    for distance_km in distances_km:
        distance_m = distance_km * 1000.0
        points.append(
            ComparisonPoint(
                distance_km=distance_km,
                microwave_ms=microwave_latency_s(distance_m, microwave_stretch) * 1e3,
                leo_550_ms=leo_lower_bound_s(distance_m, 550_000.0) * 1e3,
                leo_300_ms=leo_lower_bound_s(distance_m, 300_000.0) * 1e3,
                fiber_ms=fiber_latency_s(distance_m, fiber_stretch) * 1e3,
            )
        )
    return points


def leo_fiber_crossover_km(
    altitude_m: float,
    fiber_stretch: float = DEFAULT_FIBER_STRETCH,
    low_km: float = 10.0,
    high_km: float = 30_000.0,
) -> float:
    """Ground distance beyond which the LEO bound beats fiber (bisection)."""
    def leo_minus_fiber(distance_km: float) -> float:
        distance_m = distance_km * 1000.0
        return leo_lower_bound_s(distance_m, altitude_m) - fiber_latency_s(
            distance_m, fiber_stretch
        )

    if leo_minus_fiber(high_km) > 0.0:
        return math.inf
    if leo_minus_fiber(low_km) < 0.0:
        return low_km
    for _ in range(80):
        mid = (low_km + high_km) / 2.0
        if leo_minus_fiber(mid) > 0.0:
            low_km = mid
        else:
            high_km = mid
    return (low_km + high_km) / 2.0


def transatlantic_endpoints() -> tuple[GeoPoint, GeoPoint]:
    """Frankfurt and Washington DC — the HFT-relevant oceanic segment the
    paper cites from prior work (§6)."""
    return (GeoPoint(50.1109, 8.6821), GeoPoint(38.9072, -77.0369))
