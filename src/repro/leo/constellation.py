"""Walker-delta constellation geometry.

A Walker-delta shell ``i: T/P/F`` has ``T`` satellites in ``P`` equally
spaced circular orbital planes at inclination ``i``, with ``F`` units of
inter-plane phase offset.  Positions are computed on a spherical Earth in
an Earth-centred frame at a given epoch time; that is plenty for latency
geometry (ellipticity corrections are metres over thousands of km).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.geodesy.earth import EARTH_MEAN_RADIUS_M, GeoPoint

#: Standard gravitational parameter of Earth, m^3/s^2.
EARTH_MU = 3.986004418e14


@dataclass(frozen=True, slots=True)
class Satellite:
    """One satellite: identity and ECEF position (metres)."""

    plane: int
    slot: int
    x: float
    y: float
    z: float

    @property
    def key(self) -> tuple[int, int]:
        return (self.plane, self.slot)

    def distance_to(self, other: "Satellite") -> float:
        return math.dist((self.x, self.y, self.z), (other.x, other.y, other.z))


def ecef_of(point: GeoPoint, altitude_m: float = 0.0) -> tuple[float, float, float]:
    """Spherical ECEF coordinates of a ground point (metres)."""
    radius = EARTH_MEAN_RADIUS_M + altitude_m
    lat = math.radians(point.latitude)
    lon = math.radians(point.longitude)
    return (
        radius * math.cos(lat) * math.cos(lon),
        radius * math.cos(lat) * math.sin(lon),
        radius * math.sin(lat),
    )


@dataclass(frozen=True)
class WalkerShell:
    """Walker-delta shell parameters."""

    altitude_m: float
    inclination_deg: float
    n_planes: int
    sats_per_plane: int
    phase_factor: int = 1

    def __post_init__(self) -> None:
        if self.altitude_m <= 0.0:
            raise ValueError("altitude must be positive")
        if not 0.0 < self.inclination_deg <= 180.0:
            raise ValueError("inclination out of range")
        if self.n_planes < 1 or self.sats_per_plane < 1:
            raise ValueError("need at least one plane and one satellite")
        if not 0 <= self.phase_factor < self.n_planes:
            raise ValueError("phase factor must be in [0, n_planes)")

    @property
    def total_satellites(self) -> int:
        return self.n_planes * self.sats_per_plane

    @property
    def orbital_radius_m(self) -> float:
        return EARTH_MEAN_RADIUS_M + self.altitude_m

    @property
    def orbital_period_s(self) -> float:
        """Keplerian period of the circular orbit."""
        return 2.0 * math.pi * math.sqrt(self.orbital_radius_m**3 / EARTH_MU)


class Constellation:
    """Satellite positions of a Walker shell at a fixed epoch time."""

    def __init__(self, shell: WalkerShell, epoch_s: float = 0.0) -> None:
        self.shell = shell
        self.epoch_s = epoch_s
        self._satellites = list(self._compute_positions())
        self._by_key = {sat.key: sat for sat in self._satellites}

    def _compute_positions(self) -> Iterator[Satellite]:
        shell = self.shell
        inclination = math.radians(shell.inclination_deg)
        mean_motion = 2.0 * math.pi / shell.orbital_period_s
        radius = shell.orbital_radius_m
        for plane in range(shell.n_planes):
            raan = 2.0 * math.pi * plane / shell.n_planes
            for slot in range(shell.sats_per_plane):
                phase = (
                    2.0 * math.pi * slot / shell.sats_per_plane
                    + 2.0
                    * math.pi
                    * shell.phase_factor
                    * plane
                    / shell.total_satellites
                )
                anomaly = phase + mean_motion * self.epoch_s
                # Position in the orbital plane, then rotate by inclination
                # and RAAN into the Earth-centred frame.
                x_orb = radius * math.cos(anomaly)
                y_orb = radius * math.sin(anomaly)
                x_incl = x_orb
                y_incl = y_orb * math.cos(inclination)
                z_incl = y_orb * math.sin(inclination)
                yield Satellite(
                    plane=plane,
                    slot=slot,
                    x=x_incl * math.cos(raan) - y_incl * math.sin(raan),
                    y=x_incl * math.sin(raan) + y_incl * math.cos(raan),
                    z=z_incl,
                )

    @property
    def satellites(self) -> list[Satellite]:
        return list(self._satellites)

    def satellite(self, plane: int, slot: int) -> Satellite:
        return self._by_key[(plane, slot)]

    def visible_from(
        self, point: GeoPoint, min_elevation_deg: float = 25.0
    ) -> list[tuple[Satellite, float]]:
        """(satellite, slant range m) pairs above the elevation mask.

        Visibility uses the standard slant-range condition: a satellite at
        altitude h is above elevation ``e`` iff its slant range is at most
        the single-root solution of the range-elevation triangle.
        """
        gx, gy, gz = ecef_of(point)
        re = EARTH_MEAN_RADIUS_M
        h = self.shell.altitude_m
        elevation = math.radians(min_elevation_deg)
        max_slant = re * (
            math.sqrt(((re + h) / re) ** 2 - math.cos(elevation) ** 2)
            - math.sin(elevation)
        )
        result = []
        for sat in self._satellites:
            slant = math.dist((gx, gy, gz), (sat.x, sat.y, sat.z))
            if slant <= max_slant:
                result.append((sat, slant))
        result.sort(key=lambda pair: pair[1])
        return result


#: A Starlink-like first shell: 550 km, 53°, 72 planes × 22 satellites.
STARLINK_SHELL = WalkerShell(
    altitude_m=550_000.0, inclination_deg=53.0, n_planes=72, sats_per_plane=22
)

#: A lower shell at the paper's "as little as 300 km" altitude.
LOW_SHELL = WalkerShell(
    altitude_m=300_000.0, inclination_deg=53.0, n_planes=72, sats_per_plane=22
)
