"""+Grid inter-satellite link topology.

Each satellite keeps four laser links: to its two intra-plane neighbours
and to the same-slot satellite in each adjacent plane — the standard
"+Grid" used in LEO networking studies.  Edges are weighted with
propagation latency at c.
"""

from __future__ import annotations

import networkx as nx

from repro.constants import SPEED_OF_LIGHT
from repro.leo.constellation import Constellation


def isl_graph(constellation: Constellation) -> nx.Graph:
    """The +Grid ISL graph; nodes are (plane, slot), edges carry
    ``length_m`` and ``latency_s``."""
    shell = constellation.shell
    graph = nx.Graph()
    for sat in constellation.satellites:
        graph.add_node(sat.key, satellite=sat)
    for sat in constellation.satellites:
        up_slot = (sat.slot + 1) % shell.sats_per_plane
        right_plane = (sat.plane + 1) % shell.n_planes
        for neighbor_key in ((sat.plane, up_slot), (right_plane, sat.slot)):
            neighbor = constellation.satellite(*neighbor_key)
            length = sat.distance_to(neighbor)
            graph.add_edge(
                sat.key,
                neighbor.key,
                length_m=length,
                latency_s=length / SPEED_OF_LIGHT,
            )
    return graph
