"""Parameterized synthetic scenarios for stress-scale testing.

``synthetic_scenario`` mints a corridor scenario from a handful of
integers: geography (west/east anchors), licensee count, trunk length,
build-out era count, decoy density and a seed.  Every derived quantity —
network names, seeds, latency targets, era dates — is a pure function of
the parameters, so the same reference always yields byte-identical
databases, engines and analysis output (the registry relies on this for
its resolution cache, and the round-trip property tests rely on it for
serial-vs-parallel-vs-store equivalence at 10–50x the calibrated
scenario's size).

Latency targets are synthesised just above each corridor's c-bound
(0.5%–2.5% stretch, the regime of the paper's Table 1) so the
:class:`~repro.synth.generator.NetworkBuilder` bisection always
converges; the corridor must be at least 200 km long for the gateway
fiber tails to stay small against that margin.
"""

from __future__ import annotations

import datetime as dt
import random
from functools import lru_cache

from repro.constants import SPEED_OF_LIGHT
from repro.core.corridor import CorridorSpec, DataCenterSite
from repro.geodesy import GeoPoint, geodesic_destination, geodesic_distance
from repro.synth.scenario import SNAPSHOT_DATE, Scenario, build_scenario, simple_license
from repro.synth.specs import EraSpec, FrequencyProfile, NetworkSpec

#: Parameter converters for ``synthetic:k=v,...`` references.
SYNTHETIC_PARAMS = {
    "seed": int,
    "networks": int,
    "links": int,
    "eras": int,
    "decoys": int,
    "west_lat": float,
    "west_lon": float,
    "east_lat": float,
    "east_lon": float,
}

#: Default corridor: Dallas (Infomart) to Atlanta (56 Marietta), ~1,160 km.
DEFAULT_WEST = (32.7767, -96.7970)
DEFAULT_EAST = (33.7490, -84.3880)

#: Corridors shorter than this leave no calibration margin between the
#: straight-chain floor (plus gateway fiber tails) and the c-bound targets.
MIN_CORRIDOR_M = 200_000.0

_BAND_CYCLE = (
    FrequencyProfile(trunk_bands=(("11GHz", 1.0),)),
    FrequencyProfile(trunk_bands=(("6GHz", 0.9), ("11GHz", 0.1))),
    FrequencyProfile(trunk_bands=(("11GHz", 0.6), ("18GHz", 0.4))),
    FrequencyProfile(trunk_bands=(("18GHz", 1.0),)),
)


def _network_spec(
    index: int,
    seed: int,
    links: int,
    eras: int,
    c_bound_ms: float,
) -> NetworkSpec:
    rng = random.Random(seed * 100_003 + index * 131)
    trunk_links = max(12, links + (index % 5) - 2)
    stretch = 1.005 + 0.003 * index + rng.uniform(0.0, 0.002)
    target_ms = c_bound_ms * stretch
    era_specs = tuple(
        EraSpec(
            start=dt.date(2012 + era, 3, 1) + dt.timedelta(days=index % 28),
            latency_target_ms=target_ms * (1.0 + 0.004 * (eras - era)),
            n_links=trunk_links,
            seed_salt=era + 1,
        )
        for era in range(eras)
    )
    if index % 2 == 0:
        bypass = tuple(range(1, trunk_links - 1, 2))
    else:
        bypass = tuple(range(0, trunk_links, 3))
    return NetworkSpec(
        name=f"Synthetic Net {index + 1:02d}",
        callsign_prefix=f"SY{index % 100:02d}",
        seed=10_000 + seed * 101 + index,
        trunk_links=trunk_links,
        ny4_target_ms=target_ms,
        frequency_profile=_BAND_CYCLE[index % len(_BAND_CYCLE)],
        trunk_bypass_covered=bypass,
        eras=era_specs,
        final_era_start=dt.date(2019, 1, 15),
        gateway_west_km=0.4,
        gateway_east_km=0.3,
        spacing_profile="mixed" if index % 3 == 2 else "uniform",
    )


def _decoy_licenses(corridor: CorridorSpec, seed: int, decoys: int) -> list:
    """Small near-anchor licensees (≤10 filings) to feed the funnel's
    shortlist filter, mirroring the paper scenario's decoy population."""
    west = corridor.west.point
    licenses = []
    for index in range(decoys):
        rng = random.Random(seed * 7919 + 900 + index)
        n_filings = rng.randint(1, 10)
        hub = geodesic_destination(
            west, rng.uniform(0.0, 360.0), rng.uniform(500.0, 8000.0)
        )
        for filing in range(n_filings):
            remote = geodesic_destination(
                hub, rng.uniform(0.0, 360.0), rng.uniform(2000.0, 20000.0)
            )
            grant = dt.date(rng.randint(2008, 2019), rng.randint(1, 12), 15)
            licenses.append(
                simple_license(
                    license_id=f"SD{index:03d}{filing:02d}",
                    callsign=f"SYD{index:03d}{filing:02d}",
                    name=f"Synthetic Decoy {index:03d}",
                    a=hub,
                    b=remote,
                    grant=grant,
                    cancellation=None,
                    frequencies=(6063.8,) if filing % 2 else (10995.0,),
                )
            )
    return licenses


@lru_cache(maxsize=16)
def synthetic_scenario(
    seed: int = 0,
    networks: int = 3,
    links: int = 18,
    eras: int = 1,
    decoys: int = 0,
    west_lat: float = DEFAULT_WEST[0],
    west_lon: float = DEFAULT_WEST[1],
    east_lat: float = DEFAULT_EAST[0],
    east_lon: float = DEFAULT_EAST[1],
) -> Scenario:
    """Mint a deterministic scenario from generator parameters.

    ``links`` is the nominal trunk hop count (per-network counts vary by
    ±2); it must be at least 12 so every connected network clears the
    funnel's ≥11-filing shortlist.  ``eras`` adds that many historic
    build-out eras (each faster than the last) before the final era;
    ``decoys`` adds small near-anchor licensees the funnel must filter
    out.  All derived values depend only on the arguments — equal calls
    return the same (cached) scenario.
    """
    if networks < 1 or networks > 64:
        raise ValueError("networks must be in 1..64")
    if links < 12 or links > 400:
        raise ValueError("links must be in 12..400")
    if eras < 1 or eras > 6:
        raise ValueError("eras must be in 1..6")
    if decoys < 0 or decoys > 200:
        raise ValueError("decoys must be in 0..200")
    corridor = CorridorSpec(
        west=DataCenterSite("WDC", GeoPoint(west_lat, west_lon)),
        east=(DataCenterSite("EDC", GeoPoint(east_lat, east_lon)),),
    )
    distance_m = geodesic_distance(corridor.west.point, corridor.east[0].point)
    if distance_m < MIN_CORRIDOR_M:
        raise ValueError(
            f"synthetic corridor must span at least {MIN_CORRIDOR_M / 1000:.0f} km "
            f"(got {distance_m / 1000:.1f} km)"
        )
    c_bound_ms = distance_m / SPEED_OF_LIGHT * 1e3
    specs = tuple(
        _network_spec(index, seed, links, eras, c_bound_ms)
        for index in range(networks)
    )
    scenario = build_scenario(
        specs=specs,
        include_funnel_extras=False,
        corridor=corridor,
        name=f"synthetic-s{seed}-n{networks}-l{links}",
    )
    if decoys:
        scenario.database.extend(_decoy_licenses(corridor, seed, decoys))
    return scenario
