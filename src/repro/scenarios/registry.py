"""The scenario registry: ``NAME[:k=v,...]`` references → scenarios.

A :class:`ScenarioRef` is the parsed form of the reference string the CLI
(``--scenario``) and the query service (``?scenario=``) accept: a
registered builder name plus optional ``key=value`` parameters.  The
reference is canonicalised (parameters sorted by key) so equal references
compare and hash equal and two spellings of the same parameters build the
same keyword arguments.  Caching lives in the *builders* (each built-in
is ``lru_cache``'d), not here — every caller of the same reference shares
one :class:`~repro.synth.scenario.Scenario` and therefore one warm
default engine, and ``paper2020_scenario.cache_clear()`` (the test
fixtures' fresh-process mimic) drops the registry's view too, instead of
leaving a stale scenario behind a second cache layer.

Built-in entries:

``paper2020``
    The calibrated Chicago–New Jersey scenario (the default everywhere;
    resolves to the same cached singleton as
    :func:`repro.synth.scenario.paper2020_scenario`).
``europe2020``
    London–Frankfurt (LD4–FR2), three synthetic networks.
``tokyo-singapore``
    Tokyo–Singapore (TY3–SG1), ~5,314 km long-haul.
``synthetic``
    Parameterized generator (``seed``, ``networks``, ``links``, ``eras``,
    ``decoys``, corridor geography) for stress-scale scenarios; see
    :func:`repro.scenarios.synthetic.synthetic_scenario`.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.synth.scenario import (
    Scenario,
    europe2020_scenario,
    paper2020_scenario,
    tokyo_singapore_scenario,
)


class UnknownScenarioError(ValueError):
    """The reference names no registered scenario."""


class ScenarioParamError(ValueError):
    """The reference carries malformed or unsupported parameters."""


@dataclass(frozen=True)
class ScenarioRef:
    """A parsed scenario reference: registry name + sorted parameters.

    ``params`` holds the raw ``(key, value)`` string pairs sorted by key;
    conversion to typed values happens at resolution time against the
    registry entry's declared parameter converters.
    """

    name: str
    params: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioParamError("scenario name must be non-empty")
        keys = [key for key, _ in self.params]
        if len(set(keys)) != len(keys):
            raise ScenarioParamError(f"duplicate scenario parameter in {keys}")
        ordered = tuple(sorted(self.params))
        if ordered != self.params:
            object.__setattr__(self, "params", ordered)

    @property
    def canonical(self) -> str:
        """The normalised reference string (``name`` or ``name:k=v,...``)."""
        if not self.params:
            return self.name
        return self.name + ":" + ",".join(f"{k}={v}" for k, v in self.params)


def parse_scenario_ref(text: str | ScenarioRef) -> ScenarioRef:
    """Parse ``NAME`` or ``NAME:k=v,k2=v2`` into a :class:`ScenarioRef`."""
    if isinstance(text, ScenarioRef):
        return text
    head, sep, tail = text.strip().partition(":")
    if not sep:
        return ScenarioRef(head)
    pairs = []
    for item in tail.split(","):
        key, eq, value = item.partition("=")
        if not eq or not key.strip() or not value.strip():
            raise ScenarioParamError(
                f"malformed scenario parameter {item!r} in {text!r} "
                "(expected key=value)"
            )
        pairs.append((key.strip(), value.strip()))
    return ScenarioRef(head, tuple(pairs))


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario builder.

    ``builder`` receives the converted parameters as keyword arguments.
    ``params`` declares the accepted parameter names and their
    converters; entries without parameters reject any ``k=v`` suffix.
    ``concrete`` marks fixed-corridor scenarios worth enumerating in
    corridor sweeps (the ``compare`` workload and the ``/scenarios``
    default listing) — the parameterized generator is excluded unless
    referenced explicitly.
    """

    name: str
    summary: str
    builder: Callable[..., Scenario]
    params: Mapping[str, Callable[[str], object]] = field(default_factory=dict)
    concrete: bool = True

    def build(self, ref: ScenarioRef) -> Scenario:
        kwargs = {}
        for key, raw in ref.params:
            converter = self.params.get(key)
            if converter is None:
                allowed = ", ".join(sorted(self.params)) or "none"
                raise ScenarioParamError(
                    f"scenario {self.name!r} does not accept parameter "
                    f"{key!r} (allowed: {allowed})"
                )
            try:
                kwargs[key] = converter(raw)
            except (TypeError, ValueError) as exc:
                raise ScenarioParamError(
                    f"bad value {raw!r} for scenario parameter {key!r}: {exc}"
                ) from exc
        return self.builder(**kwargs)


_REGISTRY: dict[str, ScenarioEntry] = {}
_LOCK = threading.Lock()


def register_scenario(entry: ScenarioEntry) -> ScenarioEntry:
    """Add a builder to the registry (replacing any same-name entry)."""
    with _LOCK:
        _REGISTRY[entry.name] = entry
    return entry


def registered_scenarios() -> tuple[ScenarioEntry, ...]:
    """All registered entries, sorted by name."""
    with _LOCK:
        return tuple(sorted(_REGISTRY.values(), key=lambda entry: entry.name))


def scenario_names(concrete_only: bool = False) -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(
        entry.name
        for entry in registered_scenarios()
        if entry.concrete or not concrete_only
    )


def resolve_scenario(ref: str | ScenarioRef) -> Scenario:
    """Resolve a reference to its (builder-cached) :class:`Scenario`.

    Two spellings of the same parameters (``synthetic:links=20,seed=7``
    vs ``synthetic:seed=7,links=20``) canonicalise to the same keyword
    arguments and — because every built-in builder memoises — share one
    scenario object and one default engine.  Raises
    :class:`UnknownScenarioError` for unknown names and
    :class:`ScenarioParamError` for bad parameters.
    """
    parsed = parse_scenario_ref(ref)
    with _LOCK:
        entry = _REGISTRY.get(parsed.name)
    if entry is None:
        known = ", ".join(scenario_names())
        raise UnknownScenarioError(
            f"unknown scenario {parsed.name!r} (registered: {known})"
        )
    return entry.build(parsed)


def _register_builtins() -> None:
    from repro.scenarios.synthetic import SYNTHETIC_PARAMS, synthetic_scenario

    register_scenario(ScenarioEntry(
        name="paper2020",
        summary="Chicago-New Jersey (CME-NY4/NYSE/NASDAQ), the paper's "
                "calibrated corridor",
        builder=paper2020_scenario,
    ))
    register_scenario(ScenarioEntry(
        name="europe2020",
        summary="London-Frankfurt (LD4-FR2), ~671 km, three synthetic "
                "networks",
        builder=europe2020_scenario,
    ))
    register_scenario(ScenarioEntry(
        name="tokyo-singapore",
        summary="Tokyo-Singapore (TY3-SG1), ~5,314 km long-haul",
        builder=tokyo_singapore_scenario,
    ))
    register_scenario(ScenarioEntry(
        name="synthetic",
        summary="parameterized stress-scale generator "
                "(seed/networks/links/eras/decoys/geography)",
        builder=synthetic_scenario,
        params=SYNTHETIC_PARAMS,
        concrete=False,
    ))


_register_builtins()
