"""Scenario registry: named, parameterized corridor scenarios.

``repro.scenarios`` is the one place the rest of the system asks "which
world am I analysing?".  It sits above :mod:`repro.synth` in the layering
DAG: the synth tier builds a :class:`~repro.synth.scenario.Scenario` from
specs, this tier names those builders, parses ``NAME[:k=v,...]`` scenario
references (the CLI ``--scenario`` flag and the serve ``?scenario=``
request param), and caches resolved scenarios so every caller of the same
reference shares one scenario — and therefore one warm default engine.
"""

from repro.scenarios.registry import (
    ScenarioEntry,
    ScenarioParamError,
    ScenarioRef,
    UnknownScenarioError,
    parse_scenario_ref,
    register_scenario,
    registered_scenarios,
    resolve_scenario,
    scenario_names,
)
from repro.scenarios.synthetic import synthetic_scenario

__all__ = [
    "ScenarioEntry",
    "ScenarioParamError",
    "ScenarioRef",
    "UnknownScenarioError",
    "parse_scenario_ref",
    "register_scenario",
    "registered_scenarios",
    "resolve_scenario",
    "scenario_names",
    "synthetic_scenario",
]
