"""A small standalone SVG chart renderer.

The original figures were gnuplot renderings; this module draws
equivalent line charts and CDF step charts as self-contained SVG, with no
plotting dependency: axes with "nice" ticks, a legend, and a qualitative
colour cycle.  It is deliberately minimal — enough to regenerate every
figure in the paper, not a plotting library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

#: Qualitative colour cycle (colour-blind-safe Okabe–Ito palette).
_COLORS = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#000000",
)

_MARGIN_LEFT = 72.0
_MARGIN_RIGHT = 20.0
_MARGIN_TOP = 40.0
_MARGIN_BOTTOM = 52.0
_LEGEND_LINE_HEIGHT = 18.0


def nice_ticks(low: float, high: float, target: int = 6) -> list[float]:
    """Round tick positions covering [low, high] (the classic 1-2-5 rule)."""
    if not math.isfinite(low) or not math.isfinite(high):
        raise ValueError("tick range must be finite")
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(1, target - 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for multiplier in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = multiplier * magnitude
        if span / step <= target:
            break
    first = math.ceil(low / step) * step
    ticks = []
    value = first
    while value <= high + 1e-9 * span:
        ticks.append(round(value, 12))
        value += step
    return ticks


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e7:
        return str(int(value))
    return f"{value:g}"


@dataclass
class _Series:
    name: str
    points: list[tuple[float, float]]
    color: str
    dashed: bool
    step: bool


@dataclass
class SvgChart:
    """A single-panel chart: line and/or CDF-step series."""

    title: str
    x_label: str
    y_label: str
    width: float = 720.0
    height: float = 420.0
    x_range: tuple[float, float] | None = None
    y_range: tuple[float, float] | None = None
    _series: list[_Series] = field(default_factory=list)

    def add_line(
        self,
        name: str,
        points: Sequence[tuple[float, float]],
        dashed: bool = False,
    ) -> "SvgChart":
        """Add an (x, y) line series.  Returns self for chaining."""
        if not points:
            raise ValueError(f"series {name!r} has no points")
        color = _COLORS[len(self._series) % len(_COLORS)]
        self._series.append(_Series(name, list(points), color, dashed, step=False))
        return self

    def add_cdf(self, name: str, values: Sequence[float]) -> "SvgChart":
        """Add an empirical-CDF step series over raw sample values."""
        from repro.metrics.cdf import EmpiricalCdf

        steps = EmpiricalCdf(values).step_points()
        color = _COLORS[len(self._series) % len(_COLORS)]
        self._series.append(_Series(name, steps, color, dashed=False, step=True))
        return self

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def _data_bounds(self) -> tuple[float, float, float, float]:
        xs = [x for series in self._series for x, _ in series.points]
        ys = [y for series in self._series for _, y in series.points]
        x_lo, x_hi = (min(xs), max(xs)) if self.x_range is None else self.x_range
        y_lo, y_hi = (min(ys), max(ys)) if self.y_range is None else self.y_range
        if x_hi <= x_lo:
            x_hi = x_lo + 1.0
        if y_hi <= y_lo:
            y_hi = y_lo + 1.0
        # Pad auto ranges by 4% so lines don't hug the frame.
        if self.x_range is None:
            pad = 0.04 * (x_hi - x_lo)
            x_lo, x_hi = x_lo - pad, x_hi + pad
        if self.y_range is None:
            pad = 0.04 * (y_hi - y_lo)
            y_lo, y_hi = y_lo - pad, y_hi + pad
        return x_lo, x_hi, y_lo, y_hi

    def render(self, path: str | Path | None = None) -> str:
        """Render to SVG text; optionally write to ``path``."""
        if not self._series:
            raise ValueError("chart has no series")
        x_lo, x_hi, y_lo, y_hi = self._data_bounds()
        plot_w = self.width - _MARGIN_LEFT - _MARGIN_RIGHT
        plot_h = self.height - _MARGIN_TOP - _MARGIN_BOTTOM

        def sx(x: float) -> float:
            return _MARGIN_LEFT + (x - x_lo) / (x_hi - x_lo) * plot_w

        def sy(y: float) -> float:
            return _MARGIN_TOP + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width:.0f}" '
            f'height="{self.height:.0f}" viewBox="0 0 {self.width:.0f} '
            f'{self.height:.0f}" font-family="sans-serif">',
            '<rect width="100%" height="100%" fill="white"/>',
            f'<text x="{self.width / 2:.0f}" y="22" text-anchor="middle" '
            f'font-size="15">{self.title}</text>',
        ]

        # Grid + ticks.
        for tick in nice_ticks(x_lo, x_hi):
            if not x_lo <= tick <= x_hi:
                continue
            x = sx(tick)
            parts.append(
                f'<line x1="{x:.1f}" y1="{_MARGIN_TOP:.1f}" x2="{x:.1f}" '
                f'y2="{_MARGIN_TOP + plot_h:.1f}" stroke="#e0e0e0"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{_MARGIN_TOP + plot_h + 18:.1f}" '
                f'text-anchor="middle" font-size="11">{_format_tick(tick)}</text>'
            )
        for tick in nice_ticks(y_lo, y_hi):
            if not y_lo <= tick <= y_hi:
                continue
            y = sy(tick)
            parts.append(
                f'<line x1="{_MARGIN_LEFT:.1f}" y1="{y:.1f}" '
                f'x2="{_MARGIN_LEFT + plot_w:.1f}" y2="{y:.1f}" stroke="#e0e0e0"/>'
            )
            parts.append(
                f'<text x="{_MARGIN_LEFT - 6:.1f}" y="{y + 4:.1f}" '
                f'text-anchor="end" font-size="11">{_format_tick(tick)}</text>'
            )

        # Frame and axis labels.
        parts.append(
            f'<rect x="{_MARGIN_LEFT:.1f}" y="{_MARGIN_TOP:.1f}" '
            f'width="{plot_w:.1f}" height="{plot_h:.1f}" fill="none" '
            'stroke="#404040"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT + plot_w / 2:.1f}" '
            f'y="{self.height - 12:.1f}" text-anchor="middle" '
            f'font-size="13">{self.x_label}</text>'
        )
        parts.append(
            f'<text x="16" y="{_MARGIN_TOP + plot_h / 2:.1f}" '
            f'text-anchor="middle" font-size="13" '
            f'transform="rotate(-90 16 {_MARGIN_TOP + plot_h / 2:.1f})">'
            f"{self.y_label}</text>"
        )

        # Series.
        for series in self._series:
            coordinates: list[str] = []
            previous_y: float | None = None
            for x, y in series.points:
                if series.step and previous_y is not None:
                    coordinates.append(f"{sx(x):.2f},{sy(previous_y):.2f}")
                coordinates.append(f"{sx(x):.2f},{sy(y):.2f}")
                previous_y = y
            dash = ' stroke-dasharray="6,4"' if series.dashed else ""
            parts.append(
                f'<polyline points="{" ".join(coordinates)}" fill="none" '
                f'stroke="{series.color}" stroke-width="1.8"{dash}/>'
            )
            if not series.step:
                for x, y in series.points:
                    parts.append(
                        f'<circle cx="{sx(x):.2f}" cy="{sy(y):.2f}" r="3" '
                        f'fill="{series.color}"/>'
                    )

        # Legend (top-right, inside the frame).
        legend_x = _MARGIN_LEFT + plot_w - 12
        legend_y = _MARGIN_TOP + 14
        for index, series in enumerate(self._series):
            y = legend_y + index * _LEGEND_LINE_HEIGHT
            parts.append(
                f'<line x1="{legend_x - 150:.1f}" y1="{y - 4:.1f}" '
                f'x2="{legend_x - 122:.1f}" y2="{y - 4:.1f}" '
                f'stroke="{series.color}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{legend_x - 116:.1f}" y="{y:.1f}" '
                f'font-size="12">{series.name}</text>'
            )

        parts.append("</svg>")
        text = "\n".join(parts)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text
