"""Standalone SVG corridor maps (the Fig 3 visualisation).

An equirectangular projection scaled to the network's bounding box,
rendered with no external dependencies: microwave links as lines, fiber
tails dashed, towers as dots, data centers as labelled squares, and an
optional highlight of the lowest-latency route.
"""

from __future__ import annotations

from pathlib import Path

import math

from repro.core.network import HftNetwork
from repro.geodesy import GeoPoint

_STYLE = {
    "microwave": 'stroke="#1f77b4" stroke-width="1.2"',
    "fiber": 'stroke="#7f7f7f" stroke-width="1.0" stroke-dasharray="4,3"',
    "route": 'stroke="#d62728" stroke-width="2.4" fill="none"',
    "tower": 'fill="#1f77b4"',
    "datacenter": 'fill="#2ca02c"',
}


class _Projection:
    """Equirectangular lat/lon → SVG pixel mapping with padding."""

    def __init__(
        self,
        points: list[GeoPoint],
        width: float = 1200.0,
        padding: float = 30.0,
    ) -> None:
        if not points:
            raise ValueError("nothing to project")
        lats = [point.latitude for point in points]
        lons = [point.longitude for point in points]
        self.min_lat, self.max_lat = min(lats), max(lats)
        self.min_lon, self.max_lon = min(lons), max(lons)
        lon_span = max(1e-6, self.max_lon - self.min_lon)
        lat_span = max(1e-6, self.max_lat - self.min_lat)
        # Scale latitude by cos(mid-lat) so distances look isotropic.
        mid_lat = math.radians((self.min_lat + self.max_lat) / 2.0)
        self._lat_stretch = 1.0 / max(0.1, math.cos(mid_lat))
        usable = width - 2.0 * padding
        self._scale = usable / lon_span
        self.width = width
        self.height = (
            lat_span * self._scale * self._lat_stretch + 2.0 * padding
        )
        self._padding = padding

    def __call__(self, point: GeoPoint) -> tuple[float, float]:
        x = self._padding + (point.longitude - self.min_lon) * self._scale
        y = self._padding + (self.max_lat - point.latitude) * self._scale * self._lat_stretch
        return (x, y)


def render_network_svg(
    network: HftNetwork,
    path: str | Path | None = None,
    width: float = 1200.0,
    highlight_route: tuple[str, str] | None = ("CME", "NY4"),
) -> str:
    """Render a network map to SVG text (optionally written to ``path``)."""
    points = [dc.point for dc in network.data_centers.values()]
    points.extend(tower.point for tower in network.towers.values())
    project = _Projection(points, width=width)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{project.width:.0f}" '
        f'height="{project.height:.0f}" viewBox="0 0 {project.width:.0f} '
        f'{project.height:.0f}">',
        f"<title>{network.licensee} as of {network.as_of.isoformat()}</title>",
        '<rect width="100%" height="100%" fill="#fbfbf8"/>',
    ]

    for tail in network.fiber_tails:
        x1, y1 = project(network.data_centers[tail.data_center].point)
        x2, y2 = project(network.towers[tail.tower_id].point)
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'{_STYLE["fiber"]}/>'
        )
    for link in network.links:
        x1, y1 = project(network.towers[link.tower_a].point)
        x2, y2 = project(network.towers[link.tower_b].point)
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'{_STYLE["microwave"]}/>'
        )

    if highlight_route is not None:
        route = network.lowest_latency_route(*highlight_route)
        if route is not None:
            coordinates = []
            for node in route.nodes:
                point = (
                    network.towers[node].point
                    if node in network.towers
                    else network.data_centers[node].point
                )
                x, y = project(point)
                coordinates.append(f"{x:.1f},{y:.1f}")
            parts.append(
                f'<polyline points="{" ".join(coordinates)}" {_STYLE["route"]}/>'
            )

    for tower in network.towers.values():
        x, y = project(tower.point)
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.5" {_STYLE["tower"]}/>')
    for name, dc in network.data_centers.items():
        x, y = project(dc.point)
        parts.append(
            f'<rect x="{x - 4:.1f}" y="{y - 4:.1f}" width="8" height="8" '
            f'{_STYLE["datacenter"]}/>'
        )
        parts.append(
            f'<text x="{x + 6:.1f}" y="{y - 6:.1f}" font-size="13" '
            f'font-family="sans-serif">{name}</text>'
        )

    parts.append(
        f'<text x="10" y="{project.height - 10:.0f}" font-size="14" '
        f'font-family="sans-serif">{network.licensee} — '
        f"{network.as_of.isoformat()} — {len(network.towers)} towers, "
        f"{len(network.links)} MW links</text>"
    )
    parts.append("</svg>")
    text = "\n".join(parts)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


_NETWORK_COLORS = (
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00",
    "#56B4E9", "#B22222", "#6A3D9A", "#636363",
)


def render_corridor_svg(
    networks: list[HftNetwork],
    path: str | Path | None = None,
    width: float = 1400.0,
) -> str:
    """All networks on one map, one colour per licensee.

    The multi-network view the paper's repository publishes alongside the
    per-network maps: it makes visible how tightly the competitors hug
    the same geodesic.
    """
    if not networks:
        raise ValueError("no networks to draw")
    points = []
    for network in networks:
        points.extend(dc.point for dc in network.data_centers.values())
        points.extend(tower.point for tower in network.towers.values())
    project = _Projection(points, width=width)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{project.width:.0f}" '
        f'height="{project.height + 20 * len(networks):.0f}" viewBox="0 0 '
        f'{project.width:.0f} {project.height + 20 * len(networks):.0f}">',
        '<rect width="100%" height="100%" fill="#fbfbf8"/>',
    ]
    for index, network in enumerate(networks):
        color = _NETWORK_COLORS[index % len(_NETWORK_COLORS)]
        for link in network.links:
            x1, y1 = project(network.towers[link.tower_a].point)
            x2, y2 = project(network.towers[link.tower_b].point)
            parts.append(
                f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
                f'stroke="{color}" stroke-width="1.1" stroke-opacity="0.75"/>'
            )
        legend_y = project.height + 16 * (index + 1)
        parts.append(
            f'<line x1="16" y1="{legend_y - 4:.0f}" x2="44" y2="{legend_y - 4:.0f}" '
            f'stroke="{color}" stroke-width="3"/>'
        )
        parts.append(
            f'<text x="50" y="{legend_y:.0f}" font-size="12" '
            f'font-family="sans-serif">{network.licensee} '
            f"({len(network.towers)} towers)</text>"
        )
    for network in networks[:1]:
        for name, dc in network.data_centers.items():
            x, y = project(dc.point)
            parts.append(
                f'<rect x="{x - 4:.1f}" y="{y - 4:.1f}" width="8" height="8" '
                f'{_STYLE["datacenter"]}/>'
            )
            parts.append(
                f'<text x="{x + 6:.1f}" y="{y - 6:.1f}" font-size="13" '
                f'font-family="sans-serif">{name}</text>'
            )
    parts.append("</svg>")
    text = "\n".join(parts)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
