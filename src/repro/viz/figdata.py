"""Plot-ready data files for the paper's figures.

The original figures were gnuplot renderings; the series behind them are
what a reproduction must regenerate.  These helpers write whitespace-
separated ``.dat`` files (one block per series, gnuplot ``index``
convention) that plot directly with gnuplot or load with ``numpy.loadtxt``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence


def write_series_dat(
    path: str | Path,
    series: dict[str, Sequence[tuple[float, float]]],
    header: str = "",
) -> None:
    """Write named (x, y) series as gnuplot index blocks.

    Missing samples should simply be absent from a series (gnuplot then
    breaks the line, exactly how Fig 1 renders networks with no
    end-to-end path in some years).
    """
    lines: list[str] = []
    if header:
        for header_line in header.splitlines():
            lines.append(f"# {header_line}")
    for name, points in series.items():
        lines.append(f'# series: "{name}"')
        for x, y in points:
            lines.append(f"{x:.6f} {y:.6f}")
        lines.append("")
        lines.append("")
    Path(path).write_text("\n".join(lines), encoding="utf-8")


def write_cdf_dat(
    path: str | Path,
    series: dict[str, Sequence[float]],
    header: str = "",
) -> None:
    """Write empirical CDFs of named samples as gnuplot index blocks."""
    from repro.metrics.cdf import EmpiricalCdf

    blocks = {
        name: EmpiricalCdf(values).step_points() for name, values in series.items()
    }
    write_series_dat(path, blocks, header=header)
