"""Visualisation and figure-data export.

The original tool visualised reconstructed networks with the Google Maps
API (Fig 3); we render equivalent corridor maps as standalone SVG and
export GeoJSON for any GIS tool.  :mod:`repro.viz.figdata` writes the
plot-ready data series behind every figure (gnuplot-style ``.dat``).
"""

from repro.viz.geojson import network_to_geojson
from repro.viz.svgmap import render_network_svg
from repro.viz.figdata import (
    write_cdf_dat,
    write_series_dat,
)

__all__ = [
    "network_to_geojson",
    "render_network_svg",
    "write_cdf_dat",
    "write_series_dat",
]
