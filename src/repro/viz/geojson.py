"""GeoJSON export of reconstructed networks.

Produces a FeatureCollection with one Point feature per tower and data
center and one LineString feature per microwave link / fiber tail,
loadable in any GIS viewer (QGIS, geojson.io, kepler.gl).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.network import HftNetwork


def network_to_geojson(network: HftNetwork, path: str | Path | None = None) -> dict[str, Any]:
    """The network as a GeoJSON FeatureCollection (optionally written out).

    Coordinates follow the GeoJSON convention: [longitude, latitude].
    """
    features: list[dict[str, Any]] = []
    for name, dc in network.data_centers.items():
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "Point",
                    "coordinates": [dc.point.longitude, dc.point.latitude],
                },
                "properties": {"kind": "datacenter", "name": name},
            }
        )
    for tower in network.towers.values():
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "Point",
                    "coordinates": [tower.point.longitude, tower.point.latitude],
                },
                "properties": {
                    "kind": "tower",
                    "id": tower.tower_id,
                    "site_name": tower.site_name,
                    "structure_height_m": tower.structure_height_m,
                    "licenses": list(tower.license_ids),
                },
            }
        )
    for link in network.links:
        a = network.towers[link.tower_a].point
        b = network.towers[link.tower_b].point
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    "coordinates": [
                        [a.longitude, a.latitude],
                        [b.longitude, b.latitude],
                    ],
                },
                "properties": {
                    "kind": "microwave",
                    "length_km": round(link.length_m / 1000.0, 3),
                    "frequencies_ghz": [
                        round(freq / 1000.0, 3) for freq in link.frequencies_mhz
                    ],
                },
            }
        )
    for tail in network.fiber_tails:
        dc = network.data_centers[tail.data_center]
        tower = network.towers[tail.tower_id]
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    "coordinates": [
                        [dc.point.longitude, dc.point.latitude],
                        [tower.point.longitude, tower.point.latitude],
                    ],
                },
                "properties": {
                    "kind": "fiber",
                    "length_km": round(tail.length_m / 1000.0, 3),
                },
            }
        )
    collection = {
        "type": "FeatureCollection",
        "features": features,
        "properties": {
            "licensee": network.licensee,
            "as_of": network.as_of.isoformat(),
        },
    }
    if path is not None:
        Path(path).write_text(json.dumps(collection, indent=2), encoding="utf-8")
    return collection
