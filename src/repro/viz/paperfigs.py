"""SVG renderings of the paper's figures from driver outputs.

Each function takes the corresponding :mod:`repro.analysis.figures`
driver output and produces an :class:`~repro.viz.charts.SvgChart` styled
after the original: Fig 1 keeps its deliberately non-zero y-axis ("to
highlight the seemingly small but extremely consequential differences"),
Fig 4 uses CDF steps, Fig 5 plots the four latency models.
"""

from __future__ import annotations

import datetime as dt
from typing import Sequence

from repro.core.timeline import LicenseCountSeries, TimelinePoint
from repro.leo.latency import ComparisonPoint
from repro.viz.charts import SvgChart

#: Short display names matching the paper's legends.
_SHORT_NAMES = {
    "National Tower Company": "National Tower Company",
    "Webline Holdings": "Webline Holdings",
    "Jefferson Microwave": "Jefferson Microwave",
    "Pierce Broadband": "Pierce Broadband",
    "New Line Networks": "New Line Networks",
}


def _year_fraction(date: dt.date) -> float:
    return date.year + (date.timetuple().tm_yday - 1) / 365.25


def fig1_chart(series: dict[str, list[TimelinePoint]]) -> SvgChart:
    """Fig 1: latency evolution, non-zero y-axis as in the paper."""
    chart = SvgChart(
        title="Evolution of end-to-end latency, CME – Equinix NY4",
        x_label="Time",
        y_label="Latency (ms)",
        y_range=(3.95, 4.05),
    )
    for name, points in series.items():
        line = [
            (_year_fraction(p.date), p.latency_ms)
            for p in points
            if p.latency_ms is not None
        ]
        if line:
            chart.add_line(_SHORT_NAMES.get(name, name), line)
    return chart


def fig2_chart(series: dict[str, LicenseCountSeries]) -> SvgChart:
    """Fig 2: active license counts."""
    chart = SvgChart(
        title="Active licenses over the years",
        x_label="Time",
        y_label="No. of active licenses",
        y_range=(0.0, 180.0),
    )
    for name, counts in series.items():
        chart.add_line(
            _SHORT_NAMES.get(name, name),
            [(_year_fraction(date), float(count)) for date, count in counts.as_pairs()],
        )
    return chart


def fig4a_chart(samples: dict[str, Sequence[float]]) -> SvgChart:
    """Fig 4a: CDFs of link lengths on near-optimal paths."""
    chart = SvgChart(
        title="Link lengths on near-optimal CME–NY4 paths",
        x_label="Distance (km)",
        y_label="CDF",
        x_range=(0.0, 100.0),
        y_range=(0.0, 1.0),
    )
    for name, values in samples.items():
        label = "WH" if "Webline" in name else ("NLN" if "New Line" in name else name)
        chart.add_cdf(label, values)
    return chart


def fig4b_chart(samples: dict[str, Sequence[float]]) -> SvgChart:
    """Fig 4b: CDFs of operating frequencies."""
    chart = SvgChart(
        title="Operating frequencies, CME–NY4",
        x_label="Frequency (GHz)",
        y_label="CDF",
        x_range=(4.0, 18.0),
        y_range=(0.0, 1.0),
    )
    for name, values in samples.items():
        chart.add_cdf(name, values)
    return chart


def fig5_chart(points: list[ComparisonPoint]) -> SvgChart:
    """Fig 5: latency models over ground distance."""
    chart = SvgChart(
        title="Satellites versus terrestrial MW networks",
        x_label="Ground distance (km)",
        y_label="One-way latency (ms)",
    )
    chart.add_line("Terrestrial MW", [(p.distance_km, p.microwave_ms) for p in points])
    chart.add_line("LEO @ 550 km", [(p.distance_km, p.leo_550_ms) for p in points])
    chart.add_line("LEO @ 300 km", [(p.distance_km, p.leo_300_ms) for p in points])
    chart.add_line(
        "Fiber", [(p.distance_km, p.fiber_ms) for p in points], dashed=True
    )
    return chart
