"""Per-link availability and instantaneous outage state.

Combines the link budget (fade margin) with the rain model to answer two
questions the reliability experiments need:

* *climatically*: what fraction of the year is this link down?
* *instantaneously*: given a storm with rain rate R over the hop, is the
  link up right now?
"""

from __future__ import annotations

import math

from repro.radio.budget import LinkBudget
from repro.radio.itu import (
    percent_time_for_attenuation,
    rain_attenuation_db,
    specific_attenuation_db_per_km,
    effective_path_length_km,
)

#: Default 0.01%-exceedance rain rate for the US Midwest/Northeast
#: corridor (ITU rain zone K is ~42 mm/h; the corridor spans K/N zones).
DEFAULT_RAIN_RATE_001_MM_H = 42.0


def link_availability(
    frequency_ghz: float,
    distance_km: float,
    budget: LinkBudget | None = None,
    rain_rate_001_mm_h: float = DEFAULT_RAIN_RATE_001_MM_H,
) -> float:
    """Fraction of the year the link is up, in [0, 1].

    The outage fraction is the percentage of time rain attenuation exceeds
    the link's clear-air fade margin (P.530 exceedance scaling).  Links
    with non-positive margin are down permanently (availability 0).
    """
    budget = budget or LinkBudget()
    margin = budget.fade_margin_db(frequency_ghz, distance_km)
    if margin <= 0.0:
        return 0.0
    percent_down = percent_time_for_attenuation(
        frequency_ghz, distance_km, rain_rate_001_mm_h, margin
    )
    return 1.0 - percent_down / 100.0


def link_is_up(
    frequency_ghz: float,
    distance_km: float,
    rain_rate_mm_h: float,
    budget: LinkBudget | None = None,
) -> bool:
    """Whether the link survives an instantaneous rain rate over the hop."""
    budget = budget or LinkBudget()
    margin = budget.fade_margin_db(frequency_ghz, distance_km)
    if margin <= 0.0:
        return False
    attenuation = rain_attenuation_db(frequency_ghz, distance_km, rain_rate_mm_h)
    return attenuation <= margin


def rain_rate_to_kill_link_mm_h(
    frequency_ghz: float,
    distance_km: float,
    budget: LinkBudget | None = None,
    max_rate_mm_h: float = 300.0,
) -> float:
    """Smallest rain rate that takes the link down (bisection).

    Returns ``math.inf`` if even ``max_rate_mm_h`` cannot exceed the
    margin (short low-frequency hops are effectively rain-proof), and 0.0
    for links with no margin at all.
    """
    budget = budget or LinkBudget()
    margin = budget.fade_margin_db(frequency_ghz, distance_km)
    if margin <= 0.0:
        return 0.0
    if rain_attenuation_db(frequency_ghz, distance_km, max_rate_mm_h) <= margin:
        return math.inf
    low, high = 0.0, max_rate_mm_h
    for _ in range(60):
        mid = (low + high) / 2.0
        if rain_attenuation_db(frequency_ghz, distance_km, mid) > margin:
            high = mid
        else:
            low = mid
    return (low + high) / 2.0


def specific_outage_summary(
    frequency_ghz: float, distance_km: float, rain_rate_mm_h: float
) -> dict[str, float]:
    """Diagnostic bundle used by examples: γ, d_eff, attenuation."""
    return {
        "gamma_db_per_km": specific_attenuation_db_per_km(frequency_ghz, rain_rate_mm_h),
        "effective_path_km": effective_path_length_km(distance_km, rain_rate_mm_h),
        "attenuation_db": rain_attenuation_db(frequency_ghz, distance_km, rain_rate_mm_h),
    }
