"""Microwave radio engineering substrate.

§5 of the paper grounds its reliability discussion in standard microwave
propagation engineering: "longer tower-to-tower links and bad weather
conditions increase data loss, and higher frequencies are more susceptible
to weather disruptions" (citing ITU-R P.530 and P.837/838).  This
subpackage implements that machinery:

* :mod:`repro.radio.itu` — ITU-R P.838-style rain specific attenuation and
  P.530-style effective path length / exceedance scaling;
* :mod:`repro.radio.budget` — free-space path loss, link budgets, fade
  margins, Fresnel-zone clearance;
* :mod:`repro.radio.availability` — per-link availability under a rain
  climate, and instantaneous up/down state under a given rain rate;
* :mod:`repro.radio.clearance` — Fresnel/Earth-bulge clearance over
  synthetic terrain: the tower heights hops require.

The weather simulation that drives outage experiments lives in
:mod:`repro.synth.weather`.
"""

from repro.radio.itu import (
    effective_path_length_km,
    rain_attenuation_db,
    rain_exceedance_attenuation_db,
    specific_attenuation_db_per_km,
)
from repro.radio.budget import (
    LinkBudget,
    first_fresnel_radius_m,
    free_space_path_loss_db,
)
from repro.radio.availability import (
    link_availability,
    link_is_up,
    rain_rate_to_kill_link_mm_h,
)
from repro.radio.clearance import (
    SyntheticTerrain,
    earth_bulge_m,
    required_antenna_height_m,
)

__all__ = [
    "effective_path_length_km",
    "rain_attenuation_db",
    "rain_exceedance_attenuation_db",
    "specific_attenuation_db_per_km",
    "LinkBudget",
    "first_fresnel_radius_m",
    "free_space_path_loss_db",
    "link_availability",
    "link_is_up",
    "rain_rate_to_kill_link_mm_h",
    "SyntheticTerrain",
    "earth_bulge_m",
    "required_antenna_height_m",
]
