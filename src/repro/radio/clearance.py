"""Line-of-sight clearance: why HFT towers are tall.

A microwave hop needs its beam to clear terrain plus the Earth's bulge by
~60% of the first Fresnel zone.  Given a terrain model, this module
computes the antenna heights a hop requires — the physics behind §1's
"radios mounted on tall towers" and the §6 trade-off that longer links
need (much) taller, more expensive structures.

Terrain is synthetic (no elevation rasters offline): a seeded sum of
smooth 2-D sinusoids, statistically similar to the gently rolling
Midwest/Appalachian corridor profile.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.geodesy import GeoPoint, geodesic_distance, geodesic_interpolate
from repro.geodesy.earth import EARTH_MEAN_RADIUS_M
from repro.radio.budget import first_fresnel_radius_m

#: Standard effective-Earth-radius factor (atmospheric refraction bends
#: the beam; k = 4/3 is the engineering default).
K_FACTOR = 4.0 / 3.0

#: Required clearance as a fraction of the first Fresnel radius.
FRESNEL_CLEARANCE = 0.6


class SyntheticTerrain:
    """Smooth, seeded, deterministic terrain elevation (metres AMSL).

    A sum of ``octaves`` 2-D sinusoids with geometrically increasing
    spatial frequency; ``amplitude_m`` bounds the relief around
    ``base_m``.
    """

    def __init__(
        self,
        seed: int = 0,
        base_m: float = 220.0,
        amplitude_m: float = 60.0,
        octaves: int = 4,
    ) -> None:
        if amplitude_m < 0.0:
            raise ValueError("amplitude cannot be negative")
        if octaves < 1:
            raise ValueError("need at least one octave")
        rng = random.Random(seed)
        self.base_m = base_m
        self.amplitude_m = amplitude_m
        self._waves: list[tuple[float, float, float, float, float]] = []
        total = 0.0
        for octave in range(octaves):
            weight = 0.6**octave
            # Wavelengths from ~80 km down, in degrees of lat/lon.
            frequency = (1.0 / 0.7) * (2.1**octave)
            self._waves.append(
                (
                    weight,
                    frequency * rng.uniform(0.7, 1.3),
                    frequency * rng.uniform(0.7, 1.3),
                    rng.uniform(0.0, 2.0 * math.pi),
                    rng.uniform(0.0, 2.0 * math.pi),
                )
            )
            total += weight
        self._norm = total

    def elevation_m(self, point: GeoPoint) -> float:
        value = sum(
            weight
            * math.sin(2.0 * math.pi * f_lat * point.latitude + phase_lat)
            * math.cos(2.0 * math.pi * f_lon * point.longitude + phase_lon)
            for weight, f_lat, f_lon, phase_lat, phase_lon in self._waves
        )
        return self.base_m + self.amplitude_m * value / self._norm


def earth_bulge_m(d1_m: float, d2_m: float, k_factor: float = K_FACTOR) -> float:
    """Height of the effective-Earth bulge between two points,
    ``d1·d2 / (2·k·Re)`` — 47 m at the middle of a 64 km hop."""
    if d1_m < 0.0 or d2_m < 0.0:
        raise ValueError("distances cannot be negative")
    return (d1_m * d2_m) / (2.0 * k_factor * EARTH_MEAN_RADIUS_M)


@dataclass(frozen=True)
class ClearanceProfile:
    """Clearance analysis of one hop."""

    distance_km: float
    required_height_m: float
    worst_obstacle_fraction: float  # where along the hop the constraint binds

    @property
    def feasible(self) -> bool:
        """Practical towers top out around 350 m."""
        return self.required_height_m <= 350.0


def required_antenna_height_m(
    a: GeoPoint,
    b: GeoPoint,
    frequency_ghz: float,
    terrain: SyntheticTerrain,
    samples: int = 64,
) -> ClearanceProfile:
    """Minimum equal antenna height (above ground) at both ends.

    The beam from (terrain_a + h) to (terrain_b + h) must clear, at every
    sample, terrain + Earth bulge + 0.6·F1.  Since the line height at
    fraction t is ``lerp(e_a, e_b, t) + h``, the binding constraint gives
    h in closed form as the maximum deficit.
    """
    if samples < 3:
        raise ValueError("need at least three profile samples")
    distance = geodesic_distance(a, b)
    e_a = terrain.elevation_m(a)
    e_b = terrain.elevation_m(b)
    fractions = [i / (samples - 1) for i in range(samples)]
    points = geodesic_interpolate(a, b, fractions)
    worst_deficit = 0.0
    worst_fraction = 0.5
    for t, point in zip(fractions[1:-1], points[1:-1]):
        d1 = t * distance
        d2 = distance - d1
        needed = (
            terrain.elevation_m(point)
            + earth_bulge_m(d1, d2)
            + FRESNEL_CLEARANCE
            * first_fresnel_radius_m(frequency_ghz, d1 / 1000.0, d2 / 1000.0)
        )
        line = e_a + (e_b - e_a) * t
        deficit = needed - line
        if deficit > worst_deficit:
            worst_deficit = deficit
            worst_fraction = t
    return ClearanceProfile(
        distance_km=distance / 1000.0,
        required_height_m=max(0.0, worst_deficit),
        worst_obstacle_fraction=worst_fraction,
    )


def height_vs_hop_length(
    start: GeoPoint,
    azimuth_deg: float,
    hops_km: list[float],
    frequency_ghz: float = 11.0,
    terrain: SyntheticTerrain | None = None,
) -> list[ClearanceProfile]:
    """Required heights for increasing hop lengths from one site.

    Quantifies the §6 trade-off: tower height (≈ cost) grows roughly
    quadratically with hop length through the bulge term.
    """
    terrain = terrain or SyntheticTerrain()
    profiles = []
    for hop_km in hops_km:
        if hop_km <= 0.0:
            raise ValueError("hop length must be positive")
        end = start.destination(azimuth_deg, hop_km * 1000.0)
        profiles.append(
            required_antenna_height_m(start, end, frequency_ghz, terrain)
        )
    return profiles
