"""Rain attenuation following the ITU-R P.838 / P.530 methodology.

Two well-known recommendations underpin microwave link reliability
engineering (the paper cites both in §5):

* **P.838** gives the *specific attenuation* of rain,
  ``γ = k · R^α`` dB/km, where R is the rain rate in mm/h and (k, α)
  depend on frequency and polarisation.
* **P.530** converts specific attenuation into *path* attenuation via an
  effective path length (rain cells don't cover long paths uniformly), and
  scales the 0.01%-exceedance attenuation to other time percentages.

The (k, α) table below lists the standard horizontal-polarisation
regression coefficients at reference frequencies from 4 to 30 GHz —
covering every licensed band on the corridor (6/11/18/23 GHz) — with
log-log interpolation of k and linear-in-log-f interpolation of α between
rows, which is the usual engineering practice.
"""

from __future__ import annotations

import bisect
import math

#: (frequency_GHz, k_H, alpha_H) — ITU-R P.838-3 horizontal-polarisation
#: regression coefficients at reference frequencies.
_P838_TABLE: tuple[tuple[float, float, float], ...] = (
    (4.0, 0.0001071, 1.6009),
    (5.0, 0.0002162, 1.6969),
    (6.0, 0.0007056, 1.5900),
    (7.0, 0.001915, 1.4810),
    (8.0, 0.004115, 1.3905),
    (10.0, 0.01217, 1.2571),
    (12.0, 0.02386, 1.1825),
    (15.0, 0.04481, 1.1233),
    (20.0, 0.09164, 1.0568),
    (25.0, 0.1571, 0.9991),
    (30.0, 0.2403, 0.9485),
)

_FREQS = [row[0] for row in _P838_TABLE]


def _coefficients(frequency_ghz: float) -> tuple[float, float]:
    """(k, α) at ``frequency_ghz``, interpolated between table rows."""
    if not _FREQS[0] <= frequency_ghz <= _FREQS[-1]:
        raise ValueError(
            f"frequency {frequency_ghz} GHz outside supported range "
            f"[{_FREQS[0]}, {_FREQS[-1]}]"
        )
    index = bisect.bisect_left(_FREQS, frequency_ghz)
    if index < len(_FREQS) and _FREQS[index] == frequency_ghz:
        _, k, alpha = _P838_TABLE[index]
        return k, alpha
    f_lo, k_lo, a_lo = _P838_TABLE[index - 1]
    f_hi, k_hi, a_hi = _P838_TABLE[index]
    # k interpolates log-log in frequency; α linearly in log(f).
    t = (math.log(frequency_ghz) - math.log(f_lo)) / (math.log(f_hi) - math.log(f_lo))
    k = math.exp(math.log(k_lo) + t * (math.log(k_hi) - math.log(k_lo)))
    alpha = a_lo + t * (a_hi - a_lo)
    return k, alpha


def specific_attenuation_db_per_km(frequency_ghz: float, rain_rate_mm_h: float) -> float:
    """γ = k·R^α, the rain specific attenuation in dB/km.

    Monotonically increasing in both frequency (over this range) and rain
    rate; zero in dry air.
    """
    if rain_rate_mm_h < 0.0:
        raise ValueError("rain rate cannot be negative")
    if rain_rate_mm_h == 0.0:
        return 0.0
    k, alpha = _coefficients(frequency_ghz)
    return k * rain_rate_mm_h**alpha


def effective_path_length_km(path_km: float, rain_rate_001_mm_h: float) -> float:
    """P.530 effective path length ``d_eff = d / (1 + d/d0)``.

    ``d0 = 35·exp(-0.015·R001)`` with the rain rate capped at 100 mm/h, as
    the recommendation specifies.  Intense rain cells are small, so long
    paths are only partially covered — d_eff saturates near d0.
    """
    if path_km < 0.0:
        raise ValueError("path length cannot be negative")
    rate = min(rain_rate_001_mm_h, 100.0)
    d0 = 35.0 * math.exp(-0.015 * rate)
    return path_km / (1.0 + path_km / d0)


def rain_attenuation_db(
    frequency_ghz: float, path_km: float, rain_rate_mm_h: float
) -> float:
    """Path attenuation (dB) under a uniform rain rate over the cell.

    Uses the effective path length with ``d0`` computed from the same rain
    rate — the instantaneous analogue of the P.530 0.01% computation, used
    by the outage simulation to decide whether a link's fade margin is
    exceeded during a storm.
    """
    gamma = specific_attenuation_db_per_km(frequency_ghz, rain_rate_mm_h)
    return gamma * effective_path_length_km(path_km, rain_rate_mm_h)


def rain_exceedance_attenuation_db(
    frequency_ghz: float,
    path_km: float,
    rain_rate_001_mm_h: float,
    percent_time: float = 0.01,
) -> float:
    """Attenuation exceeded ``percent_time``% of an average year (P.530).

    ``A_0.01 = γ(R_0.01)·d_eff``; other percentages scale as
    ``A_p = A_0.01 · 0.12 · p^−(0.546 + 0.043·log10 p)`` for
    0.001% ≤ p ≤ 1%.
    """
    if not 0.001 <= percent_time <= 1.0:
        raise ValueError("percent_time must be within [0.001, 1]")
    a001 = specific_attenuation_db_per_km(
        frequency_ghz, rain_rate_001_mm_h
    ) * effective_path_length_km(path_km, rain_rate_001_mm_h)
    if percent_time == 0.01:
        return a001
    exponent = -(0.546 + 0.043 * math.log10(percent_time))
    return a001 * 0.12 * percent_time**exponent


def percent_time_for_attenuation(
    frequency_ghz: float,
    path_km: float,
    rain_rate_001_mm_h: float,
    attenuation_db: float,
) -> float:
    """The % of time attenuation exceeds ``attenuation_db`` (inverse of
    :func:`rain_exceedance_attenuation_db`), clamped to [0.001, 1].

    Solved by bisection on the (monotone decreasing in p) scaling law.
    """
    if attenuation_db <= 0.0:
        return 1.0
    low, high = 0.001, 1.0
    a_low = rain_exceedance_attenuation_db(frequency_ghz, path_km, rain_rate_001_mm_h, low)
    a_high = rain_exceedance_attenuation_db(frequency_ghz, path_km, rain_rate_001_mm_h, high)
    if attenuation_db >= a_low:
        return low
    if attenuation_db <= a_high:
        return high
    for _ in range(80):
        mid = math.sqrt(low * high)  # bisect in log space
        a_mid = rain_exceedance_attenuation_db(
            frequency_ghz, path_km, rain_rate_001_mm_h, mid
        )
        if a_mid > attenuation_db:
            low = mid
        else:
            high = mid
    return math.sqrt(low * high)
