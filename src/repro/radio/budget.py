"""Link budgets for point-to-point microwave hops.

A link is engineered with a *fade margin*: the received signal level in
clear air minus the receiver's sensitivity threshold.  Rain (or multipath)
attenuation eats into the margin; when attenuation exceeds it, the link
drops.  The §5 reliability analysis turns on exactly this mechanism —
longer links and higher frequencies have less margin per dB of rain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def free_space_path_loss_db(frequency_ghz: float, distance_km: float) -> float:
    """Free-space path loss: ``92.45 + 20·log10(f_GHz) + 20·log10(d_km)``."""
    if frequency_ghz <= 0.0 or distance_km <= 0.0:
        raise ValueError("frequency and distance must be positive")
    return 92.45 + 20.0 * math.log10(frequency_ghz) + 20.0 * math.log10(distance_km)


def first_fresnel_radius_m(
    frequency_ghz: float, d1_km: float, d2_km: float
) -> float:
    """Radius of the first Fresnel zone at a point splitting the path
    into ``d1_km`` and ``d2_km``: ``17.32·sqrt(d1·d2 / (f·(d1+d2)))`` m.

    Towers must clear ~60% of this radius above terrain for line-of-sight
    performance — the reason HFT towers are tall.
    """
    if d1_km < 0.0 or d2_km < 0.0 or d1_km + d2_km == 0.0:
        raise ValueError("segment lengths must be non-negative and not both zero")
    if frequency_ghz <= 0.0:
        raise ValueError("frequency must be positive")
    return 17.32 * math.sqrt((d1_km * d2_km) / (frequency_ghz * (d1_km + d2_km)))


@dataclass(frozen=True, slots=True)
class LinkBudget:
    """Clear-air link budget for one microwave hop.

    Default figures are typical of licensed long-haul HFT radios: +30 dBm
    transmit power, 1.2 m-class high-performance antennas (~43 dBi at
    11 GHz), ~2 dB of feeder/connector losses per side, and a −72 dBm
    receiver threshold at the high-capacity modulation these links run.
    """

    tx_power_dbm: float = 30.0
    tx_antenna_gain_dbi: float = 43.0
    rx_antenna_gain_dbi: float = 43.0
    feeder_losses_db: float = 4.0
    rx_threshold_dbm: float = -72.0

    def received_level_dbm(self, frequency_ghz: float, distance_km: float) -> float:
        """Clear-air receive level over a hop."""
        return (
            self.tx_power_dbm
            + self.tx_antenna_gain_dbi
            + self.rx_antenna_gain_dbi
            - self.feeder_losses_db
            - free_space_path_loss_db(frequency_ghz, distance_km)
        )

    def fade_margin_db(self, frequency_ghz: float, distance_km: float) -> float:
        """Clear-air margin before the receiver loses the signal.

        May be negative for over-long hops — such a link is not viable.
        """
        return self.received_level_dbm(frequency_ghz, distance_km) - self.rx_threshold_dbm

    def max_hop_km(self, frequency_ghz: float, required_margin_db: float = 0.0) -> float:
        """Longest hop with at least ``required_margin_db`` of margin."""
        if required_margin_db < 0.0:
            raise ValueError("required margin cannot be negative")
        budget = (
            self.tx_power_dbm
            + self.tx_antenna_gain_dbi
            + self.rx_antenna_gain_dbi
            - self.feeder_losses_db
            - self.rx_threshold_dbm
            - required_margin_db
        )
        # budget = 92.45 + 20 log f + 20 log d  =>  solve for d.
        exponent = (budget - 92.45 - 20.0 * math.log10(frequency_ghz)) / 20.0
        return 10.0**exponent
