"""Bounded memoisation of the Vincenty inverse solution.

The inverse geodesic problem is the hot path of the whole reconstruction
pipeline: stitching measures every endpoint against cluster anchors, fiber
attachment measures every tower against every data center, and link lengths
feed the latency model.  The same coordinate pairs recur constantly — the
tower set of a licensee is stable across snapshot dates, and several
analyses reconstruct the same licensee repeatedly — so an LRU memo over
``(lat_a, lon_a, lat_b, lon_b)`` converts most of those Vincenty iterations
into dictionary lookups.

The memo is *opt-in*: :func:`repro.geodesy.earth.geodesic_inverse` consults
the currently-installed memo (if any) and otherwise computes as before.
:class:`repro.core.engine.CorridorEngine` installs its own memo around each
unit of work via :func:`use_memo`, so cache statistics stay per-engine and
plain library calls are unaffected.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

#: Inverse solutions are (distance_m, azimuth_fwd_deg, azimuth_back_deg).
InverseSolution = tuple[float, float, float]

#: Default memo capacity.  A full corridor scenario touches a few hundred
#: thousand distinct coordinate pairs; at ~100 bytes per entry this bound
#: keeps the memo under ~25 MB.
DEFAULT_MEMO_SIZE = 262_144


class GeodesicMemo:
    """A bounded LRU cache of inverse geodesic solutions.

    Tracks hits, misses and evictions so callers (the engine's
    ``CacheStats``) can report effectiveness.  The key is the exact
    coordinate 4-tuple; memoised results are bit-identical to fresh
    computations, so enabling the memo never perturbs analysis output.
    """

    def __init__(self, maxsize: int = DEFAULT_MEMO_SIZE) -> None:
        if maxsize <= 0:
            raise ValueError("memo size must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[
            tuple[float, float, float, float], InverseSolution
        ] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, key: tuple[float, float, float, float]
    ) -> InverseSolution | None:
        """The memoised solution for ``key``, or None (counts hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(
        self, key: tuple[float, float, float, float], solution: InverseSolution
    ) -> None:
        """Memoise ``solution``, evicting the least recently used entry."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = solution
            return
        if len(self._entries) >= self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = solution

    def entries(self) -> tuple[
        tuple[tuple[float, float, float, float], InverseSolution], ...
    ]:
        """Every memoised (key, solution) pair, LRU order (oldest first).

        Solutions are exact and parameter-independent, so entries can be
        transplanted between memos (worker seeding and merge-back in
        :mod:`repro.parallel`) without perturbing any result.
        """
        return tuple(self._entries.items())

    def keys(self) -> frozenset[tuple[float, float, float, float]]:
        """The memoised coordinate keys (for delta computation)."""
        return frozenset(self._entries)

    def clear(self) -> None:
        self._entries.clear()


#: The memo currently consulted by ``geodesic_inverse`` (None = disabled).
_active_memo: GeodesicMemo | None = None


def active_memo() -> GeodesicMemo | None:
    """The memo installed by the innermost :func:`use_memo`, if any."""
    return _active_memo


@contextmanager
def use_memo(memo: GeodesicMemo) -> Iterator[GeodesicMemo]:
    """Install ``memo`` for the duration of the block (re-entrant)."""
    global _active_memo
    previous = _active_memo
    _active_memo = memo
    try:
        yield memo
    finally:
        _active_memo = previous
