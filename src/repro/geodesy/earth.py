"""WGS84 Earth model and geodesic computations.

Implements the classical Vincenty (1975) solutions of the inverse and direct
geodesic problems on the WGS84 ellipsoid, with a spherical great-circle
fallback for the nearly-antipodal cases where Vincenty's inverse iteration
does not converge.  Accuracy of the inverse solution is well under a
millimetre for corridor-scale distances, far beyond what the latency
analysis needs (1 microsecond of light travel ~ 300 m).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.geodesy import memo as _memo_module

#: WGS84 semi-major axis (equatorial radius), metres.
EARTH_EQUATORIAL_RADIUS_M = 6_378_137.0

#: WGS84 flattening.
EARTH_FLATTENING = 1.0 / 298.257223563

#: WGS84 semi-minor axis (polar radius), metres.
EARTH_POLAR_RADIUS_M = EARTH_EQUATORIAL_RADIUS_M * (1.0 - EARTH_FLATTENING)

#: Mean Earth radius (IUGG), metres — used by the spherical fallback.
EARTH_MEAN_RADIUS_M = 6_371_008.8

_VINCENTY_MAX_ITERATIONS = 200
_VINCENTY_CONVERGENCE = 1e-12


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A point on the Earth's surface (WGS84 latitude/longitude, degrees).

    ``elevation_m`` carries the ground/structure elevation when known; it
    participates in equality but not in distance computations (the paper's
    latency model is purely horizontal).
    """

    latitude: float
    longitude: float
    elevation_m: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude!r}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude!r}")

    def distance_to(self, other: "GeoPoint") -> float:
        """Geodesic distance to ``other`` in metres."""
        return geodesic_distance(self, other)

    def azimuth_to(self, other: "GeoPoint") -> float:
        """Initial geodesic azimuth towards ``other``, degrees clockwise from north."""
        return geodesic_azimuth(self, other)

    def destination(self, azimuth_deg: float, distance_m: float) -> "GeoPoint":
        """The point reached by travelling ``distance_m`` along ``azimuth_deg``."""
        return geodesic_destination(self, azimuth_deg, distance_m)

    def rounded(self, decimals: int = 6) -> tuple[float, float]:
        """A hashable (lat, lon) key rounded to ``decimals`` places."""
        return (round(self.latitude, decimals), round(self.longitude, decimals))

    def __iter__(self) -> Iterator[float]:
        yield self.latitude
        yield self.longitude

    # Fast pickle path: snapshot exports (repro.store) carry hundreds of
    # points per entry, and the generic frozen-dataclass __setstate__
    # walks dataclasses.fields() per instance.  Same semantics —
    # validation is skipped on unpickle either way.
    def __getstate__(self):
        return (self.latitude, self.longitude, self.elevation_m)

    def __setstate__(self, state) -> None:
        set_ = object.__setattr__
        set_(self, "latitude", state[0])
        set_(self, "longitude", state[1])
        set_(self, "elevation_m", state[2])


def great_circle_distance(a: GeoPoint, b: GeoPoint) -> float:
    """Spherical (haversine) distance in metres on the mean-radius sphere."""
    phi1, phi2 = math.radians(a.latitude), math.radians(b.latitude)
    dphi = phi2 - phi1
    dlam = math.radians(b.longitude - a.longitude)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_MEAN_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def geodesic_inverse(a: GeoPoint, b: GeoPoint) -> tuple[float, float, float]:
    """Solve the WGS84 inverse geodesic problem.

    Returns ``(distance_m, initial_azimuth_deg, final_azimuth_deg)`` from
    ``a`` to ``b``.  Falls back to the spherical solution for the rare
    nearly-antipodal pairs where Vincenty's iteration fails to converge
    (irrelevant on the Chicago–NJ corridor but kept for robustness).

    When a :class:`repro.geodesy.memo.GeodesicMemo` is installed (see
    :func:`repro.geodesy.memo.use_memo`), solutions are served from and
    recorded into it; memoised results are bit-identical to fresh ones.
    """
    memo = _memo_module.active_memo()
    if memo is not None:
        key = (a.latitude, a.longitude, b.latitude, b.longitude)
        cached = memo.lookup(key)
        if cached is not None:
            return cached
        solution = _geodesic_inverse_uncached(a, b)
        memo.store(key, solution)
        return solution
    return _geodesic_inverse_uncached(a, b)


def _geodesic_inverse_uncached(a: GeoPoint, b: GeoPoint) -> tuple[float, float, float]:
    """The memo-free Vincenty inverse kernel."""
    if a.rounded(12) == b.rounded(12):
        return (0.0, 0.0, 0.0)

    f = EARTH_FLATTENING
    a_ax = EARTH_EQUATORIAL_RADIUS_M
    b_ax = EARTH_POLAR_RADIUS_M

    u1 = math.atan((1.0 - f) * math.tan(math.radians(a.latitude)))
    u2 = math.atan((1.0 - f) * math.tan(math.radians(b.latitude)))
    big_l = math.radians(b.longitude - a.longitude)

    sin_u1, cos_u1 = math.sin(u1), math.cos(u1)
    sin_u2, cos_u2 = math.sin(u2), math.cos(u2)

    lam = big_l
    for _ in range(_VINCENTY_MAX_ITERATIONS):
        sin_lam, cos_lam = math.sin(lam), math.cos(lam)
        sin_sigma = math.sqrt(
            (cos_u2 * sin_lam) ** 2 + (cos_u1 * sin_u2 - sin_u1 * cos_u2 * cos_lam) ** 2
        )
        # lint: disable=float-eq (Vincenty's coincident-point guard: sqrt
        # of a sum of squares is exactly 0.0 only for identical points)
        if sin_sigma == 0.0:
            return (0.0, 0.0, 0.0)
        cos_sigma = sin_u1 * sin_u2 + cos_u1 * cos_u2 * cos_lam
        sigma = math.atan2(sin_sigma, cos_sigma)
        sin_alpha = cos_u1 * cos_u2 * sin_lam / sin_sigma
        cos_sq_alpha = 1.0 - sin_alpha**2
        # lint: disable=float-eq (exact equatorial-geodesic case; guards a
        # division by cos_sq_alpha that only an exact 0.0 would break)
        if cos_sq_alpha == 0.0:
            cos_2sigma_m = 0.0  # equatorial geodesic
        else:
            cos_2sigma_m = cos_sigma - 2.0 * sin_u1 * sin_u2 / cos_sq_alpha
        c = f / 16.0 * cos_sq_alpha * (4.0 + f * (4.0 - 3.0 * cos_sq_alpha))
        lam_prev = lam
        lam = big_l + (1.0 - c) * f * sin_alpha * (
            sigma
            + c * sin_sigma * (cos_2sigma_m + c * cos_sigma * (-1.0 + 2.0 * cos_2sigma_m**2))
        )
        if abs(lam - lam_prev) < _VINCENTY_CONVERGENCE:
            break
    else:
        # Nearly antipodal: Vincenty does not converge.  Use the spherical
        # solution, which is accurate to ~0.5% — acceptable for a fallback.
        dist = great_circle_distance(a, b)
        az_fwd = _spherical_azimuth(a, b)
        az_back = (_spherical_azimuth(b, a) + 180.0) % 360.0
        return (dist, az_fwd, az_back)

    u_sq = cos_sq_alpha * (a_ax**2 - b_ax**2) / b_ax**2
    big_a = 1.0 + u_sq / 16384.0 * (4096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq)))
    big_b = u_sq / 1024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)))
    delta_sigma = (
        big_b
        * sin_sigma
        * (
            cos_2sigma_m
            + big_b
            / 4.0
            * (
                cos_sigma * (-1.0 + 2.0 * cos_2sigma_m**2)
                - big_b
                / 6.0
                * cos_2sigma_m
                * (-3.0 + 4.0 * sin_sigma**2)
                * (-3.0 + 4.0 * cos_2sigma_m**2)
            )
        )
    )
    distance = b_ax * big_a * (sigma - delta_sigma)

    az_fwd = math.degrees(
        math.atan2(cos_u2 * math.sin(lam), cos_u1 * sin_u2 - sin_u1 * cos_u2 * math.cos(lam))
    )
    az_back = math.degrees(
        math.atan2(cos_u1 * math.sin(lam), -sin_u1 * cos_u2 + cos_u1 * sin_u2 * math.cos(lam))
    )
    return (distance, az_fwd % 360.0, az_back % 360.0)


def _spherical_azimuth(a: GeoPoint, b: GeoPoint) -> float:
    phi1, phi2 = math.radians(a.latitude), math.radians(b.latitude)
    dlam = math.radians(b.longitude - a.longitude)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    return math.degrees(math.atan2(y, x)) % 360.0


def geodesic_distance(a: GeoPoint, b: GeoPoint) -> float:
    """WGS84 geodesic distance between ``a`` and ``b`` in metres."""
    return geodesic_inverse(a, b)[0]


def geodesic_azimuth(a: GeoPoint, b: GeoPoint) -> float:
    """Initial azimuth (degrees clockwise from north) of the geodesic a→b."""
    return geodesic_inverse(a, b)[1]


def geodesic_destination(start: GeoPoint, azimuth_deg: float, distance_m: float) -> GeoPoint:
    """Solve the WGS84 direct geodesic problem (Vincenty direct formula).

    Returns the point reached by travelling ``distance_m`` metres from
    ``start`` along the initial bearing ``azimuth_deg``.
    """
    # lint: disable=float-eq (exact zero-distance request returns the start
    # point; sub-epsilon distances must still move through the formula)
    if distance_m == 0.0:
        return GeoPoint(start.latitude, start.longitude)
    if distance_m < 0.0:
        return geodesic_destination(start, (azimuth_deg + 180.0) % 360.0, -distance_m)

    f = EARTH_FLATTENING
    b_ax = EARTH_POLAR_RADIUS_M
    a_ax = EARTH_EQUATORIAL_RADIUS_M

    alpha1 = math.radians(azimuth_deg)
    u1 = math.atan((1.0 - f) * math.tan(math.radians(start.latitude)))
    sigma1 = math.atan2(math.tan(u1), math.cos(alpha1))
    sin_alpha = math.cos(u1) * math.sin(alpha1)
    cos_sq_alpha = 1.0 - sin_alpha**2
    u_sq = cos_sq_alpha * (a_ax**2 - b_ax**2) / b_ax**2
    big_a = 1.0 + u_sq / 16384.0 * (4096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq)))
    big_b = u_sq / 1024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)))

    sigma = distance_m / (b_ax * big_a)
    for _ in range(_VINCENTY_MAX_ITERATIONS):
        cos_2sigma_m = math.cos(2.0 * sigma1 + sigma)
        sin_sigma, cos_sigma = math.sin(sigma), math.cos(sigma)
        delta_sigma = (
            big_b
            * sin_sigma
            * (
                cos_2sigma_m
                + big_b
                / 4.0
                * (
                    cos_sigma * (-1.0 + 2.0 * cos_2sigma_m**2)
                    - big_b
                    / 6.0
                    * cos_2sigma_m
                    * (-3.0 + 4.0 * sin_sigma**2)
                    * (-3.0 + 4.0 * cos_2sigma_m**2)
                )
            )
        )
        sigma_prev = sigma
        sigma = distance_m / (b_ax * big_a) + delta_sigma
        if abs(sigma - sigma_prev) < _VINCENTY_CONVERGENCE:
            break

    sin_sigma, cos_sigma = math.sin(sigma), math.cos(sigma)
    sin_u1, cos_u1 = math.sin(u1), math.cos(u1)
    cos_2sigma_m = math.cos(2.0 * sigma1 + sigma)

    tmp = sin_u1 * sin_sigma - cos_u1 * cos_sigma * math.cos(alpha1)
    lat2 = math.atan2(
        sin_u1 * cos_sigma + cos_u1 * sin_sigma * math.cos(alpha1),
        (1.0 - f) * math.sqrt(sin_alpha**2 + tmp**2),
    )
    lam = math.atan2(
        sin_sigma * math.sin(alpha1),
        cos_u1 * cos_sigma - sin_u1 * sin_sigma * math.cos(alpha1),
    )
    c = f / 16.0 * cos_sq_alpha * (4.0 + f * (4.0 - 3.0 * cos_sq_alpha))
    big_l = lam - (1.0 - c) * f * sin_alpha * (
        sigma + c * sin_sigma * (cos_2sigma_m + c * cos_sigma * (-1.0 + 2.0 * cos_2sigma_m**2))
    )
    lon2 = math.radians(start.longitude) + big_l

    lon_deg = math.degrees(lon2)
    # Normalise into [-180, 180].
    lon_deg = (lon_deg + 180.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(lat2), lon_deg)
