"""Coordinate format conversions for FCC ULS data.

FCC license filings quote tower coordinates in degrees-minutes-seconds with
an explicit hemisphere letter (e.g. ``41-44-34.6 N``), and the ULS weekly
dumps split the same value across separate fields.  This module converts
between those representations and decimal degrees.
"""

from __future__ import annotations

import math
import re

from repro.geodesy.earth import GeoPoint

_DMS_RE = re.compile(
    r"""^\s*
    (?P<deg>\d{1,3})\s*[-°\s]\s*
    (?P<min>\d{1,2})\s*[-'\s]\s*
    (?P<sec>\d{1,2}(?:\.\d+)?)\s*["]?\s*
    (?P<hemi>[NSEW])
    \s*$""",
    re.VERBOSE | re.IGNORECASE,
)


def parse_dms(text: str) -> float:
    """Parse a DMS coordinate string such as ``"41-44-34.6 N"``.

    Returns decimal degrees; southern and western hemispheres are negative.

    >>> round(parse_dms("41-44-34.6 N"), 6)
    41.742944
    >>> parse_dms("88-14-22.0 W") < 0
    True
    """
    match = _DMS_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable DMS coordinate: {text!r}")
    degrees = int(match.group("deg"))
    minutes = int(match.group("min"))
    seconds = float(match.group("sec"))
    if minutes >= 60 or seconds >= 60.0:
        raise ValueError(f"minutes/seconds out of range in {text!r}")
    hemi = match.group("hemi").upper()
    value = degrees + minutes / 60.0 + seconds / 3600.0
    if hemi in ("S", "W"):
        value = -value
    limit = 90.0 if hemi in ("N", "S") else 180.0
    if value < -limit or value > limit:
        raise ValueError(f"coordinate out of range in {text!r}")
    return value


def format_dms(value: float, kind: str, seconds_decimals: int = 1) -> str:
    """Format decimal degrees as an FCC-style DMS string.

    ``kind`` is ``"lat"`` or ``"lon"`` and selects the hemisphere letters.

    >>> format_dms(41.742944, "lat")
    '41-44-34.6 N'
    """
    if kind == "lat":
        hemi = "N" if value >= 0.0 else "S"
        limit = 90.0
    elif kind == "lon":
        hemi = "E" if value >= 0.0 else "W"
        limit = 180.0
    else:
        raise ValueError(f"kind must be 'lat' or 'lon', got {kind!r}")
    if abs(value) > limit:
        raise ValueError(f"coordinate out of range: {value!r}")

    magnitude = abs(value)
    degrees = int(magnitude)
    rem_minutes = (magnitude - degrees) * 60.0
    minutes = int(rem_minutes)
    seconds = (rem_minutes - minutes) * 60.0
    seconds = round(seconds, seconds_decimals)
    # Carry rounding overflow (e.g. 59.96" -> 60.0").
    if seconds >= 60.0:
        seconds -= 60.0
        minutes += 1
    if minutes >= 60:
        minutes -= 60
        degrees += 1
    return f"{degrees}-{minutes:02d}-{seconds:0{3 + seconds_decimals}.{seconds_decimals}f} {hemi}"


def parse_uls_coordinate(
    degrees: int | str,
    minutes: int | str,
    seconds: float | str,
    direction: str,
) -> float:
    """Convert split ULS dump coordinate fields into decimal degrees.

    The ULS ``LO`` record stores latitude/longitude as separate
    degrees/minutes/seconds/direction columns; all arrive as strings.
    """
    deg = int(degrees)
    minute = int(minutes)
    sec = float(seconds)
    if deg < 0 or minute < 0 or sec < 0.0:
        raise ValueError("ULS coordinate components must be non-negative")
    if minute >= 60 or sec >= 60.0:
        raise ValueError("minutes/seconds out of range")
    direction = direction.strip().upper()
    if direction not in ("N", "S", "E", "W"):
        raise ValueError(f"bad hemisphere: {direction!r}")
    value = deg + minute / 60.0 + sec / 3600.0
    if direction in ("S", "W"):
        value = -value
    return value


def coordinate_key(point: GeoPoint, tolerance_m: float = 30.0) -> tuple[int, int]:
    """A grid key that collides for points within roughly ``tolerance_m``.

    Used as a fast pre-filter for endpoint stitching: candidate towers are
    bucketed on this key (plus the 8 neighbouring cells) before the exact
    geodesic distance test.  One degree of latitude is ~111.32 km.
    """
    if tolerance_m <= 0.0:
        raise ValueError("tolerance must be positive")
    cell_deg_lat = tolerance_m / 111_320.0
    cos_lat = max(0.01, math.cos(math.radians(point.latitude)))
    cell_deg_lon = tolerance_m / (111_320.0 * cos_lat)
    return (
        int(point.latitude // cell_deg_lat),
        int(point.longitude // cell_deg_lon),
    )
