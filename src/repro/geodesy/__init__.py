"""Geodesy substrate: WGS84 geodesics, coordinate formats, polyline geometry.

The paper relies on geodesic ("shortest path on Earth's surface") distances
between license endpoints and data centers.  This subpackage provides that
machinery from scratch (the original study used geopandas/shapely; neither
is available here).

Public API
----------

``GeoPoint``
    An immutable latitude/longitude pair with convenience geometry methods.
``geodesic_distance``, ``geodesic_azimuth``
    WGS84 inverse problem (Vincenty, with a great-circle fallback for the
    nearly-antipodal inputs where Vincenty fails to converge).
``geodesic_destination``
    WGS84 direct problem.
``geodesic_interpolate``
    Points along the geodesic between two endpoints.
``parse_dms``, ``format_dms``
    FCC ULS coordinate format (degrees-minutes-seconds with hemisphere).
``polyline_length``, ``cumulative_distances``, ``stretch_factor``
    Polyline geometry over sequences of points.
``GeodesicMemo``, ``use_memo``, ``active_memo``
    Opt-in bounded memoisation of the Vincenty inverse hot path (installed
    by :class:`repro.core.engine.CorridorEngine` around reconstruction).
``inverse_batch``, ``inverse_trig``, ``reduced_latitude_trig``
    Batch evaluation over coordinate columns (the columnar kernel's
    geodesic substrate), bit-identical to the scalar path and able to
    consult/feed a :class:`GeodesicMemo` in bulk.
"""

from repro.geodesy.earth import (
    EARTH_EQUATORIAL_RADIUS_M,
    EARTH_FLATTENING,
    EARTH_MEAN_RADIUS_M,
    EARTH_POLAR_RADIUS_M,
    GeoPoint,
    geodesic_azimuth,
    geodesic_destination,
    geodesic_distance,
    geodesic_inverse,
    great_circle_distance,
)
from repro.geodesy.batch import (
    inverse_batch,
    inverse_trig,
    reduced_latitude_trig,
)
from repro.geodesy.coordinates import (
    format_dms,
    parse_dms,
    parse_uls_coordinate,
)
from repro.geodesy.memo import (
    GeodesicMemo,
    active_memo,
    use_memo,
)
from repro.geodesy.path import (
    cross_track_distance,
    cumulative_distances,
    geodesic_interpolate,
    nearest_point_index,
    polyline_length,
    stretch_factor,
)

__all__ = [
    "EARTH_EQUATORIAL_RADIUS_M",
    "EARTH_FLATTENING",
    "EARTH_MEAN_RADIUS_M",
    "EARTH_POLAR_RADIUS_M",
    "GeoPoint",
    "geodesic_azimuth",
    "geodesic_destination",
    "geodesic_distance",
    "geodesic_inverse",
    "great_circle_distance",
    "GeodesicMemo",
    "active_memo",
    "use_memo",
    "inverse_batch",
    "inverse_trig",
    "reduced_latitude_trig",
    "format_dms",
    "parse_dms",
    "parse_uls_coordinate",
    "cross_track_distance",
    "cumulative_distances",
    "geodesic_interpolate",
    "nearest_point_index",
    "polyline_length",
    "stretch_factor",
]
