"""Batch evaluation of the Vincenty inverse problem over coordinate columns.

The columnar reconstruction kernel (:mod:`repro.core.columnar`) measures
geodesics over *columns* of coordinates — every filed path pair of a
license store, every in-range data-center/tower pair of a fiber pass —
rather than object-by-object.  Solving those pairs one
:func:`repro.geodesy.earth.geodesic_inverse` call at a time repays the
per-call overhead (GeoPoint attribute access, reduced-latitude trig)
thousands of times per batch.

:func:`inverse_batch` amortises that overhead: the reduced-latitude trig
(``U = atan((1-f)·tan(φ))``) is computed once per *point*, then every
``(i, j)`` index pair is solved by :func:`inverse_trig`, an inline
restatement of :func:`repro.geodesy.earth._geodesic_inverse_uncached`
that performs the identical sequence of floating-point operations —
batch solutions are bit-identical to scalar ones (pinned in
``tests/test_columnar.py``).

When a :class:`~repro.geodesy.memo.GeodesicMemo` is passed, the batch
consults it pair-by-pair before solving and feeds every fresh solution
back, with exactly the lookup/store (and therefore hit/miss/LRU)
semantics of the scalar memoised path.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geodesy.earth import (
    EARTH_EQUATORIAL_RADIUS_M,
    EARTH_FLATTENING,
    EARTH_POLAR_RADIUS_M,
    _VINCENTY_CONVERGENCE,
    _VINCENTY_MAX_ITERATIONS,
    GeoPoint,
    _spherical_azimuth,
    great_circle_distance,
)
from repro.geodesy.memo import GeodesicMemo, InverseSolution


def reduced_latitude_trig(lat_deg: float) -> tuple[float, float]:
    """``(sin U, cos U)`` of the reduced latitude of ``lat_deg``.

    This is the per-point half of Vincenty's inverse formula — the part a
    column kernel precomputes once per coordinate instead of twice per
    pair.
    """
    u = math.atan((1.0 - EARTH_FLATTENING) * math.tan(math.radians(lat_deg)))
    return (math.sin(u), math.cos(u))


def inverse_trig(
    lat1: float,
    lon1: float,
    lat2: float,
    lon2: float,
    sin_u1: float,
    cos_u1: float,
    sin_u2: float,
    cos_u2: float,
) -> InverseSolution:
    """Vincenty inverse with precomputed reduced-latitude trig.

    Performs the exact floating-point operation sequence of
    :func:`repro.geodesy.earth._geodesic_inverse_uncached` (including the
    rounded-to-12-decimals coincident-point guard and the spherical
    nearly-antipodal fallback), so results are bit-identical to the
    scalar path.
    """
    # lint: disable=float-eq (the scalar kernel's coincident-point guard:
    # GeoPoint.rounded(12) tuple equality, restated over raw floats)
    if round(lat1, 12) == round(lat2, 12) and round(lon1, 12) == round(lon2, 12):
        return (0.0, 0.0, 0.0)

    f = EARTH_FLATTENING
    a_ax = EARTH_EQUATORIAL_RADIUS_M
    b_ax = EARTH_POLAR_RADIUS_M

    big_l = math.radians(lon2 - lon1)
    lam = big_l
    for _ in range(_VINCENTY_MAX_ITERATIONS):
        sin_lam, cos_lam = math.sin(lam), math.cos(lam)
        sin_sigma = math.sqrt(
            (cos_u2 * sin_lam) ** 2 + (cos_u1 * sin_u2 - sin_u1 * cos_u2 * cos_lam) ** 2
        )
        # lint: disable=float-eq (Vincenty's coincident-point guard: sqrt
        # of a sum of squares is exactly 0.0 only for identical points)
        if sin_sigma == 0.0:
            return (0.0, 0.0, 0.0)
        cos_sigma = sin_u1 * sin_u2 + cos_u1 * cos_u2 * cos_lam
        sigma = math.atan2(sin_sigma, cos_sigma)
        sin_alpha = cos_u1 * cos_u2 * sin_lam / sin_sigma
        cos_sq_alpha = 1.0 - sin_alpha**2
        # lint: disable=float-eq (exact equatorial-geodesic case; guards a
        # division by cos_sq_alpha that only an exact 0.0 would break)
        if cos_sq_alpha == 0.0:
            cos_2sigma_m = 0.0  # equatorial geodesic
        else:
            cos_2sigma_m = cos_sigma - 2.0 * sin_u1 * sin_u2 / cos_sq_alpha
        c = f / 16.0 * cos_sq_alpha * (4.0 + f * (4.0 - 3.0 * cos_sq_alpha))
        lam_prev = lam
        lam = big_l + (1.0 - c) * f * sin_alpha * (
            sigma
            + c * sin_sigma * (cos_2sigma_m + c * cos_sigma * (-1.0 + 2.0 * cos_2sigma_m**2))
        )
        if abs(lam - lam_prev) < _VINCENTY_CONVERGENCE:
            break
    else:
        # Nearly antipodal: fall back to the spherical solution, exactly
        # as the scalar kernel does.
        a = GeoPoint(lat1, lon1)
        b = GeoPoint(lat2, lon2)
        dist = great_circle_distance(a, b)
        az_fwd = _spherical_azimuth(a, b)
        az_back = (_spherical_azimuth(b, a) + 180.0) % 360.0
        return (dist, az_fwd, az_back)

    u_sq = cos_sq_alpha * (a_ax**2 - b_ax**2) / b_ax**2
    big_a = 1.0 + u_sq / 16384.0 * (4096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq)))
    big_b = u_sq / 1024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)))
    delta_sigma = (
        big_b
        * sin_sigma
        * (
            cos_2sigma_m
            + big_b
            / 4.0
            * (
                cos_sigma * (-1.0 + 2.0 * cos_2sigma_m**2)
                - big_b
                / 6.0
                * cos_2sigma_m
                * (-3.0 + 4.0 * sin_sigma**2)
                * (-3.0 + 4.0 * cos_2sigma_m**2)
            )
        )
    )
    distance = b_ax * big_a * (sigma - delta_sigma)

    az_fwd = math.degrees(
        math.atan2(cos_u2 * math.sin(lam), cos_u1 * sin_u2 - sin_u1 * cos_u2 * math.cos(lam))
    )
    az_back = math.degrees(
        math.atan2(cos_u1 * math.sin(lam), -sin_u1 * cos_u2 + cos_u1 * sin_u2 * math.cos(lam))
    )
    return (distance, az_fwd % 360.0, az_back % 360.0)


def inverse_batch(
    lats: Sequence[float],
    lons: Sequence[float],
    pairs: Sequence[tuple[int, int]],
    memo: GeodesicMemo | None = None,
) -> list[InverseSolution]:
    """Solve the inverse problem for every ``(i, j)`` index pair.

    ``lats``/``lons`` are parallel coordinate columns (decimal degrees);
    each pair indexes into them.  Reduced-latitude trig is computed once
    per point.  With ``memo``, every pair is looked up before solving and
    every fresh solution is stored — one bulk consult-and-feed pass with
    the scalar path's exact hit/miss accounting and LRU order.

    Returns solutions in pair order, each ``(distance_m,
    initial_azimuth_deg, final_azimuth_deg)``, bit-identical to
    :func:`repro.geodesy.earth.geodesic_inverse` on the same inputs.
    """
    if len(lats) != len(lons):
        raise ValueError("lats and lons must be parallel columns")
    trig = [reduced_latitude_trig(lat) for lat in lats]
    solutions: list[InverseSolution] = []
    for i, j in pairs:
        lat1, lon1 = lats[i], lons[i]
        lat2, lon2 = lats[j], lons[j]
        if memo is not None:
            key = (lat1, lon1, lat2, lon2)
            cached = memo.lookup(key)
            if cached is not None:
                solutions.append(cached)
                continue
        sin_u1, cos_u1 = trig[i]
        sin_u2, cos_u2 = trig[j]
        solution = inverse_trig(
            lat1, lon1, lat2, lon2, sin_u1, cos_u1, sin_u2, cos_u2
        )
        if memo is not None:
            memo.store(key, solution)
        solutions.append(solution)
    return solutions
