"""Polyline geometry over sequences of :class:`GeoPoint`.

Microwave routes are polylines of tower coordinates; the analyses need their
lengths, their stretch relative to the endpoint geodesic, interpolation along
geodesics (for synthesising tower sites), and cross-track offsets (for
measuring how far a tower strays from the corridor geodesic).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geodesy.earth import (
    EARTH_MEAN_RADIUS_M,
    GeoPoint,
    geodesic_destination,
    geodesic_distance,
    geodesic_inverse,
)


def polyline_length(points: Sequence[GeoPoint]) -> float:
    """Total geodesic length of a polyline, metres.

    An empty or single-point polyline has length zero.
    """
    return sum(
        geodesic_distance(first, second) for first, second in zip(points, points[1:])
    )


def cumulative_distances(points: Sequence[GeoPoint]) -> list[float]:
    """Cumulative geodesic distance at each vertex, starting at 0.0."""
    if not points:
        return []
    distances = [0.0]
    for first, second in zip(points, points[1:]):
        distances.append(distances[-1] + geodesic_distance(first, second))
    return distances


def stretch_factor(points: Sequence[GeoPoint]) -> float:
    """Polyline length divided by the geodesic distance between its endpoints.

    Equals 1.0 for a straight (geodesic) two-point path; grows with detours.
    Raises :class:`ValueError` for degenerate polylines (fewer than two
    points or coincident endpoints).
    """
    if len(points) < 2:
        raise ValueError("stretch factor needs at least two points")
    direct = geodesic_distance(points[0], points[-1])
    # lint: disable=float-eq (geodesic_inverse returns exactly 0.0 for
    # coincident endpoints; this is a sentinel, not a computed distance)
    if direct == 0.0:
        raise ValueError("stretch factor undefined for coincident endpoints")
    return polyline_length(points) / direct


def geodesic_interpolate(
    start: GeoPoint, end: GeoPoint, fractions: Sequence[float]
) -> list[GeoPoint]:
    """Points along the geodesic from ``start`` to ``end``.

    Each fraction is a position in [0, 1] along the geodesic (0 -> start,
    1 -> end).  Fractions outside [0, 1] extrapolate along the same
    geodesic, which is occasionally useful for placing gateway towers just
    beyond a data center.
    """
    distance, azimuth, _ = geodesic_inverse(start, end)
    points = []
    for fraction in fractions:
        # lint: disable=float-eq (exact literal 0.0 means "the start point
        # itself"; a tolerance would snap nearby fractions to the start)
        if fraction == 0.0:
            points.append(GeoPoint(start.latitude, start.longitude))
        else:
            points.append(geodesic_destination(start, azimuth, distance * fraction))
    return points


def offset_point(
    start: GeoPoint, end: GeoPoint, fraction: float, lateral_m: float
) -> GeoPoint:
    """A point at ``fraction`` along the start→end geodesic, displaced
    ``lateral_m`` metres perpendicular to it (positive = right of travel).
    """
    distance, azimuth, _ = geodesic_inverse(start, end)
    on_path = (
        GeoPoint(start.latitude, start.longitude)
        # lint: disable=float-eq (exact "start point" request, as above)
        if fraction == 0.0
        else geodesic_destination(start, azimuth, distance * fraction)
    )
    # lint: disable=float-eq (exact literal 0.0 means "no lateral offset";
    # any nonzero offset, however small, must displace the point)
    if lateral_m == 0.0:
        return on_path
    perpendicular = (azimuth + (90.0 if lateral_m > 0.0 else -90.0)) % 360.0
    return geodesic_destination(on_path, perpendicular, abs(lateral_m))


def cross_track_distance(point: GeoPoint, start: GeoPoint, end: GeoPoint) -> float:
    """Unsigned distance from ``point`` to the great circle through start→end.

    Uses the spherical cross-track formula; the sub-0.5% spherical error is
    irrelevant for the lateral offsets (a few km) this is used on.
    """
    d13 = geodesic_distance(start, point) / EARTH_MEAN_RADIUS_M
    _, theta13, _ = geodesic_inverse(start, point)
    _, theta12, _ = geodesic_inverse(start, end)
    delta = math.radians(theta13 - theta12)
    cross = math.asin(math.sin(d13) * math.sin(delta))
    return abs(cross) * EARTH_MEAN_RADIUS_M


def nearest_point_index(target: GeoPoint, points: Sequence[GeoPoint]) -> int:
    """Index of the polyline vertex closest (geodesically) to ``target``.

    Raises :class:`ValueError` on an empty sequence.
    """
    if not points:
        raise ValueError("no points to search")
    best_index = 0
    best_distance = math.inf
    for index, candidate in enumerate(points):
        distance = geodesic_distance(target, candidate)
        if distance < best_distance:
            best_distance = distance
            best_index = index
    return best_index
