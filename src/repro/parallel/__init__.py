"""Deterministic fan-out for the reconstruction grid, sweeps and scraping.

Two layers:

* :mod:`repro.parallel.executor` — the raw :class:`ParallelMap` /
  :func:`pmap` fan-out contract: contiguous balanced chunks, ordered
  reduction, spawn-safe process pool, ``jobs=1`` = plain serial loop.
* :mod:`repro.parallel.grid` — :class:`GridSession`, which adds the
  engine routing, geodesic-memo seeding and cache merge-back the analysis
  drivers need so a parallel run produces byte-identical artefacts *and*
  leaves the parent engine in the same warm state as a serial run.

Pool/process construction anywhere else in ``src/repro`` is rejected by
the ``parallel-discipline`` lint rule.
"""

from repro.parallel.executor import (
    BACKENDS,
    ContextSpec,
    ParallelMap,
    chunk_spans,
    pmap,
    resolve_backend,
    usable_cpu_count,
)
from repro.parallel.grid import GridSession, GridTaskContext, grid_session

__all__ = [
    "BACKENDS",
    "ContextSpec",
    "GridSession",
    "GridTaskContext",
    "ParallelMap",
    "chunk_spans",
    "grid_session",
    "pmap",
    "resolve_backend",
    "usable_cpu_count",
]
