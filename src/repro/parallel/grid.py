"""Grid fan-out sessions: engines + scrapers behind :class:`ParallelMap`.

The analysis drivers all fan out over the same two shapes of work item —
*(licensee × date)* cells of the reconstruction grid and *knob values* of
a parameter sweep — and they all need the same bookkeeping around the raw
executor: an engine per parameterisation, cache seeding on the way out,
and cache merge-back on the way home.  :class:`GridSession` packages that
bookkeeping once:

* **Engine routing.**  A task mapped with ``params=None`` runs against
  the session's parent engine; a task mapped with parameter overrides
  runs against a parameter-distinct sibling engine
  (:meth:`~repro.core.engine.CorridorEngine.with_params`), so snapshots
  computed under different knobs can never alias — the same discipline
  the serial sweeps enforce by building one engine per knob value.
* **jobs=1 is the pre-parallel code path.**  Serial sessions hand tasks
  the parent engine itself (default params) or a fresh, unseeded sibling
  per item (overrides) — exactly the engines the drivers constructed
  before this layer existed.
* **Seeding and pooling (jobs > 1).**  Siblings are pooled per override
  set and seeded with the parent's geodesic memo — memo entries are
  exact, parameter-independent Vincenty solutions, so seeding changes
  which work is *recomputed*, never any result.  Process workers
  additionally receive a full cache export (snapshots, routes, memo) of
  the engine their chunk runs against, replicating the parent's warm
  state at fan-out time.
* **Merge-back.**  Process workers return one
  :class:`~repro.core.engine.EngineCacheDelta` per engine they touched;
  the parent absorbs each into the matching engine (parent or pooled
  sibling) in chunk order, so a parallel run leaves the same warm cache
  state — and byte-identical artefacts — a serial run would.  Deltas
  (and the seed exports going the other way) carry temporal-index
  cursor state too: a worker handed a contiguous span of a date grid
  starts from the parent's snapshot cursors and evolves incrementally
  within its span, and the cursors it ends on come home with its delta.

Task functions are module-level callables ``fn(ctx, item)`` (picklable by
reference for the process backend); ``ctx`` is a :class:`GridTaskContext`
carrying the routed engine, a lazily-built scraper over the same
database, and the logical worker id.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Mapping, Sequence

from repro import obs
from repro.core.engine import CorridorEngine, EngineCacheDelta, EngineCacheExport
from repro.parallel.executor import ContextSpec, ParallelMap, resolve_backend

#: A normalised override set: None (parent params) or sorted key/value
#: pairs — hashable, picklable, and order-independent.
ParamsKey = tuple | None


def _normalise_overrides(overrides: Mapping | None) -> ParamsKey:
    if not overrides:
        return None
    return tuple(sorted(overrides.items()))


def _engine_base_params(engine: CorridorEngine) -> dict:
    kernel = engine.reconstructor
    return {
        "latency_model": kernel.latency_model,
        "stitch_tolerance_m": kernel.stitch_tolerance_m,
        "max_fiber_tail_m": kernel.max_fiber_tail_m,
        "fiber_mode": kernel.fiber_mode,
    }


def _engine_cache_sizes(engine: CorridorEngine) -> dict:
    return {
        "snapshot_cache_size": engine._snapshots.maxsize,
        "route_cache_size": engine._routes.maxsize,
        "geodesic_memo_size": engine._geodesic_memo.maxsize,
        # Workers must resolve snapshot keys the same way the parent
        # does, or merged-back counters would disagree with a serial run.
        "incremental": engine.incremental,
        # Kernel selection ships as a constructor argument, never as
        # pickled columns: the database excludes its ColumnarLicenseStore
        # from pickling, so a columnar worker rebuilds the store from the
        # shipped license records under its own generation counter.
        "kernel": engine.kernel,
    }


def _delta_is_empty(delta: EngineCacheDelta) -> bool:
    stats = delta.stats
    return not (
        delta.snapshots
        or delta.routes
        or delta.geodesic
        or stats.snapshot.lookups
        or stats.route.lookups
        or stats.geodesic.lookups
        or stats.snapshot_incremental
        or stats.snapshot_full
    )


class GridTaskContext:
    """What a grid task function receives: engine, scraper, worker id."""

    __slots__ = ("engine", "worker", "_host")

    def __init__(self, engine: CorridorEngine, worker: int, host) -> None:
        self.engine = engine
        self.worker = worker
        self._host = host

    @property
    def database(self):
        return self.engine.database

    @property
    def scraper(self):
        """A scraper over the session's database (built on first use)."""
        return self._host.scraper


class _WorkerState:
    """Per-worker-process state: engines and a scraper, rebuilt from
    picklable parts (spawn-safe — nothing is inherited from the parent).
    """

    def __init__(self, database, corridor, base_params, cache_sizes) -> None:
        self.database = database
        self.corridor = corridor
        self.base_params = base_params
        self.cache_sizes = cache_sizes
        self.worker = 0
        self._engines: dict[ParamsKey, CorridorEngine] = {}
        self._baselines: dict[ParamsKey, object] = {}
        self._seeds: dict[ParamsKey, EngineCacheExport] = {}
        self._scraper = None

    def begin_chunk(self, worker: int) -> None:
        self.worker = worker

    def install_seeds(self, seeds: dict[ParamsKey, EngineCacheExport]) -> None:
        """Adopt the parent's cache exports (run at each chunk start).

        Seeds arrive either as full exports or as tiny
        :class:`~repro.store.cachestore.StoreSeedRef` pointers resolved
        against the on-disk store here, in the worker (see
        :meth:`GridSession.map`).  Engines this worker already built
        (persistent pool, repeated map calls) are topped up with entries
        the parent learned since; installation counts no hits or misses,
        and baselines are advanced so topped-up entries are not shipped
        back as "learned".
        """
        self._seeds = {
            key: _resolve_seed(seed) for key, seed in seeds.items()
        }
        seeds = self._seeds
        for key, engine in self._engines.items():
            seed = seeds.get(key)
            if seed is not None:
                engine.seed_cache_state(seed)
                self._baselines[key] = engine.cache_baseline()

    def engine_for(self, key: ParamsKey) -> CorridorEngine:
        engine = self._engines.get(key)
        if engine is None:
            params = dict(self.base_params)
            if key is not None:
                params.update(dict(key))
            engine = CorridorEngine(
                self.database,
                self.corridor,
                # Workers never attach to the persistent store directly:
                # they are seeded explicitly (below), and letting every
                # worker auto-load/checkpoint would race the parent's own
                # entry for no benefit.
                store=False,
                **params,
                **self.cache_sizes,
            )
            seed = self._seeds.get(key)
            if seed is not None:
                engine.seed_cache_state(seed)
            self._engines[key] = engine
            self._baselines[key] = engine.cache_baseline()
        return engine

    def collect_deltas(self) -> list[tuple[ParamsKey, EngineCacheDelta]]:
        """(override set, delta) per touched engine; baselines advance so
        a later chunk on this worker reports only genuinely new work."""
        deltas = []
        for key, engine in self._engines.items():
            delta = engine.collect_cache_delta(self._baselines[key])
            self._baselines[key] = engine.cache_baseline()
            if not _delta_is_empty(delta):
                deltas.append((key, delta))
        return deltas

    def collect_scrape(self):
        """Page counts since the last collect + this worker's parsed
        licenses, or None if no task touched the scraper."""
        if self._scraper is None:
            return None
        from repro.uls.scraper import _collect_scrape_delta

        return _collect_scrape_delta(self._scraper)

    @property
    def scraper(self):
        if self._scraper is None:
            from repro.uls.portal import UlsPortal
            from repro.uls.scraper import UlsScraper

            self._scraper = UlsScraper(UlsPortal(self.database))
        return self._scraper


def _build_worker_state(database, corridor, base_params, cache_sizes):
    return _WorkerState(database, corridor, base_params, cache_sizes)


def _resolve_seed(seed):
    """A shipped seed -> a cache export (or ``None`` for a cold start).

    Full exports pass through; :class:`~repro.store.cachestore
    .StoreSeedRef` pointers are resolved against the on-disk store in
    this (worker) process.  A missing or corrupt entry resolves to
    ``None`` — the worker starts cold, byte-identical either way.
    """
    if seed is None or isinstance(seed, EngineCacheExport):
        return seed
    return seed.load()


def _install_seeds(state: _WorkerState, seeds) -> None:
    state.install_seeds(seeds)


def _collect_worker_deltas(state: _WorkerState):
    return {"engines": state.collect_deltas(), "scrape": state.collect_scrape()}


def _grid_task(host, wrapped):
    """The executor-facing task: route an engine, build a context, call
    the driver's function.  ``host`` is the GridSession itself on the
    serial/inline backends and a :class:`_WorkerState` in workers."""
    fn, key, item = wrapped
    ctx = GridTaskContext(host.engine_for(key), host.worker, host)
    return fn(ctx, item)


class GridSession:
    """One fan-out session over one parent engine (and its database).

    Parameters
    ----------
    engine:
        The parent :class:`~repro.core.engine.CorridorEngine`.  Results
        and cache learning flow back into it (and into pooled siblings
        for parameter-override tasks).
    jobs / backend:
        Fan-out width and backend request (see
        :func:`repro.parallel.executor.resolve_backend`).
    scraper:
        Optional parent-side :class:`~repro.uls.scraper.UlsScraper` that
        serial/inline tasks should share (the funnel passes its own so
        ``jobs=1`` scrapes through exactly the pre-parallel object); by
        default one is built over the engine's database on first use.
    """

    def __init__(
        self,
        engine: CorridorEngine,
        jobs: int = 1,
        *,
        backend: str = "auto",
        scraper=None,
        scenario: str | None = None,
    ) -> None:
        self.engine = engine
        self.jobs = jobs
        #: Scenario name this session fans out for (observability only:
        #: worker seeding is keyed on the engine's database/corridor
        #: content, so two scenarios never share transplanted caches).
        self.scenario = scenario
        self.backend = resolve_backend(jobs, backend)
        self.worker = 0
        self._scraper = scraper
        self._siblings: dict[tuple, CorridorEngine] = {}
        self._pmap = ParallelMap(
            jobs,
            backend=backend,
            context=ContextSpec(
                _build_worker_state,
                (
                    engine.database,
                    engine.corridor,
                    _engine_base_params(engine),
                    _engine_cache_sizes(engine),
                ),
            ),
            local_context=self,
        )

    # -- the executor's local-context protocol -------------------------

    def begin_chunk(self, worker: int) -> None:
        self.worker = worker

    def engine_for(self, key: ParamsKey) -> CorridorEngine:
        """The engine a task with override set ``key`` runs against.

        ``None`` routes to the parent engine.  Overrides route to a fresh
        unseeded engine per call when serial (the pre-parallel sweep code
        path: one private engine per knob value, discarded afterwards)
        and to a pooled, memo-seeded sibling otherwise.
        """
        if key is None:
            return self.engine
        if self.backend == "serial":
            return self.engine.with_params(**dict(key))
        sibling = self._siblings.get(key)
        if sibling is None:
            sibling = self.engine.with_params(**dict(key))
            sibling.seed_cache_state(
                self.engine.export_cache_state(geodesic_only=True),
                geodesic_only=True,
            )
            self._siblings[key] = sibling
        return sibling

    @property
    def scraper(self):
        if self._scraper is None:
            from repro.uls.portal import UlsPortal
            from repro.uls.scraper import UlsScraper

            self._scraper = UlsScraper(UlsPortal(self.engine.database))
        return self._scraper

    # -- the API -------------------------------------------------------

    def map(
        self,
        fn: Callable,
        items: Sequence,
        *,
        params: Mapping | Callable | None = None,
        label: str = "grid",
    ) -> list:
        """``[fn(ctx, item) for item in items]`` with routed engines.

        ``fn`` must be a module-level callable taking
        ``(GridTaskContext, item)``.  ``params`` selects the engine per
        item: ``None`` (parent engine), a mapping of reconstruction
        overrides applied to every item, or a callable
        ``item -> mapping | None``.  Results come back in submission
        order; worker cache deltas are absorbed in chunk order.
        """
        items = list(items)
        if callable(params):
            keys = [_normalise_overrides(params(item)) for item in items]
        else:
            key = _normalise_overrides(params)
            keys = [key] * len(items)
        wrapped = list(zip([fn] * len(items), keys, items))
        span_tags = dict(
            label=label, items=len(items), jobs=self.jobs, backend=self.backend
        )
        if self.scenario is not None:
            span_tags["scenario"] = self.scenario
        with obs.span("parallel.grid", **span_tags):
            if self.backend != "process":
                return self._pmap.map(_grid_task, wrapped)
            # Materialise (and thereby seed) every engine this call needs,
            # then ship each one's warm state to the workers.  With a
            # persistent store attached, the parent checkpoints once and
            # ships a content-addressed pointer instead of the full
            # (potentially multi-megabyte) export; parameter-override
            # siblings have no store entry and still ship in full.
            seeds = {}
            for key in dict.fromkeys(keys):
                engine = self.engine_for(key)
                store = getattr(engine, "store", None)
                if store is not None:
                    engine.checkpoint()
                    from repro.store import StoreSeedRef

                    seeds[key] = StoreSeedRef(
                        str(store.cache_dir), store.fingerprint_for(engine)
                    )
                else:
                    seeds[key] = engine.export_cache_state()
            return self._pmap.map(
                _grid_task,
                wrapped,
                setup=_install_seeds,
                setup_arg=seeds,
                finalize=_collect_worker_deltas,
                on_chunk_result=self._absorb_chunk,
            )

    def _absorb_chunk(self, worker: int, payload) -> None:
        """Fold one worker chunk's cache learning home (chunk order)."""
        deltas = payload["engines"]
        for key, delta in deltas:
            target = self.engine if key is None else self._siblings[key]
            target.absorb_cache_delta(delta)
        scrape = payload["scrape"]
        if scrape is not None:
            pages, cache = scrape
            self.scraper.absorb(pages, cache)
        if deltas:
            obs.count("parallel.merge.deltas", len(deltas))

    def close(self) -> None:
        self._pmap.close()

    def __enter__(self) -> "GridSession":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False


@contextmanager
def grid_session(
    engine: CorridorEngine,
    jobs: int = 1,
    session: GridSession | None = None,
    *,
    scraper=None,
) -> Iterator[GridSession]:
    """A session for one driver call: the caller's, or a private one.

    Drivers accept both a ``jobs`` count and an optional ``session`` so
    the CLI can share one pool (and one set of pooled siblings) across
    several commands; when no session is passed, a private one is opened
    and closed around the call.
    """
    if session is not None:
        yield session
        return
    own = GridSession(engine, jobs, scraper=scraper)
    try:
        yield own
    finally:
        own.close()
