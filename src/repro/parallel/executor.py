"""The deterministic fan-out executor (:class:`ParallelMap` / :func:`pmap`).

Every parallel code path in this repository runs through here — the lint
rule ``parallel-discipline`` confines pool construction to this package —
and every backend obeys one contract:

* **Ordered reduction.**  Items are split into contiguous, balanced
  chunks; chunk index is the logical *worker id*; results are reassembled
  in submission order regardless of completion order.  ``map`` therefore
  returns exactly ``[fn(item) for item in items]`` no matter the backend.
* **jobs=1 is the serial code path.**  With one job there is no chunking
  machinery between the caller and its function: the items run in a plain
  in-process loop, in order, against the caller's own objects.
* **Spawn safety.**  The process backend uses the ``spawn`` start method
  (no inherited interpreter state); worker context is rebuilt in each
  worker from a picklable :class:`ContextSpec` (a module-level factory
  plus arguments), never captured from the parent by forking.

Backends
--------
``serial``
    ``jobs == 1``.  One chunk, run inline.
``inline``
    ``jobs > 1`` but executed sequentially in-process with the same
    chunking and worker ids the process backend would use.  This is the
    automatic choice when the machine has no second usable CPU — fanning
    out processes there only adds spawn latency — and it keeps worker-id
    span tagging and chunk bookkeeping identical across hosts.
``process``
    A spawn-safe :class:`concurrent.futures.ProcessPoolExecutor`, one
    task per chunk, pool reused across ``map`` calls.

Observability: each task runs under an ``obs.span("parallel.task", ...)``
carrying its worker id and submission index.  Process workers run their
chunk under an isolated capture and ship the resulting metrics-registry
snapshot home, where it is absorbed into the active session registry
(:meth:`repro.obs.MetricsRegistry.absorb`).  Worker span *records* are
process-local and are not re-emitted to parent trace sinks; their
aggregated timings arrive via the registry merge (DESIGN.md §9).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import obs

#: Backends a caller may force; "auto" resolves per machine.
BACKENDS = ("serial", "inline", "process")


def usable_cpu_count() -> int:
    """CPUs this process may actually schedule on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def resolve_backend(jobs: int, backend: str = "auto") -> str:
    """The backend a (jobs, request) pair runs under.

    ``jobs == 1`` is always ``serial``.  ``auto`` picks ``process`` when a
    second usable CPU exists and ``inline`` otherwise; forcing
    ``"inline"`` or ``"process"`` overrides the machine check (tests
    force ``process`` to exercise spawn transport on any host).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return "serial"
    if backend == "auto":
        return "process" if usable_cpu_count() > 1 else "inline"
    if backend in ("inline", "process"):
        return backend
    raise ValueError(f"unknown backend {backend!r} (use {BACKENDS})")


def chunk_spans(n_items: int, jobs: int) -> list[tuple[int, int]]:
    """Contiguous balanced ``[start, stop)`` spans, one per worker.

    The first ``n_items % jobs`` chunks get the extra item; empty chunks
    are dropped, so worker ids are dense even when items < jobs.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    size, extra = divmod(n_items, jobs)
    spans = []
    start = 0
    for worker in range(jobs):
        stop = start + size + (1 if worker < extra else 0)
        if stop > start:
            spans.append((start, stop))
        start = stop
    return spans


@dataclass(frozen=True)
class ContextSpec:
    """How a worker rebuilds its per-process context.

    ``factory`` must be a module-level callable (picklable by reference);
    ``args`` its pickled arguments.  Each worker process calls
    ``factory(*args)`` exactly once, at pool initialisation, and every
    chunk that worker runs receives the resulting object as ``ctx``.

    If the context object defines ``begin_chunk(worker_id)``, it is
    invoked at the start of every chunk (both in workers and for the
    local backends) so per-chunk state — e.g. which logical worker a
    grid task is running as — is available to tasks.
    """

    factory: Callable[..., object]
    args: tuple = ()

    def build(self) -> object:
        return self.factory(*self.args)


# -- worker-process plumbing (process backend only) ---------------------

_WORKER_CONTEXT: object | None = None


def _worker_init(spec: ContextSpec | None) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = spec.build() if spec is not None else None


def _run_task(fn, ctx, has_context, worker, index, item):
    with obs.span("parallel.task", worker=worker, index=index):
        obs.count("parallel.tasks")
        return fn(ctx, item) if has_context else fn(item)


def _run_chunk_local(fn, ctx, has_context, worker, pairs, setup, setup_arg):
    if ctx is not None and hasattr(ctx, "begin_chunk"):
        ctx.begin_chunk(worker)
    if setup is not None:
        setup(ctx, setup_arg)
    return [
        _run_task(fn, ctx, has_context, worker, index, item)
        for index, item in pairs
    ]


def _run_chunk_in_worker(
    fn, has_context, worker, pairs, setup, setup_arg, finalize, observe
):
    """One chunk, executed in a worker process.

    Returns ``(results, finalize_result, registry_snapshot)``; the parent
    absorbs the latter two in chunk order (deterministic merge).
    """
    ctx = _WORKER_CONTEXT
    if observe:
        with obs.capture() as cap:
            results = _run_chunk_local(
                fn, ctx, has_context, worker, pairs, setup, setup_arg
            )
            extra = finalize(ctx) if finalize is not None else None
        return results, extra, cap.registry.snapshot()
    results = _run_chunk_local(
        fn, ctx, has_context, worker, pairs, setup, setup_arg
    )
    extra = finalize(ctx) if finalize is not None else None
    return results, extra, None


class ParallelMap:
    """A reusable fan-out executor with a fixed jobs/backend/context.

    Parameters
    ----------
    jobs:
        Worker count.  ``1`` short-circuits to the serial code path.
    backend:
        ``"auto"`` (default), or force ``"inline"`` / ``"process"``.
    context:
        Optional :class:`ContextSpec`; when given, tasks are invoked as
        ``fn(ctx, item)`` (``fn(item)`` otherwise).
    local_context:
        The context object used by the serial/inline backends instead of
        building one from ``context`` — callers whose parent-side state
        *is* the context (a :class:`~repro.parallel.grid.GridSession`, a
        scraper) pass themselves here so ``jobs=1`` touches exactly the
        objects a pre-parallel caller would have.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        backend: str = "auto",
        context: ContextSpec | None = None,
        local_context: object | None = None,
    ) -> None:
        self.jobs = jobs
        self.backend = resolve_backend(jobs, backend)
        self._context = context
        self._local_context = local_context
        self._pool: ProcessPoolExecutor | None = None

    # -- pool lifecycle ------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # The one place in the repository a process pool is built
            # (enforced by the parallel-discipline lint rule): spawn
            # context, context rebuilt per worker from the picklable spec.
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_worker_init,
                initargs=(self._context,),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (no-op for local backends)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelMap":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    def _local(self) -> object | None:
        if self._local_context is not None:
            return self._local_context
        if self._context is not None:
            # Built once and kept: repeated map() calls on the local
            # backends reuse one context, as one worker process would.
            self._local_context = self._context.build()
            return self._local_context
        return None

    # -- the API -------------------------------------------------------

    def map(
        self,
        fn: Callable,
        items: Sequence,
        *,
        setup: Callable | None = None,
        setup_arg: object = None,
        finalize: Callable | None = None,
        on_chunk_result: Callable | None = None,
    ) -> list:
        """``[fn(item) for item in items]``, fanned out and re-ordered.

        ``setup(ctx, setup_arg)`` runs once per chunk before its tasks
        (workers receive ``setup_arg`` pickled once per chunk — this is
        how cache seeds travel).  ``finalize(ctx)`` runs once per chunk
        after its tasks; its return value is handed to
        ``on_chunk_result(worker, value)`` in chunk order back in the
        parent (how cache deltas travel home).  All hooks must be
        module-level callables under the process backend.
        """
        items = list(items)
        has_context = self._context is not None or self._local_context is not None
        with obs.span(
            "parallel.map",
            jobs=self.jobs,
            backend=self.backend,
            items=len(items),
        ):
            if self.backend == "process":
                return self._map_process(
                    fn, items, has_context, setup, setup_arg,
                    finalize, on_chunk_result,
                )
            return self._map_local(
                fn, items, has_context, setup, setup_arg,
                finalize, on_chunk_result,
            )

    def _map_local(
        self, fn, items, has_context, setup, setup_arg, finalize, on_chunk_result
    ) -> list:
        ctx = self._local()
        spans = (
            [(0, len(items))] if self.backend == "serial"
            else chunk_spans(len(items), self.jobs)
        )
        results: list = []
        for worker, (start, stop) in enumerate(spans):
            pairs = [(index, items[index]) for index in range(start, stop)]
            results.extend(
                _run_chunk_local(
                    fn, ctx, has_context, worker, pairs, setup, setup_arg
                )
            )
            if finalize is not None:
                extra = finalize(ctx)
                if on_chunk_result is not None:
                    on_chunk_result(worker, extra)
        return results

    def _map_process(
        self, fn, items, has_context, setup, setup_arg, finalize, on_chunk_result
    ) -> list:
        observe = obs.is_enabled()
        pool = self._ensure_pool()
        futures = []
        for worker, (start, stop) in enumerate(chunk_spans(len(items), self.jobs)):
            pairs = [(index, items[index]) for index in range(start, stop)]
            futures.append(
                pool.submit(
                    _run_chunk_in_worker,
                    fn, has_context, worker, pairs,
                    setup, setup_arg, finalize, observe,
                )
            )
        results: list = []
        # Collect in submission (= chunk) order: the reduction is ordered
        # no matter which worker finishes first, and chunk extras /
        # registry snapshots merge in the same deterministic order.
        for worker, future in enumerate(futures):
            chunk_results, extra, registry_snapshot = future.result()
            results.extend(chunk_results)
            if registry_snapshot is not None and obs.is_enabled():
                registry = obs.get_registry()
                if registry is not None:
                    registry.absorb(registry_snapshot)
            if on_chunk_result is not None:
                on_chunk_result(worker, extra)
        return results


def pmap(
    fn: Callable,
    items: Sequence,
    jobs: int = 1,
    *,
    backend: str = "auto",
    context: ContextSpec | None = None,
) -> list:
    """One-shot :class:`ParallelMap`: ``[fn(item) for item in items]``.

    The convenience entry point for stateless fan-out; drivers that reuse
    a pool or merge caches hold a :class:`ParallelMap` (or a
    :class:`~repro.parallel.grid.GridSession`) instead.
    """
    with ParallelMap(jobs, backend=backend, context=context) as executor:
        return executor.map(fn, items)
