"""Typed process-local metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` owns every instrument created through it and can
render a point-in-time :meth:`~MetricsRegistry.snapshot` (plain dicts, so
sinks and tests can serialise it) or :meth:`~MetricsRegistry.reset` all
values while keeping the instruments themselves alive.

Instrument names follow the project-wide ``layer.component.event``
convention (``engine.snapshot.hit``, ``geodesy.memo.miss``,
``uls.scraper.page.detail``); the registry enforces non-empty dotted names
and rejects re-registering one name under a different instrument type —
``counter("x")`` followed by ``histogram("x")`` is a programming error, not
a silent shadow.

Everything here is deliberately dependency-free and deterministic: no
clocks, no randomness — time only ever enters through
:mod:`repro.obs.spans`, which *observes* durations into histograms.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def _validate_name(name: str) -> str:
    if not isinstance(name, str) or not name:
        raise ValueError("metric name must be a non-empty string")
    if name != name.strip() or any(not part for part in name.split(".")):
        raise ValueError(
            f"metric name {name!r} must be dotted layer.component.event "
            "segments with no empty parts"
        )
    return name


class Counter:
    """A monotonically increasing count (hits, misses, pages fetched)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (cache sizes, queue depths)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number | None = None

    def set(self, value: Number) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = None


class Histogram:
    """Streaming summary of observations (count/sum/min/max/mean).

    Stores aggregates only — no per-observation buffer — so a histogram on
    a hot path costs four comparisons and two adds per observation and its
    memory never grows.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def absorb(self, summary: dict) -> None:
        """Merge another histogram's :meth:`summary` into this one.

        Aggregate-only storage makes histograms mergeable exactly: counts
        and sums add, min/max combine.  This is how worker-process span
        timings reach the parent session's registry.
        """
        count = summary.get("count", 0)
        if not count:
            return
        self.count += count
        self.total += summary.get("sum", 0.0)
        for bound, better in (("min", min), ("max", max)):
            value = summary.get(bound)
            if value is None:
                continue
            own = getattr(self, bound)
            setattr(self, bound, value if own is None else better(own, value))


class MetricsRegistry:
    """Get-or-create home for every instrument of one observation session."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create accessors --------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unclaimed(name, "counter")
            instrument = self._counters[_validate_name(name)] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unclaimed(name, "gauge")
            instrument = self._gauges[_validate_name(name)] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unclaimed(name, "histogram")
            instrument = self._histograms[_validate_name(name)] = Histogram(name)
        return instrument

    def _check_unclaimed(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}; "
                    f"cannot re-register as a {kind}"
                )

    # -- session semantics --------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (sorted, JSON-serialisable)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
        }

    def absorb(self, snapshot: dict) -> None:
        """Merge another registry's :meth:`snapshot` into this one.

        Counters add, gauges take the incoming (most recent) value, and
        histograms merge their aggregates.  ``repro.parallel`` uses this
        to fold each worker process's registry into the parent session's,
        so ``--metrics`` totals are jobs-invariant where the underlying
        work is.  Type clashes (a counter arriving under a name already
        registered as a histogram) raise, exactly as direct registration
        would.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name).absorb(summary)

    def reset(self) -> None:
        """Zero every instrument, keeping the instruments registered.

        Held references stay valid across a reset — a caller that cached
        ``registry.counter("x")`` keeps incrementing the same object.
        """
        for table in (self._counters, self._gauges, self._histograms):
            for instrument in table.values():
                instrument.reset()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


def render_metrics(registry: MetricsRegistry) -> str:
    """The human metrics summary (the CLI's ``--metrics`` output)."""
    snap = registry.snapshot()
    lines = ["metrics summary:"]
    for name, value in snap["counters"].items():
        lines.append(f"  counter   {name:40s} {value}")
    for name, value in snap["gauges"].items():
        lines.append(f"  gauge     {name:40s} {value}")
    for name, summary in snap["histograms"].items():
        mean = summary["mean"]
        lines.append(
            f"  histogram {name:40s} count={summary['count']}  "
            f"mean={mean:.3f}  min={summary['min']:.3f}  "
            f"max={summary['max']:.3f}"
            if summary["count"]
            else f"  histogram {name:40s} count=0"
        )
    if len(lines) == 1:
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)
