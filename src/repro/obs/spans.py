"""Hierarchical trace spans and the process-local observation state.

The whole subsystem hangs off one module-level :class:`_ObsState`.  When
observation is **disabled** (the default), every instrumentation point —
``span(...)``, ``count(...)``, ``observe(...)`` — reduces to a single
attribute check on that state object and returns immediately; ``span``
hands back one shared no-op context manager, so instrumented hot paths
allocate nothing.  Instrumentation therefore never changes a function's
signature or its results; it only wraps existing work.

When **enabled** (:func:`enable` / :func:`capture`, or the CLI's
``--trace``/``--metrics`` flags), ``span(name, **attrs)`` opens a timed
span: entry pushes it on the state's span stack (establishing the
parent/child tree), exit measures the elapsed monotonic time
(``time.perf_counter_ns``), feeds a ``span.<name>.us`` histogram in the
session's :class:`~repro.obs.metrics.MetricsRegistry`, and emits one
:class:`SpanRecord` to every configured sink.  Children are emitted before
their parents (exit order); sinks that want the tree re-nest by
``parent_id``.

Span names follow ``layer.component[.event]`` (``engine.snapshot``,
``geodesy.memo``, ``uls.scraper.detail``); attributes carry the query
dimensions (licensee, endpoints, cache disposition).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Union

from repro.obs.metrics import MetricsRegistry, Number


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span, as handed to sinks."""

    span_id: int
    parent_id: int | None
    depth: int
    name: str
    #: Microseconds since the observation session started.
    start_us: float
    duration_us: float
    #: Attribute (key, value) pairs in tagging order.
    attrs: tuple[tuple[str, object], ...]


class _ObsState:
    """The process-local observation session (one at a time).

    Safe to share across threads: the span stack (parent/depth linkage)
    is thread-local, so each handler thread of a ``ThreadingHTTPServer``
    grows its own span tree, while span ids, the metrics registry, and
    sink emission are serialised by ``lock``.  Single-threaded sessions
    behave exactly as before — ids are dense, children exit before
    parents — and the disabled path stays one attribute check.
    """

    __slots__ = ("enabled", "registry", "sinks", "next_id", "t0_ns", "lock", "_local")

    def __init__(self) -> None:
        self.enabled = False
        self.registry: MetricsRegistry | None = None
        self.sinks: tuple = ()
        self.next_id = 1
        self.t0_ns = 0
        self.lock = threading.Lock()
        self._local = threading.local()

    @property
    def stack(self) -> list:
        """This thread's open-span stack (created on first touch)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @stack.setter
    def stack(self, value: list) -> None:
        # Session boundaries (enable/disable) reset *every* thread's
        # stack by dropping the whole thread-local namespace.
        self._local = threading.local()
        self._local.stack = list(value)


_STATE = _ObsState()


class _NoopSpan:
    """The shared disabled-path span: enter/exit/tag all do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def tag(self, **attrs: object) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _LiveSpan:
    """An open span: times itself and reports to the session on exit."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth", "start_ns")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        state = _STATE
        with state.lock:
            self.span_id = state.next_id
            state.next_id += 1
        stack = state.stack
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def tag(self, **attrs: object) -> "_LiveSpan":
        """Attach attributes (before exit) to the eventual record."""
        self.attrs.update(attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        state = _STATE
        stack = state.stack
        if stack and stack[-1] is self:
            stack.pop()
        if not state.enabled:  # disable() raced the span: drop it
            return False
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        record = SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            depth=self.depth,
            name=self.name,
            start_us=(self.start_ns - state.t0_ns) / 1000.0,
            duration_us=(end_ns - self.start_ns) / 1000.0,
            attrs=tuple(self.attrs.items()),
        )
        with state.lock:
            registry = state.registry
            if registry is None:  # disable() raced the span: drop it
                return False
            registry.histogram(f"span.{self.name}.us").observe(
                record.duration_us
            )
            for sink in state.sinks:
                sink.emit(record)
        return False


def span(name: str, **attrs: object) -> Union[_NoopSpan, _LiveSpan]:
    """A context manager timing one named unit of work.

    Disabled (the default): returns the shared no-op span — the cost at an
    instrumentation point is this call plus one attribute check.
    """
    if not _STATE.enabled:
        return _NOOP
    return _LiveSpan(name, attrs)


def count(name: str, amount: int = 1) -> None:
    """Increment counter ``name`` when observation is enabled."""
    state = _STATE
    if state.enabled:
        with state.lock:
            registry = state.registry
            if registry is not None:
                registry.counter(name).inc(amount)


def observe(name: str, value: Number) -> None:
    """Observe ``value`` into histogram ``name`` when enabled."""
    state = _STATE
    if state.enabled:
        with state.lock:
            registry = state.registry
            if registry is not None:
                registry.histogram(name).observe(value)


def set_gauge(name: str, value: Number) -> None:
    """Set gauge ``name`` to ``value`` when enabled."""
    state = _STATE
    if state.enabled:
        with state.lock:
            registry = state.registry
            if registry is not None:
                registry.gauge(name).set(value)


def is_enabled() -> bool:
    """Whether an observation session is active."""
    return _STATE.enabled


def get_registry() -> MetricsRegistry | None:
    """The active session's registry (None when disabled)."""
    return _STATE.registry


def enable(sinks: tuple = (), registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Start an observation session; returns its metrics registry.

    One session at a time: enabling while enabled raises (use
    :func:`capture` for nested, self-restoring sessions in tests).
    """
    if _STATE.enabled:
        raise RuntimeError(
            "observation already enabled; disable() first, or use capture()"
        )
    _STATE.registry = registry if registry is not None else MetricsRegistry()
    _STATE.sinks = tuple(sinks)
    _STATE.stack = []
    _STATE.next_id = 1
    _STATE.t0_ns = time.perf_counter_ns()
    _STATE.enabled = True
    return _STATE.registry


def disable() -> MetricsRegistry | None:
    """End the session; returns its registry (None if already disabled)."""
    registry = _STATE.registry
    _STATE.enabled = False
    _STATE.registry = None
    _STATE.sinks = ()
    _STATE.stack = []
    return registry


def _swap_state(new: _ObsState | None = None) -> _ObsState:
    """Swap the module state (capture()'s save/restore); returns the old."""
    global _STATE
    previous = _STATE
    _STATE = new if new is not None else _ObsState()
    return previous


def _restore_state(state: _ObsState) -> None:
    global _STATE
    _STATE = state
