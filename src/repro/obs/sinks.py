"""Span sinks: in-memory (tests), JSON-lines (files), text summary (humans).

A sink is anything with ``emit(record: SpanRecord) -> None``; sinks that
hold OS resources also expose ``close()``.  Sinks receive spans in
*completion* order (children before parents) and re-nest by ``parent_id``
when they need the tree.
"""

from __future__ import annotations

import json
from io import TextIOBase
from pathlib import Path
from typing import IO

from repro.obs.spans import SpanRecord

#: Version stamped into every trace file; bump on any key change to the
#: per-span line schema below (tests pin both).
TRACE_SCHEMA_VERSION = 1

#: The exact key order of a ``"span"`` line in a JSON-lines trace.
SPAN_LINE_KEYS = (
    "type", "id", "parent", "depth", "name", "start_us", "duration_us", "attrs",
)


class InMemorySink:
    """Collects records in a list — the sink tests and fixtures use."""

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []

    def emit(self, record: SpanRecord) -> None:
        self.records.append(record)

    def names(self) -> list[str]:
        """Span names in completion order."""
        return [record.name for record in self.records]

    def tree(self) -> list[tuple[int, str]]:
        """(depth, name) pairs in *start* order — the span tree flattened."""
        return [
            (record.depth, record.name)
            for record in sorted(self.records, key=lambda r: r.span_id)
        ]

    def clear(self) -> None:
        self.records.clear()


def _json_safe(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def span_line(record: SpanRecord) -> str:
    """One trace line for ``record`` (stable key order, compact floats)."""
    payload = {
        "type": "span",
        "id": record.span_id,
        "parent": record.parent_id,
        "depth": record.depth,
        "name": record.name,
        "start_us": round(record.start_us, 3),
        "duration_us": round(record.duration_us, 3),
        "attrs": {key: _json_safe(value) for key, value in record.attrs},
    }
    return json.dumps(payload, separators=(",", ":"))


class JsonLinesSink:
    """Streams spans to a ``.jsonl`` trace file (or any text stream).

    The first line is a ``{"type": "trace", "version": N}`` header; every
    later line is one completed span.  Given a path, the sink owns the
    file handle (creating parent directories) and ``close()`` releases it;
    given a stream, the caller keeps ownership.
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: IO[str] = open(path, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._stream.write(
            json.dumps(
                {"type": "trace", "version": TRACE_SCHEMA_VERSION},
                separators=(",", ":"),
            )
            + "\n"
        )

    def emit(self, record: SpanRecord) -> None:
        self._stream.write(span_line(record) + "\n")

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()
        elif not self._owns_stream:
            self._stream.flush()


class TextSummarySink:
    """Aggregates spans per name and renders a human table.

    Useful as a cheap trailing report: it keeps only per-name aggregates
    (count, total/min/max duration), never individual spans.
    """

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream
        self._totals: dict[str, list[float]] = {}

    def emit(self, record: SpanRecord) -> None:
        entry = self._totals.get(record.name)
        if entry is None:
            self._totals[record.name] = [
                1, record.duration_us, record.duration_us, record.duration_us
            ]
        else:
            entry[0] += 1
            entry[1] += record.duration_us
            entry[2] = min(entry[2], record.duration_us)
            entry[3] = max(entry[3], record.duration_us)

    def render(self) -> str:
        lines = ["span summary (us):"]
        for name, (count, total, low, high) in sorted(self._totals.items()):
            lines.append(
                f"  {name:32s} n={count:<6d} total={total:12.1f}  "
                f"mean={total / count:10.1f}  min={low:10.1f}  max={high:10.1f}"
            )
        if len(lines) == 1:
            lines.append("  (no spans recorded)")
        return "\n".join(lines)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.write(self.render() + "\n")
            if not isinstance(self._stream, TextIOBase) or not self._stream.closed:
                self._stream.flush()


def read_trace(path: str | Path) -> list[dict]:
    """Parse a JSON-lines trace file, validating the header.

    Returns the span dicts (header excluded); raises ``ValueError`` on a
    missing/mismatched header or malformed line.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("type") != "trace":
        raise ValueError(f"{path}: first line is not a trace header")
    if header.get("version") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: trace schema version {header.get('version')!r} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    spans = []
    for number, line in enumerate(lines[1:], start=2):
        entry = json.loads(line)
        if entry.get("type") != "span":
            raise ValueError(f"{path}:{number}: unexpected line type")
        spans.append(entry)
    return spans
