"""``repro.obs`` — zero-dependency tracing + metrics instrumentation.

The observability layer the perf roadmap reads its wins off of: the
engine, the geodesic memo, the reconstruction kernel, the scraper and the
analysis drivers are instrumented with hierarchical :func:`span` context
managers and typed counters/gauges/histograms.  **Disabled by default**:
every instrumentation point collapses to a single attribute check, spans
are one shared no-op object, and instrumented code produces bit-identical
results with the subsystem on, off, or never exercised.

Typical use::

    from repro import obs

    # library code (always safe, ~free when disabled)
    with obs.span("engine.snapshot", licensee=name) as sp:
        ...
        sp.tag(cache="hit")
    obs.count("engine.snapshot.hit")

    # a test or driver capturing a session
    with obs.capture() as cap:
        run_scraping_funnel(...)
    assert "engine.snapshot" in cap.sink.names()
    assert cap.registry.snapshot()["counters"]["geodesy.memo.hit"] > 0

The CLI exposes the same machinery on every subcommand via
``--trace FILE`` (JSON-lines span tree) and ``--metrics`` (human summary
on stderr).  DESIGN.md §8 documents the architecture and the
``layer.component.event`` naming convention.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_metrics,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonLinesSink,
    SPAN_LINE_KEYS,
    TextSummarySink,
    TRACE_SCHEMA_VERSION,
    read_trace,
    span_line,
)
from repro.obs.spans import (
    SpanRecord,
    count,
    disable,
    enable,
    get_registry,
    is_enabled,
    observe,
    set_gauge,
    span,
)
from repro.obs.spans import _restore_state, _swap_state

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "SPAN_LINE_KEYS",
    "SpanRecord",
    "TRACE_SCHEMA_VERSION",
    "TextSummarySink",
    "Capture",
    "capture",
    "count",
    "disable",
    "enable",
    "get_registry",
    "is_enabled",
    "observe",
    "read_trace",
    "render_metrics",
    "set_gauge",
    "span",
    "span_line",
]


@dataclass(frozen=True)
class Capture:
    """What a :func:`capture` block hands back: its sink and registry."""

    sink: InMemorySink
    registry: MetricsRegistry

    @property
    def spans(self) -> list[SpanRecord]:
        return self.sink.records

    def counters(self) -> dict[str, int]:
        return self.registry.snapshot()["counters"]


@contextmanager
def capture(
    extra_sinks: tuple = (), registry: MetricsRegistry | None = None
) -> Iterator[Capture]:
    """An isolated, self-restoring observation session (for tests).

    Unlike :func:`enable`, this nests safely inside any other session: the
    previous observation state is swapped out wholesale and restored on
    exit, so fixtures and subtests cannot leak spans into each other.
    """
    previous = _swap_state()
    sink = InMemorySink()
    try:
        active_registry = enable(
            sinks=(sink, *extra_sinks), registry=registry
        )
        yield Capture(sink=sink, registry=active_registry)
    finally:
        disable()
        _restore_state(previous)
