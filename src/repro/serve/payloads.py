"""JSON payload builders shared by the server and the CLI.

Every served endpoint and its ``hftnetview <cmd> --format json`` twin
call the *same* builder here and the *same* renderer
(:func:`render_payload`), so the golden parity tests in
``tests/test_serve_parity.py`` hold by construction: the bytes on the
HTTP socket equal the bytes on the CLI's stdout.

Builders are pure functions of ``(scenario, engine, validated params)``
— no facade, no locking, no HTTP.  The service layer owns validation
and concurrency; the CLI calls builders directly on the shared
scenario engine.
"""

from __future__ import annotations

import datetime as dt
import json

from repro.constants import CME_SEARCH_RADIUS_M
from repro.core.engine import CorridorEngine
from repro.core.timeline import (
    dense_date_grid,
    license_count_timeline,
    yearly_snapshot_dates,
)
from repro.metrics.apa import apa_percent
from repro.metrics.rankings import rank_connected_networks
from repro.synth.scenario import Scenario
from repro.uls.search import UlsSearchService
from repro.viz.geojson import network_to_geojson

#: Query dates the service accepts: the study window plus slack on both
#: sides.  Anything outside is a structured 400 — the synthetic corridor
#: has no filings out there, and unbounded dates make cache keys and
#: coalescing windows unbounded too.
DATE_MIN = dt.date(2012, 1, 1)
DATE_MAX = dt.date(2021, 12, 31)

def render_payload(payload: dict) -> str:
    """The one JSON encoding both the server and the CLI emit.

    Sorted keys and tight separators make the encoding canonical, so
    equality of payloads is equality of bytes.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def timeline_dates(step: str) -> list[dt.date]:
    """The date grid a timeline ``step`` resolves to (CLI and server)."""
    if step == "paper":
        return yearly_snapshot_dates()
    return dense_date_grid(step)


def rankings_payload(
    scenario: Scenario,
    engine: CorridorEngine,
    on_date: dt.date,
    source: str | None = None,
    target: str | None = None,
) -> dict:
    """Table 1 as JSON: connected networks by increasing latency."""
    source, target = scenario.corridor.resolve_path(source, target)
    rankings = rank_connected_networks(
        scenario.database,
        scenario.corridor,
        on_date,
        source=source,
        target=target,
        engine=engine,
    )
    return {
        "endpoint": "rankings",
        "date": on_date.isoformat(),
        "source": source,
        "target": target,
        "rankings": [
            {
                "licensee": r.licensee,
                "latency_ms": r.latency_ms,
                "apa_percent": r.apa_percent,
                "tower_count": r.tower_count,
            }
            for r in rankings
        ],
    }


def timeline_payload(
    scenario: Scenario,
    engine: CorridorEngine,
    step: str = "paper",
    licensees: tuple[str, ...] | None = None,
    source: str | None = None,
    target: str | None = None,
) -> dict:
    """Figs 1 + 2 as JSON: latency and license-count series per network."""
    source, target = scenario.corridor.resolve_path(source, target)
    names = licensees if licensees else scenario.featured_names
    dates = timeline_dates(step)
    series = []
    for name in names:
        points = engine.timeline(name, dates, source, target)
        counts = license_count_timeline(scenario.database, name, dates)
        series.append(
            {
                "licensee": name,
                "latency_ms": [p.latency_ms for p in points],
                "tower_count": [p.tower_count for p in points],
                "active_licenses": list(counts.counts),
            }
        )
    return {
        "endpoint": "timeline",
        "step": step,
        "source": source,
        "target": target,
        "dates": [d.isoformat() for d in dates],
        "series": series,
    }


def apa_payload(
    scenario: Scenario,
    engine: CorridorEngine,
    on_date: dt.date,
    licensees: tuple[str, ...] | None = None,
) -> dict:
    """Table 3 as JSON: per-corridor-path APA for the chosen networks
    (defaults to the scenario's spotlight pair)."""
    if licensees is None:
        licensees = scenario.spotlight_names
    paths = tuple(scenario.corridor.paths)
    networks = {name: engine.snapshot(name, on_date) for name in licensees}
    return {
        "endpoint": "apa",
        "date": on_date.isoformat(),
        "licensees": list(licensees),
        "paths": [
            {
                "source": path[0],
                "target": path[1],
                "apa_percent": {
                    name: apa_percent(networks[name], path[0], path[1])
                    for name in licensees
                },
            }
            for path in paths
        ],
    }


def search_payload(
    scenario: Scenario,
    latitude: float | None = None,
    longitude: float | None = None,
    radius_m: float | None = None,
    active_on: dt.date | None = None,
) -> dict:
    """Geographic license search as JSON (defaults: around the western
    anchor)."""
    cme = scenario.corridor.west.point
    center = cme
    if latitude is not None or longitude is not None:
        center = type(cme)(
            latitude if latitude is not None else cme.latitude,
            longitude if longitude is not None else cme.longitude,
        )
    radius = radius_m if radius_m is not None else CME_SEARCH_RADIUS_M
    service = UlsSearchService(scenario.database)
    rows = service.geographic_search(center, radius, active_on=active_on)
    return {
        "endpoint": "search",
        "center": {"latitude": center.latitude, "longitude": center.longitude},
        "radius_m": radius,
        "active_on": active_on.isoformat() if active_on else None,
        "results": [
            {
                "license_id": r.license_id,
                "callsign": r.callsign,
                "licensee": r.licensee_name,
                "radio_service": r.radio_service_code,
                "station_class": r.station_class,
            }
            for r in rows
        ],
    }


def map_payload(
    scenario: Scenario,
    engine: CorridorEngine,
    licensee: str | None = None,
    on_date: dt.date | None = None,
) -> dict:
    """One network snapshot as a GeoJSON FeatureCollection (defaults to
    the scenario's first spotlight network)."""
    if licensee is None:
        licensee = scenario.spotlight_names[0]
    date = on_date or scenario.snapshot_date
    network = engine.snapshot(licensee, date)
    geojson = network_to_geojson(network)
    geojson["properties"] = {"licensee": licensee, "date": date.isoformat()}
    return geojson
