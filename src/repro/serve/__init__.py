"""repro.serve: the corridor analytics service.

A long-running HTTP/JSON query server over ONE shared warm
:class:`~repro.core.engine.CorridorEngine` — the "millions of users"
tier.  Layers, bottom up:

* :mod:`repro.serve.payloads` — pure payload builders shared with the
  CLI's ``--format json`` (parity by construction);
* :mod:`repro.serve.facade`   — lock-scoped, request-coalescing access
  to the shared engine;
* :mod:`repro.serve.service`  — validation, routing, structured errors;
* :mod:`repro.serve.server`   — the threaded stdlib HTTP adapter;
* :mod:`repro.serve.loadgen`  — the ``repro.parallel``-powered load
  harness behind ``hftnetview loadgen`` and ``BENCH_PR8.json``.

See DESIGN.md §13 for the facade/coalescing protocol.
"""

from repro.serve.facade import EngineFacade
from repro.serve.loadgen import LoadProfile, LoadReport, run_load
from repro.serve.server import CorridorServer, active_server, run_server
from repro.serve.service import CorridorQueryService, ServiceError

__all__ = [
    "CorridorQueryService",
    "CorridorServer",
    "EngineFacade",
    "LoadProfile",
    "LoadReport",
    "ServiceError",
    "active_server",
    "run_load",
    "run_server",
]
