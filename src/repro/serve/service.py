"""The corridor query service: validated endpoints over the facade.

:class:`CorridorQueryService` is the transport-free core of the server
— it maps ``(path, query params)`` to a JSON payload, with every
engine-touching computation routed through a
:class:`~repro.serve.facade.EngineFacade` (lock-scoped, coalesced).
The HTTP layer (:mod:`repro.serve.server`) is a thin adapter; tests
exercise the service directly where the socket adds nothing.

One service hosts *many* corridor scenarios: every analysis endpoint
accepts ``?scenario=NAME[:k=v,...]`` (resolved through
:mod:`repro.scenarios`), each resolved scenario gets its own
facade-wrapped warm engine and its own rendered-body cache in an
engine-per-scenario table built lazily on first request, and
``/scenarios`` lists what the registry offers and what is already
loaded.  Requests without the param hit the default scenario exactly
as before.

Faults are values, not stack traces: every rejected request raises a
:class:`ServiceError` carrying an HTTP status and a machine-readable
code, rendered as ``{"error": {"code": ..., "message": ...}}``.  An
unexpected handler exception becomes a structured 500 and the service
keeps serving.
"""

from __future__ import annotations

import datetime as dt
import threading
from collections import OrderedDict
from typing import Callable
from urllib.parse import parse_qsl, urlsplit

from repro import obs
from repro.core.engine import CorridorEngine
from repro.serve import payloads
from repro.serve.facade import EngineFacade
from repro.serve.payloads import DATE_MAX, DATE_MIN, render_payload
from repro.synth.scenario import Scenario, paper2020_scenario


class ServiceError(Exception):
    """A structured request failure (HTTP status + stable error code)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code

    def payload(self) -> dict:
        return {"error": {"code": self.code, "message": str(self)}}


# ----------------------------------------------------------------------
# Parameter parsing/validation helpers
# ----------------------------------------------------------------------


def parse_request(url: str) -> tuple[str, dict[str, str]]:
    """Split a request target into (path, params); reject duplicates."""
    parts = urlsplit(url)
    params: dict[str, str] = {}
    for key, value in parse_qsl(parts.query, keep_blank_values=True):
        if key in params:
            raise ServiceError(
                400, "duplicate-param", f"query parameter repeated: {key!r}"
            )
        params[key] = value
    return parts.path, params


def _check_params(params: dict[str, str], allowed: tuple[str, ...]) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ServiceError(
            400,
            "unknown-param",
            f"unknown query parameter(s) {unknown}; "
            f"expected a subset of {sorted(allowed)}",
        )


def _date_param(
    params: dict[str, str], name: str, default: dt.date | None
) -> dt.date | None:
    text = params.get(name)
    if text is None:
        date = default
    else:
        try:
            date = dt.date.fromisoformat(text)
        except ValueError:
            raise ServiceError(
                400, "bad-date", f"{name!r} is not a YYYY-MM-DD date: {text!r}"
            ) from None
    if date is not None and not (DATE_MIN <= date <= DATE_MAX):
        raise ServiceError(
            400,
            "date-out-of-range",
            f"{name!r} must fall within [{DATE_MIN}, {DATE_MAX}], "
            f"got {date.isoformat()}",
        )
    return date


def _float_param(
    params: dict[str, str], name: str, default: float | None
) -> float | None:
    text = params.get(name)
    if text is None:
        return default
    try:
        value = float(text)
    except ValueError:
        raise ServiceError(
            400, "bad-number", f"{name!r} is not a number: {text!r}"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise ServiceError(400, "bad-number", f"{name!r} must be finite")
    return value


#: Bound on cached rendered bodies.  The request space is small (a
#: handful of endpoints x a few hundred plausible param combinations);
#: 256 covers a steady-state load profile without unbounded growth.
DEFAULT_BODY_CACHE_SIZE = 256


class ResponseBodyCache:
    """Rendered 200 response bodies, keyed on (endpoint, params).

    One level above the facade: a hit skips request parsing, payload
    building *and* JSON rendering.  Entries are scoped to one engine
    generation — any database mutation bumps the generation and the
    next lookup drops every cached body, so a stale body can never be
    served (same invalidation rule as the engine's own caches).  Bodies
    are immutable ``bytes``, safe to hand to any number of threads.
    """

    def __init__(self, maxsize: int = DEFAULT_BODY_CACHE_SIZE) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._generation: int | None = None
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()
        self._lock = threading.Lock()

    def _sync_generation(self, generation: int) -> None:
        if generation != self._generation:
            if self._entries:
                self.invalidations += 1
                self._entries.clear()
            self._generation = generation

    def get(self, key: tuple, generation: int) -> bytes | None:
        with self._lock:
            self._sync_generation(generation)
            body = self._entries.get(key)
            if body is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return body

    def put(self, key: tuple, generation: int, body: bytes) -> None:
        with self._lock:
            self._sync_generation(generation)
            if key not in self._entries and len(self._entries) >= self.maxsize:
                self._entries.popitem(last=False)
            self._entries[key] = body
            self._entries.move_to_end(key)

    def describe(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "generation": self._generation,
            }


class _ScenarioState:
    """One hosted scenario: its facade-wrapped engine and body cache."""

    __slots__ = ("scenario", "facade", "bodies")

    def __init__(self, scenario: Scenario, facade: EngineFacade) -> None:
        self.scenario = scenario
        self.facade = facade
        self.bodies = ResponseBodyCache()


class CorridorQueryService:
    """Route validated queries to payload builders over warm engines.

    Parameters
    ----------
    scenario:
        The *default* corridor scenario — served when a request carries
        no ``scenario`` param (defaults to ``paper2020``).  Other
        registered scenarios are loaded on demand into the
        engine-per-scenario table.
    engine:
        The default scenario's shared warm engine behind its facade;
        defaults to the scenario's shared default engine.
    warm:
        ``False`` builds a *fresh* engine for every request — the
        cold-per-request baseline the serve benchmark compares against
        (``hftnetview serve --cold``).  Warm is the production mode.
    """

    def __init__(
        self,
        scenario: Scenario | None = None,
        engine: CorridorEngine | None = None,
        warm: bool = True,
    ) -> None:
        self.scenario = scenario if scenario is not None else paper2020_scenario()
        self.warm = warm
        shared = engine if engine is not None else self.scenario.engine()
        self._default_state = _ScenarioState(self.scenario, EngineFacade(shared))
        # Canonical scenario reference -> loaded state.  The default
        # scenario sits under its own name, so `?scenario=<default>`
        # routes to the very same engine and body cache.
        self._states: dict[str, _ScenarioState] = {
            self.scenario.name: self._default_state
        }
        self._states_lock = threading.Lock()
        # The state the *current thread's* request resolved; handlers
        # read it through `_current()`.  Thread-local because requests
        # for different scenarios run concurrently, and the coalescing
        # leader computes on the thread that set the value.
        self._local = threading.local()
        self.routes: dict[str, Callable[[CorridorEngine, dict], dict]] = {
            "/rankings": self._rankings,
            "/timeline": self._timeline,
            "/apa": self._apa,
            "/search": self._search,
            "/map": self._map,
        }

    @property
    def facade(self) -> EngineFacade:
        """The default scenario's facade (service-level request counters)."""
        return self._default_state.facade

    @property
    def bodies(self) -> ResponseBodyCache:
        """The default scenario's rendered-body cache."""
        return self._default_state.bodies

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def handle_http(self, url: str) -> tuple[int, bytes]:
        """One request target -> (status, canonical JSON body bytes).

        Successful analysis responses are served from the rendered-body
        cache when possible; ``/healthz`` and ``/stats`` (live values)
        and every error path always render fresh.
        """
        key = self._body_key(url)
        state = self._body_state(key) if key is not None else None
        if state is not None:
            body = state.bodies.get(key, state.facade.engine.database.generation)
            if body is not None:
                obs.count("serve.body_cache.hit")
                # A body hit is still a request for accounting purposes.
                self.facade.enter_request()
                self.facade.exit_request()
                return 200, body
            obs.count("serve.body_cache.miss")
        status, payload = self.handle_url(url)
        body = (render_payload(payload) + "\n").encode("utf-8")
        if state is not None and status == 200:
            state.bodies.put(key, state.facade.engine.database.generation, body)
        return status, body

    def _body_state(self, key: tuple) -> _ScenarioState | None:
        """The state whose body cache holds ``key``, or ``None``.

        A bad scenario reference returns ``None`` so the request takes
        the normal (error-rendering, uncached) path.
        """
        try:
            return self._resolve_state(dict(key[1]).get("scenario"))
        except ServiceError:
            return None

    def _body_key(self, url: str) -> tuple | None:
        """The body-cache key for ``url``, or ``None`` if uncacheable.

        Only the warm shared-engine mode caches (the cold baseline must
        pay full price per request), and only analysis endpoints —
        ``/healthz``/``/stats`` report live state and unparseable
        requests take the error path.
        """
        if not self.warm:
            return None
        try:
            path, params = parse_request(url)
        except ServiceError:
            return None
        if path not in self.routes:
            return None
        return (path, tuple(sorted(params.items())))

    def handle_url(self, url: str) -> tuple[int, dict]:
        """One request target -> (status, payload dict); never raises."""
        self.facade.enter_request()
        try:
            path, params = parse_request(url)
            return 200, self.handle(path, params)
        except ServiceError as error:
            self.facade.note_error()
            return error.status, error.payload()
        except Exception as error:  # lint: disable=broad-except (server boundary: every handler fault must surface as structured JSON on the socket, never a traceback or a dead connection)
            self.facade.note_error()
            return 500, {
                "error": {
                    "code": "internal",
                    "message": f"{type(error).__name__}: {error}",
                }
            }
        finally:
            self.facade.exit_request()

    def handle(self, path: str, params: dict[str, str]) -> dict:
        """Dispatch a parsed request; raises :class:`ServiceError`."""
        if path == "/healthz":
            _check_params(params, ())
            return {"status": "ok", "warm": self.warm}
        if path == "/stats":
            _check_params(params, ())
            stats = self.facade.describe()
            stats["body_cache"] = self.bodies.describe()
            stats["scenarios"] = self._scenario_stats()
            return stats
        if path == "/scenarios":
            _check_params(params, ())
            return self._scenarios_payload()
        handler = self.routes.get(path)
        if handler is None:
            raise ServiceError(
                404,
                "unknown-endpoint",
                f"no such endpoint: {path!r}; expected one of "
                f"{sorted(self.routes) + ['/healthz', '/scenarios', '/stats']}",
            )
        state = self._resolve_state(params.pop("scenario", None))
        key = (path, tuple(sorted(params.items())))
        self._local.state = state
        try:
            with obs.span(
                "serve.request", endpoint=path, scenario=state.scenario.name
            ):
                obs.count("serve.request" + path.replace("/", "."))
                return state.facade.coalesced(
                    key, lambda: handler(self._engine(), params)
                )
        finally:
            self._local.state = None

    def _current(self) -> _ScenarioState:
        """The state the current thread's request resolved to."""
        return getattr(self._local, "state", None) or self._default_state

    def _resolve_state(self, text: str | None) -> _ScenarioState:
        """The loaded state for a ``scenario`` query param (lazy table).

        ``None``/empty routes to the default.  A reference that resolves
        to an already-hosted scenario reuses that scenario's facade and
        body cache — coalescing and generation scoping stay per-engine
        no matter how many spellings of the reference arrive.
        """
        if not text:
            return self._default_state
        from repro.scenarios import (
            ScenarioParamError,
            UnknownScenarioError,
            parse_scenario_ref,
            resolve_scenario,
        )

        try:
            canonical = parse_scenario_ref(text).canonical
            scenario = resolve_scenario(canonical)
        except UnknownScenarioError as error:
            raise ServiceError(404, "unknown-scenario", str(error)) from None
        except ScenarioParamError as error:
            raise ServiceError(400, "bad-scenario", str(error)) from None
        with self._states_lock:
            state = self._states.get(canonical)
            if state is not None:
                return state
            for state in self._states.values():
                if state.scenario is scenario:
                    self._states[canonical] = state
                    return state
            state = _ScenarioState(scenario, EngineFacade(scenario.engine()))
            self._states[canonical] = state
            return state

    def _scenario_stats(self) -> dict:
        """Per-loaded-scenario facade + body-cache stats for ``/stats``."""
        with self._states_lock:
            states = dict(self._states)
        return {
            ref: {
                "scenario": state.scenario.name,
                "facade": state.facade.describe()["facade"],
                "body_cache": state.bodies.describe(),
            }
            for ref, state in states.items()
        }

    def _scenarios_payload(self) -> dict:
        """``/scenarios``: the registry's offerings and what is loaded."""
        from repro.scenarios import registered_scenarios

        with self._states_lock:
            loaded = sorted(self._states)
        return {
            "endpoint": "scenarios",
            "default": self.scenario.name,
            "loaded": loaded,
            "scenarios": [
                {
                    "name": entry.name,
                    "summary": entry.summary,
                    "concrete": entry.concrete,
                    "params": sorted(entry.params),
                }
                for entry in registered_scenarios()
            ],
        }

    def _engine(self) -> CorridorEngine:
        state = self._current()
        if self.warm:
            return state.facade.engine
        # Cold baseline: a private engine per request, empty caches, and
        # no store — the baseline must really rebuild from scratch.
        return CorridorEngine(
            state.scenario.database, state.scenario.corridor, store=False
        )

    def checkpoint(self):
        """Persist every loaded warm engine's caches to its store.

        The draining-shutdown hook: :meth:`repro.serve.server
        .CorridorServer.close` calls this after the last in-flight
        request completes, so the next server boot starts warm — for
        every scenario the table loaded, not just the default.  A no-op
        without a store, or in cold-baseline mode.
        """
        if not self.warm:
            return None
        with self._states_lock:
            states = list(self._states.values())
        result = None
        seen: set[int] = set()
        for state in states:
            engine = state.facade.engine
            if id(engine) in seen:
                continue
            seen.add(id(engine))
            checkpointed = engine.checkpoint()
            if state is self._default_state:
                result = checkpointed
        return result

    # ------------------------------------------------------------------
    # Endpoint handlers (validated params -> payload builders)
    # ------------------------------------------------------------------

    def _licensee_param(
        self, params: dict[str, str], default: str | None = None
    ) -> str | None:
        scenario = self._current().scenario
        name = params.get("licensee", default)
        if name is not None and name not in scenario.database.licensee_names():
            raise ServiceError(404, "unknown-licensee", f"unknown licensee: {name!r}")
        return name

    def _site_param(self, params: dict[str, str], name: str, default: str) -> str:
        site = params.get(name, default)
        scenario = self._current().scenario
        known = sorted({s for path in scenario.corridor.paths for s in path})
        if site not in known:
            raise ServiceError(
                400, "unknown-site", f"{name!r} must be one of {known}, got {site!r}"
            )
        return site

    def _rankings(self, engine: CorridorEngine, params: dict[str, str]) -> dict:
        _check_params(params, ("date", "source", "target"))
        scenario = self._current().scenario
        date = _date_param(params, "date", scenario.snapshot_date)
        default_source, default_target = scenario.primary_path
        source = self._site_param(params, "source", default_source)
        target = self._site_param(params, "target", default_target)
        return payloads.rankings_payload(scenario, engine, date, source, target)

    def _timeline(self, engine: CorridorEngine, params: dict[str, str]) -> dict:
        _check_params(params, ("step", "licensee"))
        step = params.get("step", "paper")
        if step not in ("paper", "monthly", "weekly"):
            raise ServiceError(
                400,
                "bad-step",
                f"'step' must be one of ['paper', 'monthly', 'weekly'], got {step!r}",
            )
        licensee = self._licensee_param(params)
        names = (licensee,) if licensee else None
        return payloads.timeline_payload(
            self._current().scenario, engine, step, names
        )

    def _apa(self, engine: CorridorEngine, params: dict[str, str]) -> dict:
        _check_params(params, ("date", "licensee"))
        scenario = self._current().scenario
        date = _date_param(params, "date", scenario.snapshot_date)
        licensee = self._licensee_param(params)
        names = (licensee,) if licensee else None
        return payloads.apa_payload(scenario, engine, date, names)

    def _search(self, engine: CorridorEngine, params: dict[str, str]) -> dict:
        _check_params(params, ("lat", "lon", "radius_m", "active_on"))
        latitude = _float_param(params, "lat", None)
        longitude = _float_param(params, "lon", None)
        if latitude is not None and not -90.0 <= latitude <= 90.0:
            raise ServiceError(400, "bad-number", "'lat' must be in [-90, 90]")
        if longitude is not None and not -180.0 <= longitude <= 180.0:
            raise ServiceError(400, "bad-number", "'lon' must be in [-180, 180]")
        radius_m = _float_param(params, "radius_m", None)
        if radius_m is not None and radius_m <= 0:
            raise ServiceError(400, "bad-number", "'radius_m' must be positive")
        active_on = _date_param(params, "active_on", None)
        return payloads.search_payload(
            self._current().scenario, latitude, longitude, radius_m, active_on
        )

    def _map(self, engine: CorridorEngine, params: dict[str, str]) -> dict:
        _check_params(params, ("licensee", "date"))
        scenario = self._current().scenario
        licensee = self._licensee_param(params, scenario.spotlight_names[0])
        date = _date_param(params, "date", scenario.snapshot_date)
        return payloads.map_payload(scenario, engine, licensee, date)
