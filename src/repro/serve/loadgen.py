"""Load generation against a running corridor query server.

The client fleet is ``repro.parallel`` (the same executor every
``--jobs`` driver uses): the seeded request mix is built up front, the
fleet replays it, and the report reduces per-request samples into
sustained throughput and tail latency.  Determinism discipline: the
request *sequence* is seeded (``random.Random(profile.seed)``), so two
runs of the same profile issue identical requests in identical order —
only the timings differ.

This module is on the lint obs-discipline allowlist: like
``benchmarks/``, measuring wall time is its whole point, so it reads
``time.perf_counter`` directly instead of going through obs spans.
"""

from __future__ import annotations

import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

from repro.parallel import pmap

#: The default request mix: every served endpoint, with a couple of
#: parameterised variants so warm runs exercise more than one cache key.
DEFAULT_PATHS = (
    "/rankings",
    "/rankings?date=2019-01-01",
    "/apa",
    "/timeline?step=paper",
    "/timeline?step=paper&licensee=New%20Line%20Networks",
    "/search",
    "/map",
)


@dataclass(frozen=True)
class LoadProfile:
    """One reproducible load shape: how much, how wide, what mix."""

    requests: int = 200
    clients: int = 4
    paths: tuple[str, ...] = DEFAULT_PATHS
    seed: int = 7


@dataclass(frozen=True)
class RequestSample:
    """One request's outcome as measured by the client."""

    path: str
    status: int
    elapsed_ms: float


@dataclass(frozen=True)
class LoadReport:
    """The reduced result of one load run."""

    requests: int
    clients: int
    wall_s: float
    qps: float
    p50_ms: float
    p99_ms: float
    errors: int

    def describe(self) -> str:
        return (
            f"{self.requests} requests / {self.clients} clients: "
            f"{self.qps:.1f} qps over {self.wall_s:.2f}s, "
            f"p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms, "
            f"{self.errors} errors"
        )


def request_sequence(profile: LoadProfile) -> list[str]:
    """The seeded request mix: same profile, same sequence, always."""
    rng = random.Random(profile.seed)
    return [rng.choice(profile.paths) for _ in range(profile.requests)]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty sample."""
    if not values:
        raise ValueError("percentile of an empty sample")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _fetch(item: tuple[str, str]) -> RequestSample:
    """One client request (module-level so process backends can pickle)."""
    base_url, path = item
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(base_url + path, timeout=60) as response:
            response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        error.read()
        status = error.code
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return RequestSample(path=path, status=status, elapsed_ms=elapsed_ms)


def run_load(
    base_url: str,
    profile: LoadProfile | None = None,
    backend: str = "auto",
) -> LoadReport:
    """Replay ``profile`` against ``base_url`` with a parallel fleet."""
    profile = profile if profile is not None else LoadProfile()
    base = base_url.rstrip("/")
    items = [(base, path) for path in request_sequence(profile)]
    start = time.perf_counter()
    samples = pmap(_fetch, items, jobs=profile.clients, backend=backend)
    wall_s = time.perf_counter() - start
    latencies = [s.elapsed_ms for s in samples]
    errors = sum(1 for s in samples if s.status != 200)
    return LoadReport(
        requests=len(samples),
        clients=profile.clients,
        wall_s=wall_s,
        qps=len(samples) / wall_s if wall_s > 0 else 0.0,
        p50_ms=percentile(latencies, 0.50),
        p99_ms=percentile(latencies, 0.99),
        errors=errors,
    )
