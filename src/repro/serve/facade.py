"""The concurrency-safe facade in front of one shared warm engine.

A :class:`~repro.core.engine.CorridorEngine` is a nest of LRU dicts,
cursors and counters with no internal synchronisation — correct for the
one-shot CLI drivers, fatal under a threaded server.  The facade makes
one engine safe to share:

* **Lock-scoped resolution** — every computation that may touch engine
  state runs under the engine's reentrant lock
  (:meth:`CorridorEngine.locked`), so snapshot resolution, route
  lookups and cache eviction are serialised exactly as in a
  single-threaded driver.
* **Request coalescing** — identical in-flight requests (same canonical
  key: endpoint path + sorted query params) collapse onto one
  computation.  The first arrival becomes the *leader* and computes
  under the engine lock; later arrivals become *followers*, wait on an
  event, and receive the leader's payload (or its error) without
  touching the engine.  N concurrent identical cache misses therefore
  trigger exactly one cold build (``engine.snapshot.full`` increments
  once — pinned in ``tests/test_serve_concurrency.py``).

The facade also keeps always-on service counters (requests, coalesce
leader/follower splits, errors, peak concurrency) independent of any
``repro.obs`` session, so ``/stats`` is meaningful without ``--trace``.
"""

from __future__ import annotations

import threading

from repro import obs
from repro.core.engine import CorridorEngine


class _Inflight:
    """One in-flight computation: the leader's result, or its error."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object | None = None
        self.error: BaseException | None = None


class EngineFacade:
    """Serialise and coalesce concurrent queries against one engine."""

    def __init__(self, engine: CorridorEngine) -> None:
        self.engine = engine
        self._inflight: dict[object, _Inflight] = {}
        self._inflight_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._leaders = 0
        self._followers = 0
        self._active = 0
        self._peak_active = 0

    # ------------------------------------------------------------------
    # Coalesced execution
    # ------------------------------------------------------------------

    def coalesced(self, key: object, compute):
        """Run ``compute()`` under the engine lock, merging duplicates.

        All concurrent callers presenting the same ``key`` share one
        ``compute()`` invocation; every caller gets the identical return
        value (payloads are immutable-by-convention dicts that handlers
        never mutate after building).  If the leader raises, followers
        re-raise the same exception object.
        """
        with self._inflight_lock:
            entry = self._inflight.get(key)
            if entry is None:
                entry = _Inflight()
                self._inflight[key] = entry
                leader = True
            else:
                leader = False

        if not leader:
            with self._stats_lock:
                self._followers += 1
            obs.count("serve.coalesce.follower")
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            return entry.value

        with self._stats_lock:
            self._leaders += 1
        obs.count("serve.coalesce.leader")
        try:
            with self.engine.locked():
                entry.value = compute()
        except BaseException as error:  # lint: disable=broad-except (leader must hand *any* failure to its waiting followers before re-raising, or they would recompute what just failed)
            entry.error = error
            raise
        finally:
            # Unregister *before* waking followers: a request arriving
            # after this point starts a fresh computation (served warm
            # from the engine's caches) instead of adopting a completed
            # entry.
            with self._inflight_lock:
                self._inflight.pop(key, None)
            entry.event.set()
        return entry.value

    # ------------------------------------------------------------------
    # Service counters
    # ------------------------------------------------------------------

    def enter_request(self) -> None:
        with self._stats_lock:
            self._requests += 1
            self._active += 1
            if self._active > self._peak_active:
                self._peak_active = self._active

    def exit_request(self) -> None:
        with self._stats_lock:
            self._active -= 1

    def note_error(self) -> None:
        with self._stats_lock:
            self._errors += 1
        obs.count("serve.error")

    def describe(self) -> dict:
        """The facade's counters plus the engine's cache statistics."""
        with self._stats_lock:
            counters = {
                "requests": self._requests,
                "errors": self._errors,
                "coalesce_leader": self._leaders,
                "coalesce_follower": self._followers,
                "in_flight": self._active,
                "peak_in_flight": self._peak_active,
            }
        with self.engine.locked():
            stats = self.engine.stats
        described = {
            "facade": counters,
            "engine": {
                "snapshot_hits": stats.snapshot.hits,
                "snapshot_misses": stats.snapshot.misses,
                "route_hits": stats.route.hits,
                "route_misses": stats.route.misses,
                "snapshot_incremental": stats.snapshot_incremental,
                "snapshot_full": stats.snapshot_full,
            },
        }
        store = getattr(self.engine, "store", None)
        if store is not None:
            described["store"] = store.counters()
        return described
