"""The HTTP adapter: a threaded stdlib server over the query service.

``ThreadingHTTPServer`` gives one handler thread per connection — the
concurrency the facade exists to make safe — with zero dependencies.
Two deliberate deviations from the stdlib defaults:

* ``daemon_threads = False`` + ``block_on_close = True``: closing the
  server *drains* — ``server_close()`` joins every in-flight handler
  thread, so a response that has started is always finished before
  shutdown completes (pinned in ``tests/test_serve_http.py``).
* every response carries ``Connection: close``: keep-alive would let
  idle client sockets hold handler threads open across the drain.

:func:`run_server` is the blocking CLI entry (``hftnetview serve``);
:class:`CorridorServer` is the embeddable/test form (context manager,
ephemeral port).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.service import CorridorQueryService


class _Handler(BaseHTTPRequestHandler):
    server_version = "hftnetview"
    sys_version = ""

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler hook name)
        status, body = self.server.service.handle_http(self.path)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        # Request logging is the obs layer's job (serve.request spans);
        # the default stderr line per request would swamp test output.
        pass


class _DrainingHTTPServer(ThreadingHTTPServer):
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True


class CorridorServer:
    """One query service on one listening socket, served from a thread."""

    def __init__(
        self,
        service: CorridorQueryService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service if service is not None else CorridorQueryService()
        self._httpd = _DrainingHTTPServer((host, port), _Handler)
        self._httpd.service = self.service
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CorridorServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="hftnetview-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def join(self) -> None:
        """Block until the accept loop exits (another thread closing us)."""
        if self._thread is not None:
            self._thread.join()

    def close(self) -> None:
        """Stop accepting, drain in-flight handlers, release the socket."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
        # Drained: no handler is in flight, so the warm engine's caches
        # are quiescent — checkpoint them to the persistent store (a
        # no-op without one) so the next boot starts warm.
        self.service.checkpoint()

    def __enter__(self) -> "CorridorServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: The server the blocking entry point is currently running, if any —
#: deliberate session state so signal handlers and tests can reach the
#: live server from outside ``run_server``'s frame.
_ACTIVE_SERVER: CorridorServer | None = None


def active_server() -> CorridorServer | None:
    """The server :func:`run_server` is currently serving (None if idle)."""
    return _ACTIVE_SERVER


def run_server(
    service: CorridorQueryService | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    announce=None,
) -> str:
    """Serve until interrupted (Ctrl-C) or closed from another thread.

    ``announce(url)`` is called once the socket is listening.  Returns
    the served URL after a clean shutdown (every in-flight request
    drained).
    """
    global _ACTIVE_SERVER
    server = CorridorServer(service, host=host, port=port)
    _ACTIVE_SERVER = server
    server.start()
    if announce is not None:
        announce(server.url)
    try:
        server.join()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        _ACTIVE_SERVER = None
    return server.url
