"""Ablations over the methodology's modelling choices.

The paper fixes several knobs (5% APA slack, 50 km fiber reach, "last
tower" fiber attachment, zero per-tower overhead, 30 m stitching
tolerance).  These sweeps quantify how sensitive the headline results are
to each — including §3's observation that a per-tower overhead above
~1.4 µs would let Jefferson Microwave (22 towers) overtake New Line
Networks (25 towers) on CME–NY4.

Each sweep that varies a reconstruction parameter builds a
parameter-distinct :class:`~repro.core.engine.CorridorEngine` per knob
value (``scenario.engine(param=...)``), so snapshots computed under
different parameterisations can never alias in a shared cache.  Sweeps
that only vary a *metric* parameter (the APA slack) share the scenario's
default engine.

Every sweep accepts ``jobs`` (and an optional shared
:class:`~repro.parallel.grid.GridSession`): at ``jobs=1`` the original
serial loops run unchanged; above that, knob values fan out through the
session, which routes each override set to a pooled, memo-seeded sibling
engine and merges worker cache learning back — knob order in the result
and every computed value are jobs-invariant.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

from repro import obs
from repro.core.latency import LatencyModel
from repro.metrics.apa import apa_percent
from repro.metrics.rankings import rank_connected_networks
from repro.parallel.grid import GridSession, grid_session
from repro.synth.scenario import Scenario


def _apa_slack_task(ctx, item):
    licensee, date, slack = item
    network = ctx.engine.snapshot(licensee, date)
    return apa_percent(network, "CME", "NY4", slack=slack)


def _fiber_mode_task(ctx, item):
    licensee, date, _mode = item
    network = ctx.engine.snapshot(licensee, date)
    return apa_percent(network, "CME", "NY4")


def _overhead_task(ctx, item):
    licensees, date, overhead_us = item
    latencies = {}
    for name in licensees:
        route = ctx.engine.route(name, date, "CME", "NY4")
        if route is not None:
            latencies[name] = route.latency_ms
    leader = min(latencies, key=latencies.get) if latencies else ""
    return OverheadCrossover(
        overhead_us=overhead_us, leader=leader, latency_ms=latencies
    )


def _stitch_task(ctx, item):
    licensee, date, _tolerance = item
    network = ctx.engine.snapshot(licensee, date)
    return (network.tower_count, network.is_connected("CME", "NY4"))


def _fiber_radius_task(ctx, item):
    licensees, date, _radius_km = item
    rankings = rank_connected_networks(
        ctx.database,
        ctx.engine.corridor,
        date,
        licensees=list(licensees),
        engine=ctx.engine,
    )
    return len(rankings)


def apa_slack_sweep(
    scenario: Scenario,
    licensee: str = "New Line Networks",
    slacks: tuple[float, ...] = (1.01, 1.02, 1.05, 1.10, 1.20),
    on_date: dt.date | None = None,
    jobs: int = 1,
    session: GridSession | None = None,
) -> dict[float, int]:
    """APA (CME–NY4) as a function of the latency-slack factor.

    The slack is a metric knob, not a reconstruction knob: one snapshot
    from the shared engine serves every slack value.
    """
    date = on_date or scenario.snapshot_date
    with obs.span("analysis.ablation", sweep="apa-slack", knobs=len(slacks)):
        if jobs == 1 and session is None:
            network = scenario.engine().snapshot(licensee, date)
            return {
                slack: apa_percent(network, "CME", "NY4", slack=slack)
                for slack in slacks
            }
        items = [(licensee, date, slack) for slack in slacks]
        with grid_session(scenario.engine(), jobs, session) as live:
            values = live.map(_apa_slack_task, items, label="apa-slack")
        return dict(zip(slacks, values))


def fiber_mode_comparison(
    scenario: Scenario,
    licensee: str = "New Line Networks",
    on_date: dt.date | None = None,
    jobs: int = 1,
    session: GridSession | None = None,
) -> dict[str, int]:
    """APA under the two fiber-attachment readings of §2.3.

    ``"nearest"`` (one tail per data center — "the last tower on each
    side") vs ``"all"`` (tails to every tower within 50 km, under which a
    branch towards one data center doubles as a backup entry into
    another).
    """
    date = on_date or scenario.snapshot_date
    modes = ("nearest", "all")
    with obs.span("analysis.ablation", sweep="fiber-mode", knobs=len(modes)):
        if jobs == 1 and session is None:
            result = {}
            for mode in modes:
                network = scenario.engine(fiber_mode=mode).snapshot(
                    licensee, date
                )
                result[mode] = apa_percent(network, "CME", "NY4")
            return result
        items = [(licensee, date, mode) for mode in modes]
        with grid_session(scenario.engine(), jobs, session) as live:
            values = live.map(
                _fiber_mode_task,
                items,
                params=lambda item: {"fiber_mode": item[2]},
                label="fiber-mode",
            )
        return dict(zip(modes, values))


@dataclass(frozen=True)
class OverheadCrossover:
    """Rankings under a per-tower overhead."""

    overhead_us: float
    leader: str
    latency_ms: dict[str, float]


def per_tower_overhead_crossover(
    scenario: Scenario,
    overheads_us: tuple[float, ...] = (0.0, 0.5, 1.0, 1.4, 2.0, 3.0),
    licensees: tuple[str, ...] = ("New Line Networks", "Jefferson Microwave"),
    on_date: dt.date | None = None,
    jobs: int = 1,
    session: GridSession | None = None,
) -> list[OverheadCrossover]:
    """§3's what-if: sweep the per-tower repeater overhead.

    JM's shortest path has 22 towers vs NLN's 25; the paper estimates JM
    overtakes NLN once the per-tower cost exceeds ~1.4 µs.
    """
    date = on_date or scenario.snapshot_date
    with obs.span(
        "analysis.ablation", sweep="per-tower-overhead", knobs=len(overheads_us)
    ):
        if jobs == 1 and session is None:
            return _overhead_crossovers(scenario, overheads_us, licensees, date)
        items = [
            (licensees, date, overhead_us) for overhead_us in overheads_us
        ]
        with grid_session(scenario.engine(), jobs, session) as live:
            return live.map(
                _overhead_task,
                items,
                params=lambda item: {
                    "latency_model": LatencyModel(
                        per_tower_overhead_s=item[2] * 1e-6
                    )
                },
                label="per-tower-overhead",
            )


def _overhead_crossovers(scenario, overheads_us, licensees, date):
    results = []
    for overhead_us in overheads_us:
        model = LatencyModel(per_tower_overhead_s=overhead_us * 1e-6)
        engine = scenario.engine(latency_model=model)
        latencies = {}
        for name in licensees:
            route = engine.route(name, date, "CME", "NY4")
            if route is not None:
                latencies[name] = route.latency_ms
        leader = min(latencies, key=latencies.get) if latencies else ""
        results.append(
            OverheadCrossover(
                overhead_us=overhead_us, leader=leader, latency_ms=latencies
            )
        )
    return results


def stitch_tolerance_sweep(
    scenario: Scenario,
    licensee: str = "New Line Networks",
    tolerances_m: tuple[float, ...] = (1.0, 10.0, 30.0, 100.0, 1000.0),
    on_date: dt.date | None = None,
    jobs: int = 1,
    session: GridSession | None = None,
) -> dict[float, tuple[int, bool]]:
    """(tower count, connected?) as the stitching tolerance varies.

    Too tight and rounding splits physical towers (breaking paths); too
    loose and distinct towers merge (shortening paths artificially).
    """
    date = on_date or scenario.snapshot_date
    with obs.span(
        "analysis.ablation", sweep="stitch-tolerance", knobs=len(tolerances_m)
    ):
        if jobs == 1 and session is None:
            result = {}
            for tolerance in tolerances_m:
                network = scenario.engine(
                    stitch_tolerance_m=tolerance
                ).snapshot(licensee, date)
                result[tolerance] = (
                    network.tower_count,
                    network.is_connected("CME", "NY4"),
                )
            return result
        items = [(licensee, date, tolerance) for tolerance in tolerances_m]
        with grid_session(scenario.engine(), jobs, session) as live:
            values = live.map(
                _stitch_task,
                items,
                params=lambda item: {"stitch_tolerance_m": item[2]},
                label="stitch-tolerance",
            )
        return dict(zip(tolerances_m, values))


def fiber_radius_sweep(
    scenario: Scenario,
    radii_km: tuple[float, ...] = (1.0, 5.0, 25.0, 50.0, 100.0),
    on_date: dt.date | None = None,
    jobs: int = 1,
    session: GridSession | None = None,
) -> dict[float, int]:
    """How many networks stay CME–NY4 connected as the fiber reach shrinks."""
    date = on_date or scenario.snapshot_date
    with obs.span(
        "analysis.ablation", sweep="fiber-radius", knobs=len(radii_km)
    ):
        if jobs == 1 and session is None:
            result = {}
            for radius_km in radii_km:
                rankings = rank_connected_networks(
                    scenario.database,
                    scenario.corridor,
                    date,
                    licensees=list(scenario.connected_names),
                    engine=scenario.engine(
                        max_fiber_tail_m=radius_km * 1000.0
                    ),
                )
                result[radius_km] = len(rankings)
            return result
        names = tuple(scenario.connected_names)
        items = [(names, date, radius_km) for radius_km in radii_km]
        with grid_session(scenario.engine(), jobs, session) as live:
            values = live.map(
                _fiber_radius_task,
                items,
                params=lambda item: {"max_fiber_tail_m": item[2] * 1000.0},
                label="fiber-radius",
            )
        return dict(zip(radii_km, values))
