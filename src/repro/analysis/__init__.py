"""Experiment drivers: one entry point per paper table and figure.

Each driver takes a :class:`~repro.synth.scenario.Scenario` (or raw
database + corridor) and returns plain data structures; the benchmark
harness and examples print/persist them.  See DESIGN.md's experiment
index for the table/figure ↔ driver mapping.
"""

from repro.analysis.funnel import FunnelResult, run_scraping_funnel
from repro.analysis.tables import (
    table1_connected_networks,
    table2_top_networks,
    table3_apa,
)
from repro.analysis.figures import (
    fig1_latency_evolution,
    fig2_active_licenses,
    fig3_network_maps,
    fig4a_link_length_cdfs,
    fig4b_frequency_cdfs,
    fig5_leo_comparison,
)
from repro.analysis.ablations import (
    apa_slack_sweep,
    fiber_mode_comparison,
    per_tower_overhead_crossover,
    stitch_tolerance_sweep,
)
from repro.analysis.entities import (
    complementary_pairs,
    joint_analysis,
    resolve_entities,
)
from repro.analysis.stability import ranking_stability
from repro.analysis.flux import race_history
from repro.analysis.monitor import diff_corridor
from repro.analysis.report import format_table

__all__ = [
    "FunnelResult",
    "run_scraping_funnel",
    "table1_connected_networks",
    "table2_top_networks",
    "table3_apa",
    "fig1_latency_evolution",
    "fig2_active_licenses",
    "fig3_network_maps",
    "fig4a_link_length_cdfs",
    "fig4b_frequency_cdfs",
    "fig5_leo_comparison",
    "apa_slack_sweep",
    "fiber_mode_comparison",
    "per_tower_overhead_crossover",
    "stitch_tolerance_sweep",
    "format_table",
    "complementary_pairs",
    "joint_analysis",
    "resolve_entities",
    "ranking_stability",
    "race_history",
    "diff_corridor",
]
