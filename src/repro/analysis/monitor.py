"""Corridor monitoring: what changed between two dates.

The study is a snapshot; keeping it current means diffing the corridor
week over week — new filings, networks gaining or losing end-to-end
connectivity, latency movements, wind-downs.  This is the report the
authors' tool would mail out every Monday.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

from repro.core.corridor import CorridorSpec
from repro.core.engine import CorridorEngine
from repro.uls.database import UlsDatabase
from repro.uls.transactions import transactions_between


@dataclass(frozen=True)
class LatencyChange:
    """One network's latency movement over the window."""

    licensee: str
    before_ms: float | None
    after_ms: float | None

    @property
    def delta_us(self) -> float | None:
        if self.before_ms is None or self.after_ms is None:
            return None
        return (self.after_ms - self.before_ms) * 1e3

    @property
    def kind(self) -> str:
        if self.before_ms is None and self.after_ms is not None:
            return "connected"
        if self.before_ms is not None and self.after_ms is None:
            return "disconnected"
        if self.delta_us is not None and abs(self.delta_us) > 1e-3:
            return "improved" if self.delta_us < 0 else "regressed"
        return "unchanged"


@dataclass(frozen=True)
class CorridorDiff:
    """Everything that changed on the corridor between two dates."""

    start: dt.date
    end: dt.date
    grants: int
    cancellations: int
    terminations: int
    new_licensees: tuple[str, ...]
    changes: tuple[LatencyChange, ...] = field(default_factory=tuple)

    @property
    def newly_connected(self) -> tuple[str, ...]:
        return tuple(c.licensee for c in self.changes if c.kind == "connected")

    @property
    def newly_disconnected(self) -> tuple[str, ...]:
        return tuple(c.licensee for c in self.changes if c.kind == "disconnected")

    @property
    def movers(self) -> tuple[LatencyChange, ...]:
        """Networks whose latency moved, biggest improvement first."""
        moved = [c for c in self.changes if c.kind in ("improved", "regressed")]
        moved.sort(key=lambda c: c.delta_us)
        return tuple(moved)


def diff_corridor(
    database: UlsDatabase,
    corridor: CorridorSpec,
    start: dt.date,
    end: dt.date,
    source: str | None = None,
    target: str | None = None,
    licensees: list[str] | None = None,
    engine: CorridorEngine | None = None,
) -> CorridorDiff:
    """Diff the corridor between two dates.

    ``licensees`` restricts the latency comparison (by default every
    licensee with filings); licensing-event counts always cover the whole
    database.  Pass ``engine`` to reuse snapshot/route caches across
    repeated diffs (weekly monitoring keeps re-routing the same
    unchanged networks).
    """
    source, target = corridor.resolve_path(source, target)
    log = transactions_between(database, start, end)
    grants = sum(1 for tx in log if tx.action == "grant")
    cancellations = sum(1 for tx in log if tx.action == "cancel")
    terminations = sum(1 for tx in log if tx.action == "terminate")

    # Licensees whose first-ever grant falls inside the window.
    first_grant: dict[str, dt.date] = {}
    for lic in database:
        if lic.grant_date is None:
            continue
        name = lic.licensee_name
        if name not in first_grant or lic.grant_date < first_grant[name]:
            first_grant[name] = lic.grant_date
    new_licensees = tuple(
        sorted(name for name, date in first_grant.items() if start < date <= end)
    )

    engine = engine or CorridorEngine(database, corridor)
    names = licensees if licensees is not None else database.licensee_names()
    changes = []
    for name in names:
        route_before = engine.route(name, start, source, target)
        route_after = engine.route(name, end, source, target)
        change = LatencyChange(
            licensee=name,
            before_ms=None if route_before is None else route_before.latency_ms,
            after_ms=None if route_after is None else route_after.latency_ms,
        )
        if change.kind != "unchanged" or change.before_ms is not None:
            changes.append(change)
    return CorridorDiff(
        start=start,
        end=end,
        grants=grants,
        cancellations=cancellations,
        terminations=terminations,
        new_licensees=new_licensees,
        changes=tuple(changes),
    )
