"""The race over time: leadership changes and the gap to the bound.

§3 observes that "the rankings are still in flux, which is interesting,
given the long period over which networks have been competing towards a
(fixed) best-possible goal", and §4 that after eight years "the minimum
achievable latency of 3.955 ms has not been reached".  This driver
quantifies both: per-snapshot rankings, leadership changes, each
network's rank trajectory, and the corridor minimum's remaining gap to
the c-speed geodesic bound.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

from repro.constants import SPEED_OF_LIGHT
from repro.core.timeline import yearly_snapshot_dates
from repro.metrics.rankings import rank_connected_networks
from repro.synth.scenario import Scenario


@dataclass(frozen=True)
class RaceSnapshot:
    """The ranking at one date."""

    date: dt.date
    order: tuple[str, ...]  # fastest first
    latencies_ms: dict[str, float]

    @property
    def leader(self) -> str | None:
        return self.order[0] if self.order else None

    @property
    def minimum_ms(self) -> float | None:
        return self.latencies_ms[self.order[0]] if self.order else None


@dataclass(frozen=True)
class RaceHistory:
    """Rankings across the date grid, with derived flux measures."""

    source: str
    target: str
    bound_ms: float
    snapshots: tuple[RaceSnapshot, ...]

    @property
    def leaders(self) -> list[tuple[dt.date, str | None]]:
        return [(snapshot.date, snapshot.leader) for snapshot in self.snapshots]

    @property
    def leadership_changes(self) -> int:
        """How many times rank 1 changed hands (ignoring empty years)."""
        named = [s.leader for s in self.snapshots if s.leader is not None]
        return sum(1 for a, b in zip(named, named[1:]) if a != b)

    def gap_to_bound_us(self) -> list[tuple[dt.date, float | None]]:
        """Remaining µs between the corridor minimum and the c-bound."""
        series = []
        for snapshot in self.snapshots:
            minimum = snapshot.minimum_ms
            gap = None if minimum is None else (minimum - self.bound_ms) * 1e3
            series.append((snapshot.date, gap))
        return series

    def rank_of(self, licensee: str) -> list[tuple[dt.date, int | None]]:
        """1-based rank trajectory of one network (None = not connected)."""
        trajectory = []
        for snapshot in self.snapshots:
            rank = (
                snapshot.order.index(licensee) + 1
                if licensee in snapshot.order
                else None
            )
            trajectory.append((snapshot.date, rank))
        return trajectory


def race_history(
    scenario: Scenario,
    dates: list[dt.date] | None = None,
    source: str | None = None,
    target: str | None = None,
    licensees: list[str] | None = None,
) -> RaceHistory:
    """Rank every (candidate) network at every snapshot date.

    All dates share the scenario's engine, and the sweep walks the date
    grid in ascending (evolution) order: each licensee's snapshot key
    evolves from its cursor via the temporal index, so years in which a
    licensee's active-license set is unchanged reuse the cached network
    outright — no fingerprint rescan, let alone re-stitching.
    """
    source, target = scenario.corridor.resolve_path(source, target)
    dates = dates or yearly_snapshot_dates()
    if licensees is not None:
        names = list(licensees)
    else:
        # Every connected network, plus featured networks that are no
        # longer connected (the paper's wound-down National Tower Company).
        names = list(scenario.connected_names) + [
            name
            for name in scenario.featured_names
            if name not in scenario.connected_names
        ]
    engine = scenario.engine()
    bound_ms = scenario.corridor.geodesic_m(source, target) / SPEED_OF_LIGHT * 1e3
    snapshots = []
    for date in dates:
        rankings = rank_connected_networks(
            scenario.database,
            scenario.corridor,
            date,
            source=source,
            target=target,
            licensees=names,
            engine=engine,
        )
        snapshots.append(
            RaceSnapshot(
                date=date,
                order=tuple(r.licensee for r in rankings),
                latencies_ms={r.licensee: r.latency_ms for r in rankings},
            )
        )
    return RaceHistory(
        source=source, target=target, bound_ms=bound_ms, snapshots=tuple(snapshots)
    )
