"""Ranking stability under radio-technology uncertainty (§6).

The paper's distance-based latency estimates ignore per-tower repetition
or regeneration delay, and §6 proposes "using information from radio
vendors ... to bound how much difference radio technology could create
beyond our distance-based analysis".  This module does the bounding: it
sweeps the per-tower overhead over a vendor-plausible range and reports
where the Table 1/2 orderings flip, and which pairs are robust.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

from repro.core.latency import LatencyModel
from repro.synth.scenario import Scenario


@dataclass(frozen=True)
class RankFlip:
    """Two networks whose order flips at some overhead within the range."""

    faster_at_zero: str
    slower_at_zero: str
    crossover_us: float


@dataclass(frozen=True)
class StabilityReport:
    """Ranking stability over a per-tower overhead range."""

    source: str
    target: str
    max_overhead_us: float
    order_at_zero: tuple[str, ...]
    order_at_max: tuple[str, ...]
    flips: tuple[RankFlip, ...]

    @property
    def stable(self) -> bool:
        return not self.flips


def _latencies_at(
    scenario: Scenario,
    overhead_us: float,
    source: str,
    target: str,
    licensees: tuple[str, ...],
    on_date: dt.date,
) -> dict[str, tuple[float, int]]:
    """licensee -> (latency ms at overhead, tower count)."""
    if overhead_us == 0.0:
        engine = scenario.engine()
    else:
        model = LatencyModel(per_tower_overhead_s=overhead_us * 1e-6)
        engine = scenario.engine(latency_model=model)
    out = {}
    for name in licensees:
        route = engine.route(name, on_date, source, target)
        if route is not None:
            out[name] = (route.latency_ms, route.tower_count)
    return out


def ranking_stability(
    scenario: Scenario,
    max_overhead_us: float = 3.0,
    source: str | None = None,
    target: str | None = None,
    licensees: tuple[str, ...] | None = None,
    on_date: dt.date | None = None,
) -> StabilityReport:
    """Where do rankings flip as per-tower overhead grows from 0?

    Because latency is affine in the overhead (latency₀ + towers·t), each
    pair's crossover solves in closed form:
    ``t* = (latency_b − latency_a) / (towers_a − towers_b)`` — no sweep
    needed; flips are exact.  (Routes are assumed overhead-invariant,
    which holds when bypasses cost extra towers, as on this corridor.)
    """
    if max_overhead_us <= 0.0:
        raise ValueError("overhead range must be positive")
    source, target = scenario.corridor.resolve_path(source, target)
    date = on_date or scenario.snapshot_date
    names = licensees or scenario.connected_names
    at_zero = _latencies_at(scenario, 0.0, source, target, tuple(names), date)

    order_zero = tuple(sorted(at_zero, key=lambda n: at_zero[n][0]))
    flips: list[RankFlip] = []
    for i, first in enumerate(order_zero):
        for second in order_zero[i + 1 :]:
            latency_a, towers_a = at_zero[first]
            latency_b, towers_b = at_zero[second]
            if towers_a <= towers_b:
                continue  # the faster network also has fewer/equal towers
            crossover = (latency_b - latency_a) * 1e3 / (towers_a - towers_b)
            if 0.0 < crossover <= max_overhead_us:
                flips.append(
                    RankFlip(
                        faster_at_zero=first,
                        slower_at_zero=second,
                        crossover_us=crossover,
                    )
                )
    flips.sort(key=lambda flip: flip.crossover_us)

    at_max = _latencies_at(scenario, max_overhead_us, source, target, tuple(names), date)
    order_max = tuple(sorted(at_max, key=lambda n: at_max[n][0]))
    return StabilityReport(
        source=source,
        target=target,
        max_overhead_us=max_overhead_us,
        order_at_zero=order_zero,
        order_at_max=order_max,
        flips=tuple(flips),
    )
