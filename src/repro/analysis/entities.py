"""Entity resolution across licensees (§2.4 limitation, §6 future work).

The paper notes two blind spots its future-work section proposes to
close: licensees filing under front names can be *identified* "by
analysing items like the licensee email addresses", and co-owned
licensees can be *joined* "by evaluating which networks have
complementary links that together form end-end paths".  This module
implements both signals:

* **contact-domain grouping** — licensees whose filings share a contact
  e-mail domain are candidate co-owned groups;
* **complementarity analysis** — for a candidate group, reconstruct the
  *joint* network from the union of their filings and test whether it
  forms an end-to-end path that no member forms alone (links must
  actually stitch: the halves share towers).

A group is *confirmed* when both signals fire.  Purely geometric
complementarity search (no shared domain) is also provided, with the
caveat the paper gives: it carries "some uncertainty" — two unrelated
partial builders may happen to abut.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from itertools import combinations

from repro.core.corridor import CorridorSpec
from repro.core.engine import CorridorEngine
from repro.uls.database import UlsDatabase


def contact_domains(database: UlsDatabase, licensee: str) -> set[str]:
    """E-mail domains appearing on a licensee's filings."""
    domains = set()
    for lic in database.licenses_for(licensee):
        email = lic.contact_email
        if "@" in email:
            domains.add(email.rpartition("@")[2].lower())
    return domains


def shared_domain_groups(
    database: UlsDatabase, licensees: list[str] | None = None
) -> dict[str, list[str]]:
    """domain → licensees (≥2) filing under it."""
    names = licensees if licensees is not None else database.licensee_names()
    by_domain: dict[str, list[str]] = {}
    for name in names:
        for domain in contact_domains(database, name):
            by_domain.setdefault(domain, []).append(name)
    return {
        domain: sorted(group)
        for domain, group in by_domain.items()
        if len(group) >= 2
    }


@dataclass(frozen=True)
class JointAnalysis:
    """Outcome of jointly reconstructing a group of licensees."""

    licensees: tuple[str, ...]
    connected_alone: dict[str, bool]
    jointly_connected: bool
    joint_latency_ms: float | None

    @property
    def complementary(self) -> bool:
        """Jointly connected while no member connects alone."""
        return self.jointly_connected and not any(self.connected_alone.values())


def joint_analysis(
    database: UlsDatabase,
    corridor: CorridorSpec,
    licensees: tuple[str, ...],
    on_date: dt.date,
    source: str | None = None,
    target: str | None = None,
    engine: CorridorEngine | None = None,
) -> JointAnalysis:
    """Reconstruct a group's joint network and compare with the members'.

    Members are snapshotted through the engine (cache hits when callers
    probe overlapping groups); the pooled joint network is keyed on the
    union of the members' active license ids, so repeated probes of the
    same group are also cached.
    """
    if len(licensees) < 2:
        raise ValueError("joint analysis needs at least two licensees")
    source, target = corridor.resolve_path(source, target)
    engine = engine or CorridorEngine(database, corridor)
    connected_alone = {}
    pooled = []
    for name in licensees:
        pooled.extend(database.licenses_for(name))
        connected_alone[name] = engine.is_connected(name, on_date, source, target)
    joint_name = " + ".join(licensees)
    joint = engine.snapshot_from_licenses(pooled, on_date, licensee=joint_name)
    route = joint.lowest_latency_route(source, target)
    return JointAnalysis(
        licensees=tuple(licensees),
        connected_alone=connected_alone,
        jointly_connected=route is not None,
        joint_latency_ms=None if route is None else route.latency_ms,
    )


@dataclass(frozen=True)
class ResolvedEntity:
    """A confirmed co-owned group: shared domain + complementary links."""

    domain: str
    licensees: tuple[str, ...]
    analysis: JointAnalysis


def resolve_entities(
    database: UlsDatabase,
    corridor: CorridorSpec,
    on_date: dt.date,
    licensees: list[str] | None = None,
    source: str | None = None,
    target: str | None = None,
    require_complementary: bool = True,
    engine: CorridorEngine | None = None,
) -> list[ResolvedEntity]:
    """Find co-owned licensee groups.

    Groups licensees by shared contact domain, then confirms each group
    by joint reconstruction.  With ``require_complementary`` (default) a
    group is reported only when the joint network achieves an end-to-end
    path none of its members achieves alone — the unambiguous signature
    of a split filing identity.
    """
    source, target = corridor.resolve_path(source, target)
    engine = engine or CorridorEngine(database, corridor)
    resolved = []
    for domain, group in sorted(shared_domain_groups(database, licensees).items()):
        analysis = joint_analysis(
            database,
            corridor,
            tuple(group),
            on_date,
            source=source,
            target=target,
            engine=engine,
        )
        if require_complementary and not analysis.complementary:
            continue
        resolved.append(
            ResolvedEntity(domain=domain, licensees=tuple(group), analysis=analysis)
        )
    return resolved


def complementary_pairs(
    database: UlsDatabase,
    corridor: CorridorSpec,
    licensees: list[str],
    on_date: dt.date,
    source: str | None = None,
    target: str | None = None,
    engine: CorridorEngine | None = None,
) -> list[JointAnalysis]:
    """Geometric search: pairs whose union connects though neither does.

    The "with some uncertainty" variant from §2.4 — no identity signal,
    only link complementarity.  Quadratic in the candidate list, so
    callers should pass a shortlist (e.g. the funnel's non-connected
    licensees); the engine's caches keep each member's solo snapshot and
    route to a single reconstruction across all pairs.
    """
    source, target = corridor.resolve_path(source, target)
    engine = engine or CorridorEngine(database, corridor)
    alone: dict[str, bool] = {}
    for name in licensees:
        alone[name] = engine.is_connected(name, on_date, source, target)
    results = []
    for first, second in combinations(licensees, 2):
        if alone[first] or alone[second]:
            continue  # already connected alone: not a "split network" signature
        analysis = joint_analysis(
            database,
            corridor,
            (first, second),
            on_date,
            source=source,
            target=target,
            engine=engine,
        )
        if analysis.complementary:
            results.append(analysis)
    return results
