"""Drivers for Tables 1–3."""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

from repro import obs
from repro.metrics.apa import apa_percent
from repro.metrics.rankings import (
    NetworkRanking,
    PathTopRanking,
    rank_connected_networks,
    top_networks_per_path,
)
from repro.parallel.grid import GridSession, grid_session
from repro.synth.scenario import Scenario


def table1_connected_networks(
    scenario: Scenario,
    on_date: dt.date | None = None,
    source: str | None = None,
    target: str | None = None,
    jobs: int = 1,
    session: GridSession | None = None,
) -> list[NetworkRanking]:
    """Table 1: connected networks by increasing primary-path latency."""
    date = on_date or scenario.snapshot_date
    with obs.span("analysis.table1", date=date.isoformat()):
        return rank_connected_networks(
            scenario.database,
            scenario.corridor,
            date,
            source=source,
            target=target,
            engine=scenario.engine(),
            jobs=jobs,
            session=session,
        )


def table2_top_networks(
    scenario: Scenario,
    on_date: dt.date | None = None,
    top_n: int = 3,
    jobs: int = 1,
    session: GridSession | None = None,
) -> list[PathTopRanking]:
    """Table 2: the fastest ``top_n`` networks per corridor path."""
    date = on_date or scenario.snapshot_date
    with obs.span("analysis.table2", date=date.isoformat()):
        return top_networks_per_path(
            scenario.database,
            scenario.corridor,
            date,
            top_n=top_n,
            engine=scenario.engine(),
            jobs=jobs,
            session=session,
        )


@dataclass(frozen=True)
class ApaRow:
    """One row of Table 3."""

    path: tuple[str, str]
    values: dict[str, int]


def _table3_task(ctx, item):
    name, date, paths = item
    network = ctx.engine.snapshot(name, date)
    return {
        path: apa_percent(network, path[0], path[1]) for path in paths
    }


def table3_apa(
    scenario: Scenario,
    licensees: tuple[str, ...] | None = None,
    on_date: dt.date | None = None,
    jobs: int = 1,
    session: GridSession | None = None,
) -> list[ApaRow]:
    """Table 3: per-path APA for selected networks (default: the
    scenario's spotlight pair, the paper's NLN vs WH).

    Fans out one licensee per task (its full APA column) when parallel;
    rows are reassembled path-major either way.
    """
    if licensees is None:
        licensees = scenario.spotlight_names
    date = on_date or scenario.snapshot_date
    engine = scenario.engine()
    paths = tuple(scenario.corridor.paths)
    with obs.span("analysis.table3", date=date.isoformat()):
        if jobs == 1 and session is None:
            networks = {name: engine.snapshot(name, date) for name in licensees}
            columns = {
                name: {
                    path: apa_percent(network, path[0], path[1])
                    for path in paths
                }
                for name, network in networks.items()
            }
        else:
            items = [(name, date, paths) for name in licensees]
            with grid_session(engine, jobs, session) as live:
                results = live.map(_table3_task, items, label="table3")
            columns = dict(zip(licensees, results))
        return [
            ApaRow(
                path=path,
                values={name: columns[name][path] for name in licensees},
            )
            for path in paths
        ]
