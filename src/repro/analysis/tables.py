"""Drivers for Tables 1–3."""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

from repro import obs
from repro.metrics.apa import apa_percent
from repro.metrics.rankings import (
    NetworkRanking,
    PathTopRanking,
    rank_connected_networks,
    top_networks_per_path,
)
from repro.synth.scenario import Scenario


def table1_connected_networks(
    scenario: Scenario,
    on_date: dt.date | None = None,
    source: str = "CME",
    target: str = "NY4",
) -> list[NetworkRanking]:
    """Table 1: connected networks by increasing CME–NY4 latency."""
    date = on_date or scenario.snapshot_date
    with obs.span("analysis.table1", date=date.isoformat()):
        return rank_connected_networks(
            scenario.database,
            scenario.corridor,
            date,
            source=source,
            target=target,
            engine=scenario.engine(),
        )


def table2_top_networks(
    scenario: Scenario,
    on_date: dt.date | None = None,
    top_n: int = 3,
) -> list[PathTopRanking]:
    """Table 2: the fastest ``top_n`` networks per corridor path."""
    date = on_date or scenario.snapshot_date
    with obs.span("analysis.table2", date=date.isoformat()):
        return top_networks_per_path(
            scenario.database,
            scenario.corridor,
            date,
            top_n=top_n,
            engine=scenario.engine(),
        )


@dataclass(frozen=True)
class ApaRow:
    """One row of Table 3."""

    path: tuple[str, str]
    values: dict[str, int]


def table3_apa(
    scenario: Scenario,
    licensees: tuple[str, ...] = ("New Line Networks", "Webline Holdings"),
    on_date: dt.date | None = None,
) -> list[ApaRow]:
    """Table 3: per-path APA for selected networks (paper: NLN vs WH)."""
    date = on_date or scenario.snapshot_date
    engine = scenario.engine()
    with obs.span("analysis.table3", date=date.isoformat()):
        networks = {name: engine.snapshot(name, date) for name in licensees}
        rows = []
        for source, target in scenario.corridor.paths:
            rows.append(
                ApaRow(
                    path=(source, target),
                    values={
                        name: apa_percent(network, source, target)
                        for name, network in networks.items()
                    },
                )
            )
        return rows
