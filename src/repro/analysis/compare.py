"""Hybrid MW / fiber / LEO comparison across registered corridors.

Fig 5 compares the three transports over abstract ground distance; this
workload grounds the same comparison in the registry's concrete
corridors: for each scenario it measures the *best reconstructed
microwave network* on the primary path (the real, calibrated latency —
not just a stretch model) and sets it against the corridor's geodesic
c-bound, the fiber route model, and the 550/300 km LEO shell lower
bounds from :mod:`repro.leo.latency`.

The interesting output is the regime change with corridor length: on the
~1,200 km paper corridor terrestrial microwave beats everything and LEO
cannot even beat fiber; on a ~5,300 km Tokyo–Singapore corridor the LEO
bound slips under the fiber route and closes in on microwave — the
paper's §6 "bird's eye" argument, per corridor instead of per distance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.constants import SPEED_OF_LIGHT
from repro.leo.latency import fiber_latency_s, leo_lower_bound_s
from repro.metrics.rankings import rank_connected_networks
from repro.scenarios import resolve_scenario, scenario_names


@dataclass(frozen=True)
class CorridorComparison:
    """One corridor's hybrid latency row (all one-way, milliseconds)."""

    scenario: str
    source: str
    target: str
    geodesic_km: float
    cbound_ms: float
    best_licensee: str | None
    microwave_ms: float | None
    fiber_ms: float
    leo_550_ms: float
    leo_300_ms: float

    @property
    def microwave_beats_leo(self) -> bool | None:
        """Does the measured network beat the optimistic LEO bound?"""
        if self.microwave_ms is None:
            return None
        return self.microwave_ms < min(self.leo_550_ms, self.leo_300_ms)

    @property
    def leo_beats_fiber(self) -> bool:
        return min(self.leo_550_ms, self.leo_300_ms) < self.fiber_ms

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "source": self.source,
            "target": self.target,
            "geodesic_km": self.geodesic_km,
            "cbound_ms": self.cbound_ms,
            "best_licensee": self.best_licensee,
            "microwave_ms": self.microwave_ms,
            "fiber_ms": self.fiber_ms,
            "leo_550_ms": self.leo_550_ms,
            "leo_300_ms": self.leo_300_ms,
            "microwave_beats_leo": self.microwave_beats_leo,
            "leo_beats_fiber": self.leo_beats_fiber,
        }


def compare_corridor(ref: str, jobs: int = 1) -> CorridorComparison:
    """The hybrid comparison row for one scenario reference."""
    scenario = resolve_scenario(ref)
    source, target = scenario.primary_path
    distance_m = scenario.corridor.geodesic_m(source, target)
    rankings = rank_connected_networks(
        scenario.database,
        scenario.corridor,
        scenario.snapshot_date,
        source=source,
        target=target,
        engine=scenario.engine(),
        jobs=jobs,
    )
    best = rankings[0] if rankings else None
    return CorridorComparison(
        scenario=scenario.name,
        source=source,
        target=target,
        geodesic_km=distance_m / 1000.0,
        cbound_ms=distance_m / SPEED_OF_LIGHT * 1e3,
        best_licensee=best.licensee if best else None,
        microwave_ms=best.latency_ms if best else None,
        fiber_ms=fiber_latency_s(distance_m) * 1e3,
        leo_550_ms=leo_lower_bound_s(distance_m, 550_000.0) * 1e3,
        leo_300_ms=leo_lower_bound_s(distance_m, 300_000.0) * 1e3,
    )


def compare_corridors(
    refs: tuple[str, ...] | None = None, jobs: int = 1
) -> list[CorridorComparison]:
    """Hybrid rows for every requested corridor, shortest first.

    ``refs`` defaults to every *concrete* registered scenario (the
    parameterized ``synthetic`` generator needs explicit parameters, so
    it only appears when referenced).  Each scenario resolves through the
    registry cache, so repeated comparisons reuse warm engines.
    """
    if refs is None:
        refs = scenario_names(concrete_only=True)
    with obs.span("analysis.compare", corridors=len(refs), jobs=jobs):
        rows = [compare_corridor(ref, jobs=jobs) for ref in refs]
    rows.sort(key=lambda row: (row.geodesic_km, row.scenario))
    return rows
