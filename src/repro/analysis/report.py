"""Plain-text report formatting for tables and experiment output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A fixed-width text table (column widths fit the content)."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(col) for col in header]
    for row in cells:
        if len(row) != len(header):
            raise ValueError("row width does not match header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_latency_ms(value: float | None, decimals: int = 5) -> str:
    """Latency in the paper's 5-decimal-ms style; em-dash when absent."""
    if value is None:
        return "—"
    return f"{value:.{decimals}f}"
