"""Drivers for Figures 1–5."""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.core.timeline import (
    LicenseCountSeries,
    TimelinePoint,
    license_count_timeline,
    yearly_snapshot_dates,
)
from repro.leo.latency import ComparisonPoint, sweep_distances
from repro.metrics.frequencies import (
    alternate_path_frequencies_ghz,
    shortest_path_frequencies_ghz,
)
from repro.metrics.link_lengths import near_optimal_link_lengths_km
from repro.parallel.executor import chunk_spans
from repro.parallel.grid import GridSession, grid_session
from repro.synth.scenario import Scenario
from repro.viz.geojson import network_to_geojson
from repro.viz.svgmap import render_network_svg

#: Fan a licensee's dates out in contiguous chunks once the grid is this
#: dense.  Each chunk is an ascending date span, so every worker evolves
#: its snapshot cursors incrementally within the span; results are
#: concatenated per licensee, which reproduces the serial series exactly
#: (each point is a pure function of licensee and date).
_DATE_CHUNK_THRESHOLD = 16


def _fig1_task(ctx, item):
    name, dates, source, target = item
    return ctx.engine.timeline(name, dates, source=source, target=target)


def _fig2_task(ctx, item):
    name, dates = item
    return license_count_timeline(ctx.database, name, dates)


def _date_spans(dates, jobs: int) -> list[tuple[int, int]] | None:
    """Contiguous per-licensee date spans, or None to keep whole grids."""
    if jobs > 1 and len(dates) >= _DATE_CHUNK_THRESHOLD:
        return chunk_spans(len(dates), jobs)
    return None


def fig1_latency_evolution(
    scenario: Scenario,
    licensees: tuple[str, ...] | None = None,
    dates: list[dt.date] | None = None,
    source: str | None = None,
    target: str | None = None,
    jobs: int = 1,
    session: GridSession | None = None,
) -> dict[str, list[TimelinePoint]]:
    """Fig 1: primary-path latency trajectories of the featured networks.

    The licensee × date grid fans out one licensee per task when
    ``jobs > 1`` (or a ``session`` is passed); results and cache learning
    land in submission order, so output is jobs-invariant.  Dense grids
    (``--step monthly``/``weekly``) additionally split each licensee's
    dates into contiguous spans so workers evolve snapshots
    incrementally within their span; the per-licensee series is the
    concatenation of its spans, identical to the unchunked result.
    """
    licensees = licensees or scenario.featured_names
    source, target = scenario.corridor.resolve_path(source, target)
    dates = list(dates or yearly_snapshot_dates())
    with obs.span(
        "analysis.fig1", licensees=len(licensees), points=len(dates)
    ):
        if jobs == 1 and session is None:
            engine = scenario.engine()
            return {
                name: engine.timeline(name, dates, source=source, target=target)
                for name in licensees
            }
        with grid_session(scenario.engine(), jobs, session) as live:
            spans = _date_spans(dates, live.jobs)
            if spans is None:
                items = [(name, dates, source, target) for name in licensees]
                series = live.map(_fig1_task, items, label="fig1")
                return dict(zip(licensees, series))
            items = [
                (name, dates[lo:hi], source, target)
                for name in licensees
                for lo, hi in spans
            ]
            chunks = iter(live.map(_fig1_task, items, label="fig1"))
            return {
                name: [point for _ in spans for point in next(chunks)]
                for name in licensees
            }


def fig2_active_licenses(
    scenario: Scenario,
    licensees: tuple[str, ...] | None = None,
    dates: list[dt.date] | None = None,
    jobs: int = 1,
    session: GridSession | None = None,
) -> dict[str, LicenseCountSeries]:
    """Fig 2: active-license counts for the same networks.

    Counts come from each licensee's temporal index (one bisect per
    point); dense grids fan out in contiguous date spans exactly like
    :func:`fig1_latency_evolution`.
    """
    licensees = licensees or scenario.featured_names
    dates = list(dates or yearly_snapshot_dates())
    with obs.span(
        "analysis.fig2", licensees=len(licensees), points=len(dates)
    ):
        if jobs == 1 and session is None:
            return {
                name: license_count_timeline(scenario.database, name, dates)
                for name in licensees
            }
        with grid_session(scenario.engine(), jobs, session) as live:
            spans = _date_spans(dates, live.jobs)
            if spans is None:
                items = [(name, dates) for name in licensees]
                series = live.map(_fig2_task, items, label="fig2")
                return dict(zip(licensees, series))
            items = [
                (name, dates[lo:hi]) for name in licensees for lo, hi in spans
            ]
            chunks = iter(live.map(_fig2_task, items, label="fig2"))
            return {
                name: LicenseCountSeries(
                    licensee=name,
                    dates=tuple(dates),
                    counts=tuple(
                        count for _ in spans for count in next(chunks).counts
                    ),
                )
                for name in licensees
            }


@dataclass(frozen=True)
class MapArtifacts:
    """Rendered Fig-3 outputs for one snapshot."""

    licensee: str
    as_of: dt.date
    svg_path: Path | None
    geojson_path: Path | None
    tower_count: int
    link_count: int


def fig3_network_maps(
    scenario: Scenario,
    licensee: str = "New Line Networks",
    dates: tuple[dt.date, ...] = (dt.date(2016, 1, 1), dt.date(2020, 4, 1)),
    output_dir: str | Path | None = None,
) -> list[MapArtifacts]:
    """Fig 3: a network's map at two dates (SVG + GeoJSON when a
    directory is given)."""
    engine = scenario.engine()
    artifacts = []
    for date in dates:
        network = engine.snapshot(licensee, date)
        svg_path = geojson_path = None
        if output_dir is not None:
            directory = Path(output_dir)
            directory.mkdir(parents=True, exist_ok=True)
            stem = f"{licensee.lower().replace(' ', '_')}_{date.isoformat()}"
            svg_path = directory / f"{stem}.svg"
            geojson_path = directory / f"{stem}.geojson"
            render_network_svg(network, path=svg_path)
            network_to_geojson(network, path=geojson_path)
        artifacts.append(
            MapArtifacts(
                licensee=licensee,
                as_of=date,
                svg_path=svg_path,
                geojson_path=geojson_path,
                tower_count=network.tower_count,
                link_count=network.link_count,
            )
        )
    return artifacts


def fig4a_link_length_cdfs(
    scenario: Scenario,
    licensees: tuple[str, ...] = ("Webline Holdings", "New Line Networks"),
    on_date: dt.date | None = None,
    source: str | None = None,
    target: str | None = None,
) -> dict[str, list[float]]:
    """Fig 4a: link lengths (km) on near-optimal primary-path routes."""
    date = on_date or scenario.snapshot_date
    source, target = scenario.corridor.resolve_path(source, target)
    engine = scenario.engine()
    samples = {}
    for name in licensees:
        network = engine.snapshot(name, date)
        samples[name] = near_optimal_link_lengths_km(network, source, target)
    return samples


def fig4b_frequency_cdfs(
    scenario: Scenario,
    on_date: dt.date | None = None,
    source: str | None = None,
    target: str | None = None,
) -> dict[str, list[float]]:
    """Fig 4b: frequencies (GHz) on shortest paths (WH, NLN) and on NLN's
    alternate paths."""
    date = on_date or scenario.snapshot_date
    source, target = scenario.corridor.resolve_path(source, target)
    engine = scenario.engine()
    wh = engine.snapshot("Webline Holdings", date)
    nln = engine.snapshot("New Line Networks", date)
    return {
        "WH": shortest_path_frequencies_ghz(wh, source, target),
        "NLN-alternate": alternate_path_frequencies_ghz(nln, source, target),
        "NLN": shortest_path_frequencies_ghz(nln, source, target),
    }


def fig5_leo_comparison(
    distances_km: list[float] | None = None,
) -> list[ComparisonPoint]:
    """Fig 5: terrestrial MW vs LEO (550/300 km shells) vs fiber.

    The default sweep covers 250–8,000 km: the span over which terrestrial
    microwave paths exist at all (beyond that, endpoints are separated by
    oceans and the comparison is LEO vs fiber only).
    """
    if distances_km is None:
        distances_km = [250.0 * i for i in range(1, 33)]  # 250 .. 8,000 km
    return sweep_distances(distances_km)
