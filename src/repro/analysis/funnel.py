"""The §2.2 scraping funnel: 57 candidates → 29 shortlisted → 9 connected.

Replays the paper's data-collection pipeline end to end *through the
scraper*: a geographic license search within 10 km of CME, the MG/FXO
site filter, the ≥11-filings shortlist, and finally end-to-end
connectivity on the snapshot date.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

from repro import obs
from repro.constants import (
    CME_SEARCH_RADIUS_M,
    MIN_FILINGS_FOR_SHORTLIST,
    RADIO_SERVICE_MG,
    STATION_CLASS_FXO,
)
from repro.core.corridor import CorridorSpec
from repro.core.engine import CorridorEngine
from repro.parallel.grid import grid_session
from repro.uls.database import UlsDatabase
from repro.uls.portal import UlsPortal
from repro.uls.records import licenses_by_licensee
from repro.uls.scraper import UlsScraper


def _connect_task(ctx, item):
    name, on_date, source, target = item
    licenses = ctx.scraper.scrape_licensee(name)
    grouped = licenses_by_licensee(licenses)
    network = ctx.engine.snapshot_from_licenses(
        grouped[name], on_date, licensee=name
    )
    return network.is_connected(source, target)


@dataclass(frozen=True)
class FunnelResult:
    """Outcome of each funnel stage."""

    candidate_licensees: tuple[str, ...]
    shortlisted_licensees: tuple[str, ...]
    connected_licensees: tuple[str, ...]
    pages_scraped: int

    @property
    def counts(self) -> tuple[int, int, int]:
        """(candidates, shortlisted, connected) — the paper's 57/29/9."""
        return (
            len(self.candidate_licensees),
            len(self.shortlisted_licensees),
            len(self.connected_licensees),
        )


def run_scraping_funnel(
    database: UlsDatabase,
    corridor: CorridorSpec,
    on_date: dt.date,
    radius_m: float = CME_SEARCH_RADIUS_M,
    min_filings: int = MIN_FILINGS_FOR_SHORTLIST,
    source: str | None = None,
    target: str | None = None,
    engine: CorridorEngine | None = None,
    jobs: int = 1,
) -> FunnelResult:
    """Replay §2.2 through the portal + scraper.

    Stage-3 connectivity checks run through a
    :class:`~repro.core.engine.CorridorEngine` (reconstructing the
    *scraped* license records); pass ``engine`` to share its geodesic
    memo and parameterisation with other drivers.  Scraped records lose
    coordinate precision through the portal's DMS round-trip, so their
    snapshots live under content-digested cache keys — they reuse the
    engine's memo but never alias (or overwrite) the database-derived
    snapshots the ranking/timeline drivers serve.

    With ``jobs > 1``, stage 2 batches its name searches through
    :meth:`~repro.uls.scraper.UlsScraper.count_filings` and stage 3 fans
    licensees out through a grid session; worker page counts, parsed
    licenses, and engine caches merge back, so every funnel field —
    including ``pages_scraped`` — is jobs-invariant (each licensee's
    detail pages are its own, so no worker refetches another's).
    """
    source, target = corridor.resolve_path(source, target)
    if engine is None:
        engine = CorridorEngine(database, corridor)
    portal = UlsPortal(database)
    scraper = UlsScraper(portal)
    cme = corridor.site(source).point

    with obs.span("analysis.funnel", date=on_date.isoformat()):
        # Stage 1: geographic search around CME, then the site-based
        # MG/FXO filter applied to the scraped rows.
        with obs.span("analysis.funnel.search"):
            rows = scraper.geographic_search(
                cme.latitude, cme.longitude, radius_m / 1000.0
            )
            candidates = sorted(
                {
                    row["licensee_name"]
                    for row in rows
                    if row["radio_service_code"] == RADIO_SERVICE_MG
                    and row["station_class"] == STATION_CLASS_FXO
                }
            )

        # Stage 2: scrape every candidate's license list; shortlist
        # licensees with enough filings to span the corridor.
        with obs.span("analysis.funnel.shortlist", candidates=len(candidates)):
            if jobs == 1:
                shortlisted = [
                    name
                    for name in candidates
                    if len(scraper.licenses_of(name)) >= min_filings
                ]
            else:
                counts = scraper.count_filings(candidates, jobs=jobs)
                shortlisted = [
                    name
                    for name, count in zip(candidates, counts)
                    if count >= min_filings
                ]

        # Stage 3: scrape the shortlisted licensees' license details and
        # reconstruct their networks at the snapshot date.
        connected = []
        with obs.span("analysis.funnel.connect", shortlisted=len(shortlisted)):
            if jobs == 1:
                for name in shortlisted:
                    licenses = scraper.scrape_licensee(name)
                    grouped = licenses_by_licensee(licenses)
                    network = engine.snapshot_from_licenses(
                        grouped[name], on_date, licensee=name
                    )
                    if network.is_connected(source, target):
                        connected.append(name)
            else:
                items = [
                    (name, on_date, source, target) for name in shortlisted
                ]
                with grid_session(engine, jobs, scraper=scraper) as live:
                    flags = live.map(_connect_task, items, label="funnel")
                connected = [
                    name for name, flag in zip(shortlisted, flags) if flag
                ]

    # All portal traffic flows through the scraper, so its absorbed page
    # counts equal portal.page_requests at jobs=1 and additionally include
    # worker pages when fanned out.
    pages_scraped = scraper.stats.search_pages + scraper.stats.detail_pages
    return FunnelResult(
        candidate_licensees=tuple(candidates),
        shortlisted_licensees=tuple(shortlisted),
        connected_licensees=tuple(connected),
        pages_scraped=pages_scraped,
    )
