"""Operating-frequency distributions (Fig 4b).

    "Fig 4(b) shows the frequencies used between CME and NY4 for MW links
    on the shortest path for each network. ... we also show the
    frequencies on alternate paths for NLN, using the same alternate paths
    as above."

Frequencies are reported in GHz.  Each MW link contributes every frequency
licensed on it (a link licensed on two channels contributes two samples),
matching the paper's per-frequency CDF.
"""

from __future__ import annotations

from repro.constants import APA_SLACK_FACTOR
from repro.core.network import HftNetwork
from repro.core.routing import (
    alternate_edges,
    iterate_microwave_edges,
)
from repro.metrics.apa import latency_bound_s
from repro.metrics.cdf import EmpiricalCdf


def shortest_path_frequencies_ghz(
    network: HftNetwork, source: str, target: str
) -> list[float]:
    """All licensed frequencies (GHz) on the lowest-latency route's MW links."""
    route = network.lowest_latency_route(source, target)
    if route is None:
        return []
    frequencies: list[float] = []
    for link_frequencies in network.route_frequencies_mhz(route):
        frequencies.extend(freq / 1000.0 for freq in link_frequencies)
    return sorted(frequencies)


def alternate_path_frequencies_ghz(
    network: HftNetwork,
    source: str,
    target: str,
    slack: float = APA_SLACK_FACTOR,
) -> list[float]:
    """Frequencies (GHz) on near-optimal links that are off the shortest path.

    This is the paper's "NLN-alternate" series: the alternate paths are the
    same near-optimal paths used for the link-length analysis.
    """
    route = network.lowest_latency_route(source, target)
    if route is None:
        return []
    bound = latency_bound_s(network, source, target, slack)
    graph = network.graph
    edge_keys = alternate_edges(graph, source, target, bound, route.nodes)
    frequencies: list[float] = []
    for _, _, data in iterate_microwave_edges(graph, edge_keys):
        frequencies.extend(freq / 1000.0 for freq in data["frequencies_mhz"])
    return sorted(frequencies)


def frequency_cdf(frequencies_ghz: list[float]) -> EmpiricalCdf:
    """Empirical CDF over a frequency sample (Fig 4b's series)."""
    if not frequencies_ghz:
        raise ValueError("no frequencies to analyse")
    return EmpiricalCdf(frequencies_ghz)


def fraction_below_ghz(frequencies_ghz: list[float], threshold_ghz: float) -> float:
    """Fraction of frequencies strictly below a threshold.

    The paper's headline statistic: ">94% of [WH's] frequencies are under
    7 GHz"; "at least 18% of [NLN-alternate] frequencies lie in the 6 GHz
    band".
    """
    return frequency_cdf(frequencies_ghz).fraction_below(threshold_ghz)
