"""Alternate path availability (APA) — the paper's redundancy metric (§5).

    "For each network, we find the fraction of links that can be removed
    such that the latency of the remaining network is not more than 5%
    greater than the c-speed latency along the geodesic."

The metric is adapted from Gvozdiev et al. (SIGCOMM 2018).  We evaluate it
over the microwave links of the network's lowest-latency route (the links
whose removal actually threatens the end-to-end service); a strict chain
scores 0, a fully bypassed trunk scores 1.  Networks whose intact latency
already exceeds the bound score 0 — consistent with Table 1, where every
network slower than 1.05× the geodesic c-latency reports an APA of 0.
"""

from __future__ import annotations

import networkx as nx

from repro.constants import APA_SLACK_FACTOR
from repro.core.latency import LatencyModel
from repro.core.network import HftNetwork
from repro.geodesy import geodesic_distance


def latency_bound_s(
    network: HftNetwork, source: str, target: str, slack: float = APA_SLACK_FACTOR
) -> float:
    """The APA latency bound: slack × (geodesic distance / c)."""
    if slack <= 0.0:
        raise ValueError("slack must be positive")
    distance = geodesic_distance(
        network.data_centers[source].point, network.data_centers[target].point
    )
    model: LatencyModel = network.latency_model
    return slack * model.geodesic_latency_s(distance)


def alternate_path_availability(
    network: HftNetwork,
    source: str,
    target: str,
    slack: float = APA_SLACK_FACTOR,
    scope: str = "route",
) -> float:
    """The fraction of removable links, in [0, 1].

    ``scope="route"`` (default) considers the microwave links on the
    lowest-latency route; ``scope="network"`` considers every microwave
    link (spur links then count as trivially removable, which rewards
    disconnected decorations — kept only for sensitivity analysis).
    """
    if scope not in ("route", "network"):
        raise ValueError(f"unknown scope: {scope!r}")
    route = network.lowest_latency_route(source, target)
    if route is None:
        return 0.0
    bound = latency_bound_s(network, source, target, slack)
    if route.latency_s > bound:
        return 0.0

    graph = network.graph
    if scope == "route":
        candidates = [
            (u, v)
            for u, v in zip(route.nodes, route.nodes[1:])
            if graph.edges[u, v]["medium"] == "microwave"
        ]
    else:
        candidates = [
            (u, v)
            for u, v, data in graph.edges(data=True)
            if data["medium"] == "microwave"
        ]
    if not candidates:
        return 0.0

    work = graph.copy()
    removable = 0
    for u, v in candidates:
        data = work.edges[u, v]
        work.remove_edge(u, v)
        try:
            latency = nx.dijkstra_path_length(work, source, target, weight="latency_s")
            if latency <= bound:
                removable += 1
        except nx.NetworkXNoPath:
            pass
        work.add_edge(u, v, **data)
    return removable / len(candidates)


def apa_percent(
    network: HftNetwork,
    source: str,
    target: str,
    slack: float = APA_SLACK_FACTOR,
    scope: str = "route",
) -> int:
    """APA as the whole percentage the paper's tables print."""
    return round(
        100.0 * alternate_path_availability(network, source, target, slack, scope)
    )
