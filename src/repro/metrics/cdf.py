"""Empirical CDF utilities for the Fig 4 distribution plots."""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Sequence


class EmpiricalCdf:
    """An empirical cumulative distribution over a finite sample.

    ``F(x)`` is the fraction of samples ≤ x (right-continuous step
    function).  Quantiles use the inverse-CDF convention: ``quantile(q)``
    is the smallest sample value v with F(v) ≥ q.
    """

    def __init__(self, values: Iterable[float]) -> None:
        self._values = sorted(float(v) for v in values)
        if not self._values:
            raise ValueError("empirical CDF needs at least one value")
        if any(math.isnan(v) for v in self._values):
            raise ValueError("NaN values are not allowed")

    @property
    def n(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[float]:
        """The sorted sample."""
        return list(self._values)

    def __call__(self, x: float) -> float:
        """F(x): fraction of samples ≤ x."""
        return bisect.bisect_right(self._values, x) / len(self._values)

    def quantile(self, q: float) -> float:
        """Smallest sample value v with F(v) ≥ q, for q in (0, 1]."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        index = math.ceil(q * len(self._values)) - 1
        return self._values[max(0, index)]

    @property
    def median(self) -> float:
        """The 0.5 quantile (lower median for even n)."""
        return self.quantile(0.5)

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below ``threshold``."""
        return bisect.bisect_left(self._values, threshold) / len(self._values)

    def fraction_at_most(self, threshold: float) -> float:
        """Fraction of samples ≤ ``threshold`` (alias of calling the CDF)."""
        return self(threshold)

    def step_points(self) -> list[tuple[float, float]]:
        """(x, F(x)) pairs at each distinct sample value — plot-ready."""
        points = []
        n = len(self._values)
        previous = None
        for index, value in enumerate(self._values, start=1):
            if value != previous:
                points.append((value, index / n))
                previous = value
            else:
                points[-1] = (value, index / n)
        return points


def cdf_series(values: Sequence[float]) -> list[tuple[float, float]]:
    """Shorthand: step points of the empirical CDF of ``values``."""
    return EmpiricalCdf(values).step_points()
