"""Link-length distributions on near-optimal paths (Fig 4a).

    "For each network, we compute all loop-free paths between CME and NY4
    that achieve latency within 5% of the c-speed latency along the
    geodesic.  Fig 4(a) plots the CDFs of tower-to-tower link lengths for
    all MW links on such paths."
"""

from __future__ import annotations

from repro.constants import APA_SLACK_FACTOR
from repro.core.network import HftNetwork
from repro.core.routing import (
    edges_within_latency_bound,
    enumerate_paths_within_bound,
    iterate_microwave_edges,
)
from repro.metrics.apa import latency_bound_s
from repro.metrics.cdf import EmpiricalCdf


def near_optimal_link_lengths_km(
    network: HftNetwork,
    source: str,
    target: str,
    slack: float = APA_SLACK_FACTOR,
    method: str = "edges",
    max_paths: int = 100_000,
) -> list[float]:
    """Lengths (km) of MW links on near-optimal source→target paths.

    ``method="edges"`` (default) uses the polynomial-time per-edge
    near-optimality test; ``method="enumerate"`` enumerates the loop-free
    paths explicitly and unions their edges — exact but exponential in the
    bypass count, useful for validating the default on small networks.
    """
    bound = latency_bound_s(network, source, target, slack)
    graph = network.graph
    if method == "edges":
        edge_keys = edges_within_latency_bound(graph, source, target, bound)
    elif method == "enumerate":
        paths = enumerate_paths_within_bound(graph, source, target, bound, max_paths)
        edge_keys = set()
        for path in paths:
            edge_keys.update(
                frozenset((u, v)) for u, v in zip(path.nodes, path.nodes[1:])
            )
    else:
        raise ValueError(f"unknown method: {method!r}")
    return [
        data["length_m"] / 1000.0
        for _, _, data in iterate_microwave_edges(graph, edge_keys)
    ]


def link_length_cdf(
    network: HftNetwork,
    source: str,
    target: str,
    slack: float = APA_SLACK_FACTOR,
) -> EmpiricalCdf:
    """Empirical CDF of near-optimal link lengths (km); Fig 4a's series."""
    lengths = near_optimal_link_lengths_km(network, source, target, slack)
    if not lengths:
        raise ValueError(
            f"{network.licensee} has no near-optimal {source}-{target} links"
        )
    return EmpiricalCdf(lengths)


def median_link_length_km(
    network: HftNetwork, source: str, target: str, slack: float = APA_SLACK_FACTOR
) -> float:
    """The median the paper quotes (WH 36 km vs NLN 48.5 km)."""
    return link_length_cdf(network, source, target, slack).median
