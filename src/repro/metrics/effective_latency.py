"""Weather-weighted effective latency (quantifying §5's thesis).

Table 1 ranks networks by fair-weather latency; §5 argues the ranking
inverts in bad weather.  This module makes that precise with two views:

* **climatic**: each link is up/down independently with its ITU-derived
  annual availability; the *route availability* is the probability the
  intact shortest route survives, and redundancy raises the probability
  that *some* near-optimal route survives;
* **empirical**: latency across a seeded storm ensemble, summarised as
  percentiles conditional on connectivity plus an outage fraction — the
  distribution a trading firm actually experiences over a year.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.network import HftNetwork
from repro.geodesy import GeoPoint
from repro.radio.availability import link_availability
from repro.radio.budget import LinkBudget
from repro.synth.weather import Storm, random_storm, storm_latency_ms


def route_availability(
    network: HftNetwork,
    source: str,
    target: str,
    budget: LinkBudget | None = None,
    rain_rate_001_mm_h: float = 42.0,
) -> float:
    """Probability the intact lowest-latency route is fully up.

    Links fail independently with their ITU annual unavailability; each
    link is evaluated at its lowest licensed frequency.  Serial chains
    multiply availabilities, so long 11/18 GHz chains hurt fast.
    """
    route = network.lowest_latency_route(source, target)
    if route is None:
        return 0.0
    budget = budget or LinkBudget()
    probability = 1.0
    graph = network.graph
    for u, v in zip(route.nodes, route.nodes[1:]):
        data = graph.edges[u, v]
        if data["medium"] != "microwave":
            continue
        frequencies = data["frequencies_mhz"]
        frequency_ghz = (min(frequencies) / 1000.0) if frequencies else 11.0
        probability *= link_availability(
            frequency_ghz, data["length_m"] / 1000.0, budget, rain_rate_001_mm_h
        )
    return probability


@dataclass(frozen=True)
class WeatherLatencyProfile:
    """Latency distribution of one network over a storm ensemble."""

    licensee: str
    n_storms: int
    outage_fraction: float
    fair_weather_ms: float
    median_ms: float | None
    p90_ms: float | None
    worst_ms: float | None

    @property
    def degradation_p90_us(self) -> float | None:
        """p90 latency penalty vs fair weather, microseconds."""
        if self.p90_ms is None:
            return None
        return (self.p90_ms - self.fair_weather_ms) * 1e3


def weather_latency_profile(
    network: HftNetwork,
    source: str,
    target: str,
    corridor_endpoints: tuple[GeoPoint, GeoPoint],
    n_storms: int = 40,
    seed_base: int = 0,
    budget: LinkBudget | None = None,
    peak_mm_h: tuple[float, float] = (60.0, 170.0),
) -> WeatherLatencyProfile:
    """Empirical latency profile across a seeded storm ensemble.

    Percentiles are conditional on connectivity; the outage fraction
    reports how often the network is down entirely.
    """
    if n_storms < 1:
        raise ValueError("need at least one storm")
    fair = network.lowest_latency_route(source, target)
    if fair is None:
        raise ValueError(f"{network.licensee} has no fair-weather route")
    samples: list[float] = []
    outages = 0
    for seed in range(n_storms):
        storm = random_storm(
            seed_base + seed, corridor_endpoints, n_cells=4, peak_mm_h=peak_mm_h
        )
        latency = storm_latency_ms(network, storm, source, target, budget)
        if latency is None:
            outages += 1
        else:
            samples.append(latency)
    samples.sort()

    def percentile(q: float) -> float | None:
        if not samples:
            return None
        index = min(len(samples) - 1, int(q * len(samples)))
        return samples[index]

    return WeatherLatencyProfile(
        licensee=network.licensee,
        n_storms=n_storms,
        outage_fraction=outages / n_storms,
        fair_weather_ms=fair.latency_ms,
        median_ms=percentile(0.5),
        p90_ms=percentile(0.9),
        worst_ms=samples[-1] if samples else None,
    )


def storm_winner(
    profiles: dict[str, "WeatherLatencyProfile"],
) -> str:
    """The network a reliability-minded buyer picks: lowest outage
    fraction, then lowest p90 latency."""
    if not profiles:
        raise ValueError("no profiles to compare")

    def key(name: str):
        profile = profiles[name]
        return (
            profile.outage_fraction,
            profile.p90_ms if profile.p90_ms is not None else float("inf"),
        )

    return min(profiles, key=key)
