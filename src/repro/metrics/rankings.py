"""Per-path network rankings (Tables 1 and 2).

Table 1 lists every network with end-to-end CME–NY4 connectivity, ordered
by estimated one-way latency, with APA and the tower count of the lowest-
latency route.  Table 2 extracts the top-3 per corridor path.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

from repro.constants import APA_SLACK_FACTOR
from repro.core.corridor import CorridorSpec
from repro.core.engine import CorridorEngine
from repro.core.network import HftNetwork, Route
from repro.core.reconstruction import NetworkReconstructor
from repro.metrics.apa import apa_percent
from repro.parallel.grid import GridSession, grid_session
from repro.uls.database import UlsDatabase


@dataclass(frozen=True)
class NetworkRanking:
    """One row of Table 1: a connected network's headline numbers."""

    licensee: str
    latency_ms: float
    apa_percent: int
    tower_count: int
    route: Route

    def as_row(self) -> tuple[str, float, int, int]:
        return (self.licensee, self.latency_ms, self.apa_percent, self.tower_count)


def _rank_task(ctx, item):
    name, on_date, source, target, slack = item
    route = ctx.engine.route(name, on_date, source, target)
    if route is None:
        return None
    network = ctx.engine.snapshot(name, on_date)
    return NetworkRanking(
        licensee=name,
        latency_ms=route.latency_ms,
        apa_percent=apa_percent(network, source, target, slack),
        tower_count=route.tower_count,
        route=route,
    )


def rank_connected_networks(
    database: UlsDatabase,
    corridor: CorridorSpec,
    on_date: dt.date,
    source: str | None = None,
    target: str | None = None,
    licensees: list[str] | None = None,
    slack: float = APA_SLACK_FACTOR,
    reconstructor: NetworkReconstructor | None = None,
    engine: CorridorEngine | None = None,
    jobs: int = 1,
    session: GridSession | None = None,
) -> list[NetworkRanking]:
    """All networks connected source↔target, by increasing latency.

    ``licensees`` restricts the candidate set (the paper applies this to
    its 29 shortlisted licensees); by default every licensee in the
    database is considered.  Pass ``engine`` to share snapshot/route
    caches across rankings (e.g. over a date grid); ``reconstructor``
    carries non-default reconstruction parameters and gets a private
    engine.  With ``jobs > 1`` (or a ``session``) the per-licensee work
    fans out; disconnected licensees drop out and the latency sort runs
    parent-side, so the ranking is jobs-invariant.  ``source`` /
    ``target`` default to the corridor's primary path.
    """
    source, target = corridor.resolve_path(source, target)
    if engine is None:
        engine = CorridorEngine(database, corridor, reconstructor=reconstructor)
    elif reconstructor is not None:
        raise ValueError("pass either engine or reconstructor, not both")
    names = licensees if licensees is not None else database.licensee_names()
    if jobs == 1 and session is None:
        rankings: list[NetworkRanking] = []
        for name in names:
            route = engine.route(name, on_date, source, target)
            if route is None:
                continue
            network = engine.snapshot(name, on_date)
            rankings.append(
                NetworkRanking(
                    licensee=name,
                    latency_ms=route.latency_ms,
                    apa_percent=apa_percent(network, source, target, slack),
                    tower_count=route.tower_count,
                    route=route,
                )
            )
    else:
        items = [(name, on_date, source, target, slack) for name in names]
        with grid_session(engine, jobs, session) as live:
            rankings = [
                ranking
                for ranking in live.map(_rank_task, items, label="rankings")
                if ranking is not None
            ]
    rankings.sort(key=lambda ranking: ranking.latency_ms)
    return rankings


@dataclass(frozen=True)
class PathTopRanking:
    """One row of Table 2: the fastest networks on one corridor path."""

    source: str
    target: str
    geodesic_km: float
    top: tuple[NetworkRanking, ...]


def top_networks_per_path(
    database: UlsDatabase,
    corridor: CorridorSpec,
    on_date: dt.date,
    top_n: int = 3,
    licensees: list[str] | None = None,
    reconstructor: NetworkReconstructor | None = None,
    engine: CorridorEngine | None = None,
    jobs: int = 1,
    session: GridSession | None = None,
) -> list[PathTopRanking]:
    """Table 2: the ``top_n`` fastest networks for every corridor path.

    One engine serves all paths, so each licensee's network is stitched
    once and only re-routed per (source, target) pair.  ``jobs`` /
    ``session`` fan the per-licensee ranking work out within each path.
    """
    if engine is None:
        engine = CorridorEngine(database, corridor, reconstructor=reconstructor)
    elif reconstructor is not None:
        raise ValueError("pass either engine or reconstructor, not both")
    if jobs == 1 and session is None:
        return _top_networks_loop(
            database, corridor, on_date, top_n, licensees, engine, 1, None
        )
    # One session (and one worker pool) serves every path's fan-out.
    with grid_session(engine, jobs, session) as live:
        return _top_networks_loop(
            database, corridor, on_date, top_n, licensees, engine, jobs, live
        )


def _top_networks_loop(
    database, corridor, on_date, top_n, licensees, engine, jobs, session
):
    results = []
    for source, target in corridor.paths:
        rankings = rank_connected_networks(
            database,
            corridor,
            on_date,
            source=source,
            target=target,
            licensees=licensees,
            engine=engine,
            jobs=jobs,
            session=session,
        )
        results.append(
            PathTopRanking(
                source=source,
                target=target,
                geodesic_km=corridor.geodesic_m(source, target) / 1000.0,
                top=tuple(rankings[:top_n]),
            )
        )
    return results


def latency_gap_us(first: NetworkRanking, second: NetworkRanking) -> float:
    """Latency gap between two ranked networks, microseconds.

    The paper quotes these gaps (e.g. NLN leads PB by ~0.4 µs on CME–NY4).
    """
    return (second.latency_ms - first.latency_ms) * 1000.0
