"""Network design metrics from the paper's analyses (§3, §5).

* :mod:`repro.metrics.cdf` — empirical distribution utilities used by the
  Fig 4 plots.
* :mod:`repro.metrics.apa` — alternate path availability (Table 1/3).
* :mod:`repro.metrics.link_lengths` — link-length distributions on
  near-optimal paths (Fig 4a).
* :mod:`repro.metrics.frequencies` — operating-frequency distributions on
  shortest and alternate paths (Fig 4b).
* :mod:`repro.metrics.rankings` — per-path latency rankings (Tables 1/2).
* :mod:`repro.metrics.effective_latency` — weather-weighted effective
  latency and route availability (the §5 thesis, quantified).
"""

from repro.metrics.apa import alternate_path_availability
from repro.metrics.effective_latency import (
    WeatherLatencyProfile,
    route_availability,
    weather_latency_profile,
)
from repro.metrics.cdf import EmpiricalCdf
from repro.metrics.frequencies import (
    alternate_path_frequencies_ghz,
    shortest_path_frequencies_ghz,
)
from repro.metrics.link_lengths import near_optimal_link_lengths_km
from repro.metrics.rankings import (
    NetworkRanking,
    rank_connected_networks,
    top_networks_per_path,
)

__all__ = [
    "alternate_path_availability",
    "WeatherLatencyProfile",
    "route_availability",
    "weather_latency_profile",
    "EmpiricalCdf",
    "alternate_path_frequencies_ghz",
    "shortest_path_frequencies_ghz",
    "near_optimal_link_lengths_km",
    "NetworkRanking",
    "rank_connected_networks",
    "top_networks_per_path",
]
