"""Command-line interface: ``hftnetview`` (or ``python -m repro``).

Subcommands mirror the tool's workflow:

* ``funnel``    — replay the §2.2 scraping funnel (57 → 29 → 9);
* ``table1``    — connected networks ranked by CME–NY4 latency;
* ``table2``    — top-3 networks per corridor path;
* ``table3``    — per-path APA for NLN vs WH;
* ``timeline``  — Fig 1/2 series for the featured networks;
* ``export``    — write a network's YAML / GeoJSON / SVG snapshot;
* ``leo``       — the Fig 5 MW vs LEO vs fiber sweep;
* ``compare``   — hybrid MW/fiber/LEO table across registered corridors;
* ``entities``  — resolve co-owned licensees (§6 future work);
* ``weather``   — effective latency profiles under a storm ensemble;
* ``stability`` — ranking flips under per-tower overhead uncertainty;
* ``design``    — design a corridor network under a site budget (§6);
* ``diff``      — what changed on the corridor between two dates;
* ``search``    — geographic license search (the §2.1 portal query);
* ``serve``     — run the corridor analytics HTTP service (repro.serve);
* ``loadgen``   — replay a seeded load profile against the service;
* ``cache``     — inspect or maintain the on-disk cache store (repro.store);
* ``lint``      — run the project's static-analysis rules (repro.lint).

Analysis commands default to the calibrated ``paper2020`` scenario;
``--scenario NAME[:k=v,...]`` selects any registered scenario
(``europe2020``, ``tokyo-singapore``, parameterized ``synthetic:...`` —
see :mod:`repro.scenarios`).
``table1``/``table3``/``timeline``/``search`` accept
``--format json``, emitting the exact canonical payload the serve
endpoints return (parity is pinned in ``tests/test_serve_parity.py``).
"""

from __future__ import annotations

import argparse
import datetime as dt
import os
import sys
from pathlib import Path

from repro.analysis.figures import (
    fig1_latency_evolution,
    fig2_active_licenses,
    fig5_leo_comparison,
)
from repro.analysis.funnel import run_scraping_funnel
from repro.analysis.report import format_latency_ms, format_table
from repro.analysis.tables import (
    table1_connected_networks,
    table2_top_networks,
    table3_apa,
)
from repro.core.yamlio import network_to_yaml
from repro.synth.scenario import Scenario
from repro.viz.geojson import network_to_geojson
from repro.viz.svgmap import render_network_svg


def _parse_date(text: str) -> dt.date:
    return dt.date.fromisoformat(text)


def _scenario(args: argparse.Namespace) -> Scenario:
    """Resolve the subcommand's ``--scenario`` reference.

    Every subcommand routes through this one resolver; the registry
    caches by canonical reference, so repeated calls (the command body,
    ``--cache-stats``, in-process test invocations) share one scenario
    and one warm default engine.
    """
    from repro.scenarios import resolve_scenario

    return resolve_scenario(getattr(args, "scenario", None) or "paper2020")


def _cmd_funnel(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    source, target = scenario.primary_path
    result = run_scraping_funnel(
        scenario.database,
        scenario.corridor,
        args.date or scenario.snapshot_date,
        engine=scenario.engine(),
        jobs=args.jobs,
    )
    candidates, shortlisted, connected = result.counts
    print(f"candidate licensees: {candidates}")
    print(f"shortlisted (>= 11 filings): {shortlisted}")
    print(f"connected {source}-{target}: {connected}")
    print(f"portal pages scraped: {result.pages_scraped}")
    for name in result.connected_licensees:
        print(f"  - {name}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    if args.format == "json":
        from repro.serve.payloads import rankings_payload, render_payload

        payload = rankings_payload(
            scenario, scenario.engine(), args.date or scenario.snapshot_date
        )
        print(render_payload(payload))
        return 0
    rankings = table1_connected_networks(scenario, args.date, jobs=args.jobs)
    rows = [
        (r.licensee, format_latency_ms(r.latency_ms), r.apa_percent, r.tower_count)
        for r in rankings
    ]
    source, target = scenario.primary_path
    print(
        format_table(
            ("Licensee", "Latency (ms)", "APA (%)", "#Towers"),
            rows,
            title=f"Connected networks, {source}-{target}",
        )
    )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    rows = []
    for path_ranking in table2_top_networks(scenario, args.date, jobs=args.jobs):
        for rank, entry in enumerate(path_ranking.top, start=1):
            rows.append(
                (
                    f"{path_ranking.source}-{path_ranking.target}",
                    f"{path_ranking.geodesic_km:.0f}",
                    rank,
                    entry.licensee,
                    format_latency_ms(entry.latency_ms),
                )
            )
    print(
        format_table(
            ("Path", "Geodesic (km)", "Rank", "Licensee", "Latency (ms)"), rows
        )
    )
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    if args.format == "json":
        from repro.serve.payloads import apa_payload, render_payload

        payload = apa_payload(
            scenario, scenario.engine(), args.date or scenario.snapshot_date
        )
        print(render_payload(payload))
        return 0
    apa_rows = table3_apa(scenario, on_date=args.date, jobs=args.jobs)
    names = list(apa_rows[0].values)
    rows = [
        (f"{row.path[0]}-{row.path[1]}", *(f"{row.values[n]}%" for n in names))
        for row in apa_rows
    ]
    print(format_table(("Path", *names), rows, title="Alternate path availability"))
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.core.timeline import dense_date_grid

    scenario = _scenario(args)
    if args.format == "json":
        from repro.serve.payloads import render_payload, timeline_payload

        payload = timeline_payload(scenario, scenario.engine(), args.step)
        print(render_payload(payload))
        return 0
    dates = dense_date_grid(args.step) if args.step != "paper" else None
    if args.jobs == 1:
        latencies = fig1_latency_evolution(scenario, dates=dates)
        counts = fig2_active_licenses(scenario, dates=dates)
    else:
        from repro.parallel import GridSession

        # One session (one pool, one set of merged caches) serves both
        # figure grids.
        with GridSession(
            scenario.engine(), args.jobs, scenario=scenario.name
        ) as session:
            latencies = fig1_latency_evolution(
                scenario, dates=dates, session=session
            )
            counts = fig2_active_licenses(scenario, dates=dates, session=session)
    dates = next(iter(counts.values())).dates
    header = ("Licensee", *(d.isoformat() for d in dates))
    latency_rows = [
        (name, *(format_latency_ms(p.latency_ms, 4) for p in points))
        for name, points in latencies.items()
    ]
    count_rows = [
        (name, *(str(c) for c in series.counts)) for name, series in counts.items()
    ]
    source, target = scenario.primary_path
    print(
        format_table(
            header, latency_rows, title=f"Fig 1: latency (ms), {source}-{target}"
        )
    )
    print()
    print(format_table(header, count_rows, title="Fig 2: active licenses"))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    date = args.date or scenario.snapshot_date
    if args.licensee not in scenario.database.licensee_names():
        print(f"unknown licensee: {args.licensee!r}", file=sys.stderr)
        return 2
    network = scenario.engine().snapshot(args.licensee, date)
    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    stem = f"{args.licensee.lower().replace(' ', '_')}_{date.isoformat()}"
    network_to_yaml(network, out / f"{stem}.yaml")
    network_to_geojson(network, out / f"{stem}.geojson")
    render_network_svg(network, out / f"{stem}.svg", highlight_route=scenario.primary_path)
    print(f"wrote {stem}.yaml / .geojson / .svg to {out}")
    return 0


def _cmd_leo(args: argparse.Namespace) -> int:
    points = fig5_leo_comparison()
    rows = [
        (
            f"{p.distance_km:.0f}",
            f"{p.microwave_ms:.3f}",
            f"{p.leo_550_ms:.3f}",
            f"{p.leo_300_ms:.3f}",
            f"{p.fiber_ms:.3f}",
        )
        for p in points
        if p.distance_km % 1000 == 0 or args.full
    ]
    print(
        format_table(
            ("km", "MW (ms)", "LEO 550 (ms)", "LEO 300 (ms)", "fiber (ms)"),
            rows,
            title="Fig 5: terrestrial MW vs LEO vs fiber (one-way)",
        )
    )
    return 0


def _cmd_entities(args: argparse.Namespace) -> int:
    from repro.analysis.entities import resolve_entities

    scenario = _scenario(args)
    source, target = scenario.primary_path
    resolved = resolve_entities(
        scenario.database,
        scenario.corridor,
        args.date or scenario.snapshot_date,
        engine=scenario.engine(),
    )
    if not resolved:
        print("no co-owned licensee groups found")
        return 0
    rows = [
        (
            entity.domain,
            " + ".join(entity.licensees),
            format_latency_ms(entity.analysis.joint_latency_ms),
        )
        for entity in resolved
    ]
    print(
        format_table(
            ("Shared domain", "Licensees", f"Joint {source}-{target} (ms)"),
            rows,
            title="Resolved entities (shared domain + complementary links)",
        )
    )
    return 0


def _cmd_weather(args: argparse.Namespace) -> int:
    from repro.metrics.effective_latency import weather_latency_profile

    scenario = _scenario(args)
    date = args.date or scenario.snapshot_date
    engine = scenario.engine()
    source, target = scenario.primary_path
    corridor = (
        scenario.corridor.site(source).point,
        scenario.corridor.site(target).point,
    )
    rows = []
    for name in scenario.spotlight_names:
        network = engine.snapshot(name, date)
        profile = weather_latency_profile(
            network, source, target, corridor, n_storms=args.storms
        )
        rows.append(
            (
                name,
                format_latency_ms(profile.fair_weather_ms),
                format_latency_ms(profile.median_ms),
                format_latency_ms(profile.p90_ms),
                f"{profile.outage_fraction:.0%}",
            )
        )
    print(
        format_table(
            ("Network", "fair (ms)", "storm p50", "storm p90", "outage"),
            rows,
            title=f"Effective latency over {args.storms} seeded storms",
        )
    )
    return 0


def _cmd_stability(args: argparse.Namespace) -> int:
    from repro.analysis.stability import ranking_stability

    scenario = _scenario(args)
    report = ranking_stability(scenario, max_overhead_us=args.max_overhead)
    print(f"order at 0 overhead:   {' > '.join(report.order_at_zero[:4])} ...")
    print(
        f"order at {args.max_overhead:g} us/tower: "
        f"{' > '.join(report.order_at_max[:4])} ..."
    )
    if report.stable:
        print("no ranking flips in range")
        return 0
    print(
        format_table(
            ("Faster at 0", "Overtaken by", "crossover (us/tower)"),
            [
                (flip.faster_at_zero, flip.slower_at_zero, f"{flip.crossover_us:.2f}")
                for flip in report.flips
            ],
            title="Ranking flips",
        )
    )
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.design.evaluate import (
        NetworkDesign,
        corridor_endpoints,
        evaluate_design,
        latency_lower_bound_ms,
    )
    from repro.design.redundancy import augment_with_bypasses
    from repro.design.sites import CandidateSite, generate_site_pool
    from repro.design.trunk import DesignError, design_trunk
    from repro.geodesy.path import offset_point

    scenario = _scenario(args)
    west_site = scenario.corridor.west
    east_site = scenario.corridor.east[0]
    west_pt, east_pt = west_site.point, east_site.point
    pool = generate_site_pool(west_pt, east_pt, n_sites=400, seed=args.seed)
    west_gw = CandidateSite(
        "gw-west", offset_point(west_pt, east_pt, 0.0008, 0.0), 3.0, 0.0
    )
    east_gw = CandidateSite(
        "gw-east", offset_point(west_pt, east_pt, 0.9992, 0.0), 3.0, 0.0
    )
    try:
        trunk = design_trunk(pool, west_gw, east_gw, budget=args.trunk_budget)
    except DesignError as error:
        print(f"design infeasible: {error}", file=sys.stderr)
        return 2
    bypasses = tuple(
        augment_with_bypasses(trunk, pool, budget=args.bypass_budget)
    )
    west, east = corridor_endpoints(west_pt, east_pt)
    report = evaluate_design(
        NetworkDesign(trunk=trunk, bypasses=bypasses, west=west, east=east)
    )
    bound = latency_lower_bound_ms(west_pt, east_pt)
    print(
        format_table(
            ("Metric", "Value"),
            [
                ("latency", f"{report.latency_ms:.5f} ms (c-bound {bound:.5f})"),
                ("APA", f"{report.apa:.0%}"),
                ("storm survival", f"{report.storm_survival:.0%}"),
                ("towers on path", report.tower_count),
                ("bypass towers", len(bypasses)),
                ("total annual cost", f"{report.total_cost:.1f}"),
            ],
            title=f"Designed {west_site.name}-{east_site.name} network",
        )
    )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.analysis.monitor import diff_corridor

    scenario = _scenario(args)
    diff = diff_corridor(
        scenario.database,
        scenario.corridor,
        args.start,
        args.end,
        licensees=list(scenario.featured_names),
        engine=scenario.engine(),
    )
    print(
        f"{diff.start} -> {diff.end}: {diff.grants} grants, "
        f"{diff.cancellations} cancellations, {diff.terminations} terminations"
    )
    if diff.new_licensees:
        print("new licensees: " + ", ".join(diff.new_licensees))
    if diff.newly_connected:
        print("newly connected: " + ", ".join(diff.newly_connected))
    if diff.newly_disconnected:
        print("newly disconnected: " + ", ".join(diff.newly_disconnected))
    movers = diff.movers
    if movers:
        print(
            format_table(
                ("Network", "before (ms)", "after (ms)", "delta (us)"),
                [
                    (
                        change.licensee,
                        format_latency_ms(change.before_ms),
                        format_latency_ms(change.after_ms),
                        f"{change.delta_us:+.2f}",
                    )
                    for change in movers
                ],
                title="Latency movers",
            )
        )
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.serve.payloads import render_payload, search_payload

    scenario = _scenario(args)
    payload = search_payload(
        scenario, args.lat, args.lon, args.radius_m, args.active_on
    )
    if args.format == "json":
        print(render_payload(payload))
        return 0
    rows = [
        (
            row["license_id"],
            row["callsign"],
            row["licensee"],
            row["radio_service"],
            row["station_class"],
        )
        for row in payload["results"]
    ]
    print(
        format_table(
            ("License", "Callsign", "Licensee", "Service", "Class"),
            rows,
            title=f"Licenses within {payload['radius_m']:.0f} m of "
            f"({payload['center']['latitude']:.4f}, "
            f"{payload['center']['longitude']:.4f})",
        )
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """``cache {stat,gc,clear}`` — inspect / bound / empty the store."""
    import time

    from repro.store import CacheStore

    store = CacheStore(args.cache_dir)
    if args.action == "stat":
        entries = store.stat()
        rows = [
            (
                entry.fingerprint[:16],
                f"{entry.size_bytes:,}",
                dt.datetime.fromtimestamp(
                    entry.mtime_s, tz=dt.timezone.utc
                ).strftime("%Y-%m-%d %H:%M:%S"),
            )
            for entry in entries
        ]
        print(
            format_table(
                ("Fingerprint", "Bytes", "Modified (UTC)"),
                rows,
                title=f"Cache store at {store.cache_dir} "
                f"({len(entries)} entries, "
                f"{sum(e.size_bytes for e in entries):,} bytes)",
            )
        )
        return 0
    if args.action == "gc":
        if args.max_bytes is None and args.max_age_days is None:
            print(
                "cache gc: pass --max-bytes and/or --max-age-days",
                file=sys.stderr,
            )
            return 2
        max_age_s = None
        now_s = None
        if args.max_age_days is not None:
            max_age_s = args.max_age_days * 86400.0
            # Entry ages are mtimes, so the bound is inherently relative
            # to the machine clock; no analysis output ever sees this
            # value.  The store itself takes `now_s` as a parameter and
            # stays clock-free.
            now_s = time.time()  # lint: disable=wall-clock (gc age bounds compare file mtimes against the machine clock by design; never reaches analysis output)
        removed = store.gc(max_bytes=args.max_bytes, max_age_s=max_age_s, now_s=now_s)
        freed = sum(entry.size_bytes for entry in removed)
        print(f"removed {len(removed)} entries ({freed:,} bytes)")
        return 0
    count = store.clear()
    print(f"cleared {count} entries from {store.cache_dir}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_corridors
    from repro.serve.payloads import render_payload

    refs = tuple(args.scenarios) if args.scenarios else None
    rows = compare_corridors(refs, jobs=args.jobs)
    if args.format == "json":
        payload = {
            "endpoint": "compare",
            "corridors": [row.as_dict() for row in rows],
        }
        print(render_payload(payload))
        return 0
    print(
        format_table(
            (
                "Scenario",
                "Path",
                "km",
                "c-bound",
                "Best MW network",
                "MW (ms)",
                "fiber (ms)",
                "LEO 550",
                "LEO 300",
            ),
            [
                (
                    row.scenario,
                    f"{row.source}-{row.target}",
                    f"{row.geodesic_km:.0f}",
                    f"{row.cbound_ms:.3f}",
                    row.best_licensee or "(none connected)",
                    format_latency_ms(row.microwave_ms)
                    if row.microwave_ms is not None
                    else "-",
                    f"{row.fiber_ms:.3f}",
                    f"{row.leo_550_ms:.3f}",
                    f"{row.leo_300_ms:.3f}",
                )
                for row in rows
            ],
            title="Hybrid MW / fiber / LEO latency per corridor (one-way)",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import CorridorQueryService, run_server

    service = CorridorQueryService(scenario=_scenario(args), warm=not args.cold)

    def announce(url: str) -> None:
        mode = "cold-per-request baseline" if args.cold else "shared warm engine"
        print(f"serving corridor analytics on {url} ({mode})", flush=True)

    run_server(service, host=args.host, port=args.port, announce=announce)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import (
        CorridorQueryService,
        CorridorServer,
        LoadProfile,
        run_load,
    )

    profile = LoadProfile(
        requests=args.requests, clients=args.clients, seed=args.seed
    )
    if args.url:
        report = run_load(args.url, profile)
    else:
        # No URL: boot an in-process server, load it, tear it down.
        service = CorridorQueryService(
            scenario=_scenario(args), warm=not args.cold
        )
        with CorridorServer(service) as server:
            report = run_load(server.url, profile)
    print(report.describe())
    return 1 if report.errors else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        lint_paths,
        load_config,
        registered_rules,
        render_json,
        render_text,
        write_baseline,
    )
    from repro.lint.config import find_project_root

    if args.list_rules:
        for name, rule_cls in sorted(registered_rules().items()):
            print(f"{name:18s} {rule_cls.description}")
        return 0
    config = load_config(root=find_project_root())
    if args.paths and args.paths[0] == "graph":
        return _cmd_lint_graph(args, config)
    cache = None
    if not args.no_cache:
        from repro.lint.flow.cache import FlowCache

        cache = FlowCache(config.root / config.flow_cache_path())
    try:
        result = lint_paths(
            args.paths or None,
            config=config,
            use_baseline=not args.no_baseline,
            cache=cache,
        )
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.update_baseline:
        baseline_path = config.root / (args.baseline or config.baseline_path)
        write_baseline(
            baseline_path, result.findings + result.baselined
        )
        print(
            f"wrote {len(result.findings) + len(result.baselined)} "
            f"finding(s) to {baseline_path}"
        )
        return 0
    if args.baseline:
        from repro.lint import load_baseline

        baseline = load_baseline(config.root / args.baseline)
        fresh, old = baseline.split(result.findings + result.baselined)
        result.findings, result.baselined = fresh, old
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def _cmd_lint_graph(args: argparse.Namespace, config) -> int:
    """``hftnetview lint graph``: render the whole-program flow graph."""
    from repro.lint.flow.cache import FlowCache
    from repro.lint.flow.program import build_program_analysis
    from repro.lint.flow.report import (
        render_graph_json,
        render_graph_text,
        render_why,
    )

    cache = (
        None
        if args.no_cache
        else FlowCache(config.root / config.flow_cache_path())
    )
    analysis = build_program_analysis(config, cache=cache)
    if cache is not None:
        cache.save()
    if args.why:
        print(render_why(analysis, args.why))
        return 0
    if args.format == "json":
        print(render_graph_json(analysis, include_effects=args.effects))
    else:
        print(render_graph_text(analysis))
    if args.check_cycles and analysis.graph.import_cycles():
        print("import cycles detected", file=sys.stderr)
        return 1
    return 0


def _obs_parent_parser() -> argparse.ArgumentParser:
    """The ``--trace``/``--metrics``/``--jobs`` flags shared by every
    subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSON-lines span trace of the command to FILE",
    )
    group.add_argument(
        "--metrics", action="store_true",
        help="after the command, print a metrics summary (cache hit "
        "counts, span timings) to stderr",
    )
    execution = parent.add_argument_group("execution")
    execution.add_argument(
        "--scenario", default="paper2020", metavar="NAME[:k=v,...]",
        help="corridor scenario to run against: a registered name "
        "('paper2020', 'europe2020', 'tokyo-singapore') or the "
        "parameterized generator ('synthetic:seed=7,networks=12,...'); "
        "default paper2020",
    )
    execution.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan analysis work out over N logical workers "
        "(repro.parallel; output is byte-identical for any N)",
    )
    execution.add_argument(
        "--no-incremental", action="store_true",
        help="disable incremental snapshot evolution (full active-set "
        "scan per date, the pre-index behaviour; output is byte-"
        "identical either way)",
    )
    execution.add_argument(
        "--kernel", choices=("columnar", "object"), default=None,
        metavar="{columnar,object}",
        help="cold-reconstruction kernel: 'columnar' (flat array-backed "
        "license store, the default) or 'object' (per-object stitching); "
        "output is byte-identical either way",
    )
    persistence = parent.add_argument_group("persistence")
    persistence.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist engine caches to a content-addressed on-disk store "
        "under DIR (auto-load on start, checkpoint on exit); also "
        "honoured via $REPRO_CACHE_DIR, defaulting to ~/.cache/repro",
    )
    persistence.add_argument(
        "--no-store", action="store_true",
        help="disable the on-disk store even if $REPRO_CACHE_DIR is set",
    )
    return parent


# lint: disable=transitive-determinism (the `cache gc` subcommand's age
# bound compares entry mtimes against the machine clock by design; that
# single pragma'd time.time() read in _cmd_cache is store maintenance and
# never shapes analysis output — every analysis subcommand stays clock-free)
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hftnetview",
        description="Reconstruct and analyse HFT microwave networks "
        "(IMC 2020 reproduction).",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="after the command, print the shared engine's snapshot/route/"
        "geodesic cache statistics to stderr",
    )
    obs_parent = _obs_parent_parser()
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func, help_text in (
        ("funnel", _cmd_funnel, "replay the §2.2 scraping funnel"),
        ("table1", _cmd_table1, "connected networks by latency (Table 1)"),
        ("table2", _cmd_table2, "top-3 networks per path (Table 2)"),
        ("table3", _cmd_table3, "per-path APA, NLN vs WH (Table 3)"),
        ("timeline", _cmd_timeline, "Fig 1/2 longitudinal series"),
    ):
        cmd = sub.add_parser(name, help=help_text, parents=[obs_parent])
        cmd.add_argument("--date", type=_parse_date, default=None,
                         help="snapshot date (YYYY-MM-DD; default 2020-04-01)")
        if name == "timeline":
            cmd.add_argument(
                "--step", choices=("paper", "monthly", "weekly"),
                default="paper",
                help="date-grid density: the paper's yearly snapshots "
                "(default) or a dense monthly/weekly grid walked as "
                "successive deltas",
            )
        if name in ("table1", "table3", "timeline"):
            cmd.add_argument(
                "--format", choices=("text", "json"), default="text",
                help="output format: the text table, or the canonical "
                "JSON payload byte-identical to the serve endpoint's "
                "response",
            )
        cmd.set_defaults(func=func)

    export = sub.add_parser(
        "export", help="export a network snapshot", parents=[obs_parent]
    )
    export.add_argument("licensee", help='e.g. "New Line Networks"')
    export.add_argument("--date", type=_parse_date, default=None)
    export.add_argument("--output-dir", default="out")
    export.set_defaults(func=_cmd_export)

    leo = sub.add_parser(
        "leo", help="Fig 5 latency comparison sweep", parents=[obs_parent]
    )
    leo.add_argument("--full", action="store_true", help="print every distance")
    leo.set_defaults(func=_cmd_leo)

    compare = sub.add_parser(
        "compare",
        help="hybrid MW/fiber/LEO latency per registered corridor",
        parents=[obs_parent],
    )
    compare.add_argument(
        "scenarios", nargs="*",
        help="scenario references to compare (default: every concrete "
        "registered scenario)",
    )
    compare.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json uses the canonical payload encoding)",
    )
    compare.set_defaults(func=_cmd_compare)

    entities = sub.add_parser(
        "entities", help="resolve co-owned licensees", parents=[obs_parent]
    )
    entities.add_argument("--date", type=_parse_date, default=None)
    entities.set_defaults(func=_cmd_entities)

    weather = sub.add_parser(
        "weather", help="effective latency under storms", parents=[obs_parent]
    )
    weather.add_argument("--date", type=_parse_date, default=None)
    weather.add_argument("--storms", type=int, default=25)
    weather.set_defaults(func=_cmd_weather)

    stability = sub.add_parser(
        "stability", help="ranking flips under per-tower overhead",
        parents=[obs_parent],
    )
    stability.add_argument("--max-overhead", type=float, default=3.0,
                           help="per-tower overhead range, microseconds")
    stability.set_defaults(func=_cmd_stability)

    design = sub.add_parser(
        "design", help="design a corridor network (§6)", parents=[obs_parent]
    )
    design.add_argument("--trunk-budget", type=float, default=45.0)
    design.add_argument("--bypass-budget", type=float, default=18.0)
    design.add_argument("--seed", type=int, default=3)
    design.set_defaults(func=_cmd_design)

    diff = sub.add_parser(
        "diff", help="corridor changes between two dates", parents=[obs_parent]
    )
    diff.add_argument("start", type=_parse_date, help="YYYY-MM-DD")
    diff.add_argument("end", type=_parse_date, help="YYYY-MM-DD")
    diff.set_defaults(func=_cmd_diff)

    search = sub.add_parser(
        "search", help="geographic license search (§2.1 portal query)",
        parents=[obs_parent],
    )
    search.add_argument("--lat", type=float, default=None,
                        help="center latitude (default: CME)")
    search.add_argument("--lon", type=float, default=None,
                        help="center longitude (default: CME)")
    search.add_argument("--radius-m", type=float, default=None,
                        help="search radius in meters (default: the "
                        "portal's CME radius)")
    search.add_argument("--active-on", type=_parse_date, default=None,
                        help="restrict to licenses active on this date")
    search.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json matches the /search endpoint)",
    )
    search.set_defaults(func=_cmd_search)

    serve = sub.add_parser(
        "serve", help="run the corridor analytics HTTP service",
        parents=[obs_parent],
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8181,
                       help="listening port (0 picks an ephemeral port)")
    serve.add_argument(
        "--cold", action="store_true",
        help="build a fresh engine per request (the benchmark baseline) "
        "instead of sharing one warm engine",
    )
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="replay a seeded load profile against the service",
        parents=[obs_parent],
    )
    loadgen.add_argument("--url", default=None,
                         help="server to load (default: boot an "
                         "in-process server for the run)")
    loadgen.add_argument("--requests", type=int, default=200)
    loadgen.add_argument("--clients", type=int, default=4)
    loadgen.add_argument("--seed", type=int, default=7,
                         help="request-mix seed (same seed, same sequence)")
    loadgen.add_argument(
        "--cold", action="store_true",
        help="(in-process server only) serve the cold-per-request "
        "baseline instead of the shared warm engine",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    cache = sub.add_parser(
        "cache", help="inspect or maintain the on-disk cache store",
        parents=[obs_parent],
    )
    cache.add_argument(
        "action", choices=("stat", "gc", "clear"),
        help="stat: list entries; gc: remove entries beyond size/age "
        "bounds; clear: remove everything (quarantine included)",
    )
    cache.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="(gc) keep only the newest entries totalling at most N bytes",
    )
    cache.add_argument(
        "--max-age-days", type=float, default=None, metavar="D",
        help="(gc) remove entries not modified in the last D days",
    )
    cache.set_defaults(func=_cmd_cache)

    lint = sub.add_parser(
        "lint", help="run the project's static-analysis rules",
        parents=[obs_parent],
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: [tool.repro.lint] "
        "default_paths, i.e. src/repro), or 'graph' to render the "
        "whole-program flow graph",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file overriding the configured one",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the committed baseline (show every finding)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to grandfather the current findings",
    )
    lint.add_argument(
        "--verbose", action="store_true",
        help="also print baselined findings in the text report",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk findings cache (.lint-cache.json); "
        "warm reruns with the cache skip unchanged files",
    )
    lint.add_argument(
        "--effects", action="store_true",
        help="(graph) include per-function direct and transitive effect "
        "summaries in the JSON output",
    )
    lint.add_argument(
        "--check-cycles", action="store_true",
        help="(graph) exit non-zero if the module import graph contains "
        "a cycle",
    )
    lint.add_argument(
        "--why", default=None, metavar="MODULE.FN",
        help="(graph) explain one function: definition site, direct and "
        "transitive effects with call chains, worker/CLI reachability",
    )
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "no_incremental", False):
        # Flip the module default before any engine is constructed: the
        # scenario's shared engine is built lazily on first use, so every
        # consumer (and every worker it spawns) inherits full-scan mode.
        from repro.core import engine as engine_mod

        engine_mod.INCREMENTAL_DEFAULT = False
    if getattr(args, "kernel", None):
        # Same pre-construction window as --no-incremental: engines pin
        # their kernel at build time and workers inherit it through the
        # parallel cache-transplant protocol.
        from repro.core import engine as engine_mod

        engine_mod.KERNEL_DEFAULT = args.kernel
    store = None
    if args.command != "cache" and not getattr(args, "no_store", False):
        cache_dir = getattr(args, "cache_dir", None)
        if cache_dir is not None or os.environ.get("REPRO_CACHE_DIR"):
            # Same pre-construction window again: every engine built
            # during the command (the scenario's shared default, serve's
            # warm engine, even ad-hoc ones) attaches to the store and
            # auto-loads its entry; the finally block below checkpoints
            # them all back.
            from repro.core import engine as engine_mod
            from repro.store import CacheStore

            store = CacheStore(cache_dir)
            engine_mod.STORE_DEFAULT = store
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    trace_sink = None
    if trace_path or want_metrics:
        from repro import obs

        sinks = []
        if trace_path:
            trace_sink = obs.JsonLinesSink(Path(trace_path))
            sinks.append(trace_sink)
        obs.enable(sinks=tuple(sinks))
    from repro.scenarios import ScenarioParamError, UnknownScenarioError

    try:
        status = args.func(args)
    except (UnknownScenarioError, ScenarioParamError) as error:
        print(f"scenario error: {error}", file=sys.stderr)
        status = 2
    finally:
        if store is not None:
            # Persist whatever the command learned, then restore the
            # module default so in-process callers (tests invoking
            # main() repeatedly) stay hermetic.
            store.checkpoint_all()
            from repro.core import engine as engine_mod

            engine_mod.STORE_DEFAULT = None
        if trace_path or want_metrics:
            registry = obs.disable()
            if trace_sink is not None:
                trace_sink.close()
                print(f"wrote span trace to {trace_path}", file=sys.stderr)
            if want_metrics and registry is not None:
                print(obs.render_metrics(registry), file=sys.stderr)
    if args.cache_stats:
        # Through the shared resolver: the registry cache hands back the
        # same scenario (and thus the same warm engine) the command body
        # used, so the stats describe the work just done — and compose
        # with --scenario and --cache-dir instead of always describing
        # a throwaway paper2020 engine.
        try:
            print(_scenario(args).engine().stats.describe(), file=sys.stderr)
        except (UnknownScenarioError, ScenarioParamError):
            pass  # the command body already reported the bad reference
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
