"""Low-latency microwave network design (the paper's §6 takeaways).

The paper closes with design lessons for future low-latency terrestrial
networks (and cites the cISP proposal, which designs budget-constrained
microwave backbones):

* engineer towards high APA using redundant MW links close to the
  shortest path;
* link lengths trade cost (fewer towers) against reliability;
* run lower frequencies on alternate paths when the trunk needs
  higher-bandwidth bands.

This subpackage turns those lessons into an executable design pipeline:

1. :mod:`repro.design.sites` — a candidate tower-site pool along a
   corridor, with scarcer/pricier sites near the geodesic (mimicking the
   tower-site competition of §1);
2. :mod:`repro.design.trunk` — a resource-constrained shortest path
   (latency objective, site-cost budget) over the pool, with hop lengths
   bounded by the radio link budget;
3. :mod:`repro.design.redundancy` — greedy APA augmentation: spend the
   remaining budget on the bypasses with the best marginal APA per cost,
   carrying low-band channels;
4. :mod:`repro.design.evaluate` — package a design as an
   :class:`~repro.core.network.HftNetwork` and score it with the same
   metrics the paper applies to the real networks (latency, APA, storm
   survival).
"""

from repro.design.sites import CandidateSite, generate_site_pool
from repro.design.trunk import TrunkDesign, design_trunk
from repro.design.redundancy import augment_with_bypasses
from repro.design.evaluate import DesignReport, NetworkDesign, evaluate_design

__all__ = [
    "CandidateSite",
    "generate_site_pool",
    "TrunkDesign",
    "design_trunk",
    "augment_with_bypasses",
    "DesignReport",
    "NetworkDesign",
    "evaluate_design",
]
