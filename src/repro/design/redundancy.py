"""APA augmentation: spend leftover budget on bypass sites.

Implements the paper's first §6 takeaway — "such networks should be
engineered towards high APA using redundant MW links close to the
shortest paths" — with its third: the bypasses run in the 6 GHz band, so
they survive the weather that takes the trunk down.

Greedy selection: at each step, add the (bypass site, trunk tower) pair
with the best marginal APA gain per unit cost, where a bypass around
trunk tower ``i`` connects towers ``i−1`` and ``i+1`` and protects the
two adjacent trunk links.  Greedy is within the usual (1−1/e) factor of
optimal for this coverage objective and is what an operator iterating on
lease offers would actually do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geodesy import geodesic_distance
from repro.radio.budget import LinkBudget
from repro.design.sites import CandidateSite
from repro.design.trunk import TrunkDesign


@dataclass(frozen=True)
class Bypass:
    """A bypass site protecting the two links around a trunk tower."""

    site: CandidateSite
    around_index: int  # trunk tower index whose adjacent links it covers
    band_ghz: float

    @property
    def covered_links(self) -> tuple[int, int]:
        return (self.around_index - 1, self.around_index)


def augment_with_bypasses(
    trunk: TrunkDesign,
    pool: list[CandidateSite],
    budget: float,
    band_ghz: float = 6.0,
    link_budget: LinkBudget | None = None,
    required_margin_db: float = 35.0,
    max_detour_factor: float = 3.0,
) -> list[Bypass]:
    """Greedy bypass selection within ``budget``.

    A candidate bypass for trunk tower i must close both hops (to towers
    i−1 and i+1) at ``band_ghz`` with the required margin, must not be a
    trunk site, and must not detour more than ``max_detour_factor``× the
    direct two-hop distance (grotesque detours would blow the APA latency
    bound anyway).
    """
    if budget < 0.0:
        raise ValueError("budget cannot be negative")
    link_budget = link_budget or LinkBudget()
    max_hop_m = link_budget.max_hop_km(band_ghz, required_margin_db) * 1000.0
    trunk_ids = {site.site_id for site in trunk.sites}

    # Candidate (cost-effectiveness, bypass) options per trunk tower.
    options: dict[int, list[tuple[float, Bypass]]] = {}
    for index in range(1, len(trunk.sites) - 1):
        previous = trunk.sites[index - 1].point
        nxt = trunk.sites[index + 1].point
        direct = geodesic_distance(previous, nxt)
        for site in pool:
            if site.site_id in trunk_ids:
                continue
            leg_a = geodesic_distance(previous, site.point)
            leg_b = geodesic_distance(site.point, nxt)
            if leg_a > max_hop_m or leg_b > max_hop_m:
                continue
            if leg_a + leg_b <= direct:
                continue  # degenerate: would shorten the trunk, not bypass it
            if leg_a + leg_b > max_detour_factor * direct:
                continue
            options.setdefault(index, []).append((site.annual_cost, Bypass(site, index, band_ghz)))
    for index in options:
        options[index].sort(key=lambda pair: pair[0])

    chosen: list[Bypass] = []
    covered: set[int] = set()
    used_sites: set[str] = set()
    remaining = budget
    while True:
        best: tuple[float, int, Bypass] | None = None
        for index, candidates in options.items():
            for cost, bypass in candidates:
                if cost > remaining or bypass.site.site_id in used_sites:
                    continue
                gain = len(set(bypass.covered_links) - covered)
                if gain == 0:
                    continue
                score = gain / cost
                if best is None or score > best[0]:
                    best = (score, index, bypass)
                break  # candidates are cost-sorted; first affordable is best here
        if best is None:
            break
        _, _, bypass = best
        chosen.append(bypass)
        covered.update(bypass.covered_links)
        used_sites.add(bypass.site.site_id)
        remaining -= bypass.site.annual_cost
    return chosen
