"""Budget-constrained trunk design: a resource-constrained shortest path.

Given a candidate-site pool, pick the chain of sites from the west
gateway to the east gateway that minimises propagation latency subject to
(a) every hop being closable by the radio link budget at the chosen band,
and (b) total annual site cost within budget.

Eastward progress is enforced (each hop moves east), which makes the
site graph a DAG — the corridor regime — so the label-correcting dynamic
program below is exact.  Labels are (latency, cost) pairs per node with
dominance pruning; cost is bucketed to keep the Pareto frontier small
without affecting feasibility (bucketing only ever *over*-estimates cost,
so no over-budget design is returned).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import MICROWAVE_SPEED
from repro.geodesy import GeoPoint, geodesic_distance
from repro.radio.budget import LinkBudget
from repro.design.sites import CandidateSite

#: Cost bucketing granularity for dominance pruning.
_COST_QUANTUM = 0.25


class DesignError(RuntimeError):
    """Raised when no feasible design exists under the constraints."""


@dataclass(frozen=True)
class TrunkDesign:
    """A designed trunk: ordered sites, cost, and predicted latency."""

    sites: tuple[CandidateSite, ...]
    band_ghz: float
    total_cost: float
    microwave_length_m: float

    @property
    def latency_s(self) -> float:
        return self.microwave_length_m / MICROWAVE_SPEED

    @property
    def hop_count(self) -> int:
        return len(self.sites) - 1

    def hop_lengths_km(self) -> list[float]:
        return [
            geodesic_distance(a.point, b.point) / 1000.0
            for a, b in zip(self.sites, self.sites[1:])
        ]


@dataclass
class _Label:
    latency_m: float  # path length so far (metres ≡ latency at c)
    cost: float
    site_index: int
    predecessor: "_Label | None"


def design_trunk(
    pool: list[CandidateSite],
    west_gateway: CandidateSite,
    east_gateway: CandidateSite,
    budget: float,
    band_ghz: float = 11.0,
    link_budget: LinkBudget | None = None,
    required_margin_db: float = 35.0,
    min_hop_km: float = 5.0,
) -> TrunkDesign:
    """The minimum-latency west→east chain within ``budget``.

    Gateways are mandatory endpoints; their costs count against the
    budget.  Raises :class:`DesignError` when the pool admits no chain
    (hops too long for the band) or the budget is too small.
    """
    if budget <= 0.0:
        raise ValueError("budget must be positive")
    link_budget = link_budget or LinkBudget()
    max_hop_m = link_budget.max_hop_km(band_ghz, required_margin_db) * 1000.0
    if max_hop_m <= min_hop_km * 1000.0:
        raise DesignError(
            f"band {band_ghz} GHz cannot close hops beyond {max_hop_m / 1000:.1f} km"
        )

    # Nodes sorted west→east; index 0 is the west gateway, last the east.
    interior = [
        site
        for site in pool
        if west_gateway.point.longitude
        < site.point.longitude
        < east_gateway.point.longitude
    ]
    nodes = [west_gateway] + sorted(
        interior, key=lambda site: site.point.longitude
    ) + [east_gateway]
    n = len(nodes)

    # labels[i]: bucketed-cost -> best (lowest-latency) label at node i.
    labels: list[dict[int, _Label]] = [dict() for _ in range(n)]
    start = _Label(0.0, west_gateway.annual_cost, 0, None)
    if start.cost > budget:
        raise DesignError("budget cannot even cover the west gateway")
    labels[0][_bucket(start.cost)] = start

    min_hop_m = min_hop_km * 1000.0
    for i in range(n):
        if not labels[i]:
            continue
        current = nodes[i]
        for j in range(i + 1, n):
            candidate = nodes[j]
            # Cheap longitude prefilter before the geodesic call: one
            # degree of longitude on the corridor is >80 km.
            dlon = candidate.point.longitude - current.point.longitude
            if dlon * 80_000.0 > max_hop_m * 1.3:
                break  # nodes are longitude-sorted; no later j can be closer
            hop = geodesic_distance(current.point, candidate.point)
            if hop > max_hop_m or hop < min_hop_m:
                continue
            for label in list(labels[i].values()):
                new_cost = label.cost + candidate.annual_cost
                if new_cost > budget:
                    continue
                new_label = _Label(label.latency_m + hop, new_cost, j, label)
                _insert(labels[j], new_label)

    if not labels[n - 1]:
        raise DesignError("no feasible chain within budget and hop limits")
    best = min(labels[n - 1].values(), key=lambda label: label.latency_m)

    chain: list[CandidateSite] = []
    cursor: _Label | None = best
    while cursor is not None:
        chain.append(nodes[cursor.site_index])
        cursor = cursor.predecessor
    chain.reverse()
    return TrunkDesign(
        sites=tuple(chain),
        band_ghz=band_ghz,
        total_cost=best.cost,
        microwave_length_m=best.latency_m,
    )


def _bucket(cost: float) -> int:
    return int(math.ceil(cost / _COST_QUANTUM))


def _insert(bucket_map: dict[int, _Label], label: _Label) -> None:
    """Insert with dominance pruning: keep the best latency per cost
    bucket, and drop buckets dominated by a cheaper-and-faster label."""
    key = _bucket(label.cost)
    existing = bucket_map.get(key)
    if existing is not None and existing.latency_m <= label.latency_m:
        return
    # Dominated by any cheaper bucket with latency <= ours?
    for other_key, other in bucket_map.items():
        if other_key <= key and other.latency_m <= label.latency_m:
            return
    bucket_map[key] = label
    # Remove buckets we now dominate (more expensive, slower).
    for other_key in [
        k
        for k, other in bucket_map.items()
        if k > key and other.latency_m >= label.latency_m
    ]:
        del bucket_map[other_key]
