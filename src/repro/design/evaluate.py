"""Scoring a design with the paper's own metrics.

A designed trunk + bypass set is packaged as an
:class:`~repro.core.network.HftNetwork` (the designed band's channels on
the trunk, 6 GHz on the bypasses) and measured exactly like the
reconstructed HFT networks: end-to-end latency and stretch, APA at the
paper's 5% slack, and survival across a seeded storm ensemble.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

from repro.constants import SPEED_OF_LIGHT
from repro.core.corridor import DataCenterSite
from repro.core.network import FiberTail, HftNetwork, MicrowaveLink, Tower
from repro.geodesy import GeoPoint, geodesic_distance
from repro.metrics.apa import alternate_path_availability
from repro.synth.specs import CHANNEL_PLANS_MHZ
from repro.synth.weather import random_storm, storm_latency_ms
from repro.design.redundancy import Bypass
from repro.design.trunk import TrunkDesign


@dataclass(frozen=True)
class NetworkDesign:
    """A complete design: trunk, bypasses, and endpoint data centers."""

    trunk: TrunkDesign
    bypasses: tuple[Bypass, ...]
    west: DataCenterSite
    east: DataCenterSite

    @property
    def total_cost(self) -> float:
        return self.trunk.total_cost + sum(
            bypass.site.annual_cost for bypass in self.bypasses
        )


@dataclass(frozen=True)
class DesignReport:
    """Measured properties of a design."""

    latency_ms: float
    stretch: float
    apa: float
    tower_count: int
    total_cost: float
    storm_survival: float
    median_hop_km: float


def _channels_for(band_ghz: float) -> tuple[float, ...]:
    plan = CHANNEL_PLANS_MHZ.get(f"{band_ghz:.0f}GHz")
    if plan is None:
        return (band_ghz * 1000.0,)
    return plan[:2]


def design_to_network(design: NetworkDesign, as_of: dt.date | None = None) -> HftNetwork:
    """Materialise a design as a routable network."""
    as_of = as_of or dt.date(2020, 4, 1)
    towers = []
    for site in design.trunk.sites:
        towers.append(Tower(site.site_id, site.point, structure_height_m=90.0))
    for bypass in design.bypasses:
        towers.append(
            Tower(bypass.site.site_id, bypass.site.point, structure_height_m=90.0)
        )

    trunk_channels = _channels_for(design.trunk.band_ghz)
    links = []
    for a, b in zip(design.trunk.sites, design.trunk.sites[1:]):
        links.append(
            MicrowaveLink(
                a.site_id,
                b.site_id,
                geodesic_distance(a.point, b.point),
                frequencies_mhz=trunk_channels,
            )
        )
    for bypass in design.bypasses:
        previous = design.trunk.sites[bypass.around_index - 1]
        nxt = design.trunk.sites[bypass.around_index + 1]
        channels = _channels_for(bypass.band_ghz)
        for endpoint in (previous, nxt):
            links.append(
                MicrowaveLink(
                    endpoint.site_id,
                    bypass.site.site_id,
                    geodesic_distance(endpoint.point, bypass.site.point),
                    frequencies_mhz=channels,
                )
            )

    tails = [
        FiberTail(
            design.west.name,
            design.trunk.sites[0].site_id,
            geodesic_distance(design.west.point, design.trunk.sites[0].point),
        ),
        FiberTail(
            design.east.name,
            design.trunk.sites[-1].site_id,
            geodesic_distance(design.east.point, design.trunk.sites[-1].point),
        ),
    ]
    return HftNetwork(
        licensee="Designed Network",
        as_of=as_of,
        towers=towers,
        links=links,
        fiber_tails=tails,
        data_centers=[design.west, design.east],
    )


def evaluate_design(
    design: NetworkDesign,
    n_storms: int = 20,
    storm_seed_base: int = 1000,
) -> DesignReport:
    """Measure a design with the paper's metrics plus storm survival."""
    network = design_to_network(design)
    source, target = design.west.name, design.east.name
    route = network.lowest_latency_route(source, target)
    if route is None:
        raise ValueError("designed network is not connected")
    geodesic = geodesic_distance(design.west.point, design.east.point)
    apa = alternate_path_availability(network, source, target)

    survived = 0
    corridor = (design.west.point, design.east.point)
    for seed in range(n_storms):
        storm = random_storm(
            storm_seed_base + seed, corridor, n_cells=4, peak_mm_h=(60.0, 170.0)
        )
        if storm_latency_ms(network, storm, source, target) is not None:
            survived += 1

    hops = sorted(design.trunk.hop_lengths_km())
    return DesignReport(
        latency_ms=route.latency_ms,
        stretch=route.length_m / geodesic,
        apa=apa,
        tower_count=route.tower_count,
        total_cost=design.total_cost,
        storm_survival=survived / n_storms,
        median_hop_km=hops[(len(hops) - 1) // 2],
    )


def corridor_endpoints(
    west_point: GeoPoint, east_point: GeoPoint
) -> tuple[DataCenterSite, DataCenterSite]:
    """Convenience data-center pair for a generic two-point design."""
    return (
        DataCenterSite("WEST", west_point),
        DataCenterSite("EAST", east_point),
    )


def latency_lower_bound_ms(west: GeoPoint, east: GeoPoint) -> float:
    """The c-speed geodesic bound the race converges towards."""
    return geodesic_distance(west, east) / SPEED_OF_LIGHT * 1e3
