"""Candidate tower-site pools for network design.

Real corridor design chooses among *existing* towers (§1: networks
"compete fiercely for favorable tower sites").  We model the market as a
seeded pool of candidate sites scattered in a band around the corridor
geodesic, where sites closer to the geodesic are scarcer and more
expensive — the closest sites are exactly the ones everyone fights over.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geodesy import GeoPoint
from repro.geodesy.path import offset_point


@dataclass(frozen=True, slots=True)
class CandidateSite:
    """A leasable tower site."""

    site_id: str
    point: GeoPoint
    annual_cost: float
    #: Distance from the corridor geodesic, metres (diagnostic).
    offset_m: float

    def __post_init__(self) -> None:
        if self.annual_cost <= 0.0:
            raise ValueError("site cost must be positive")


def generate_site_pool(
    west: GeoPoint,
    east: GeoPoint,
    n_sites: int = 400,
    band_km: float = 30.0,
    seed: int = 0,
    base_cost: float = 1.0,
) -> list[CandidateSite]:
    """A seeded pool of candidate sites along the west→east corridor.

    Sites are uniform in along-track position and (roughly) triangular in
    lateral offset — more towers exist near populated corridors than in
    the middle of nowhere, but the *prime* strip right on the geodesic is
    thin.  Cost decays with lateral offset: a site on the geodesic costs
    ~3× a site at the band edge, reflecting the §1 bidding wars.
    """
    if n_sites < 2:
        raise ValueError("need at least two candidate sites")
    if band_km <= 0.0:
        raise ValueError("band width must be positive")
    rng = random.Random(seed)
    sites: list[CandidateSite] = []
    for index in range(n_sites):
        fraction = rng.uniform(0.005, 0.995)
        # Triangular-ish lateral distribution: average of two uniforms,
        # signed — peaks mildly near the geodesic.
        lateral_km = (rng.uniform(-band_km, band_km) + rng.uniform(-band_km, band_km)) / 2.0
        point = offset_point(west, east, fraction, lateral_km * 1000.0)
        proximity = 1.0 - abs(lateral_km) / band_km  # 1 on-axis, 0 at edge
        cost = base_cost * (1.0 + 2.0 * proximity**2) * rng.uniform(0.85, 1.15)
        sites.append(
            CandidateSite(
                site_id=f"site-{index:04d}",
                point=point,
                annual_cost=cost,
                offset_m=abs(lateral_km) * 1000.0,
            )
        )
    return sites
