"""Scraping client for ULS portal pages.

This is the data-collection half of the paper's tool (§2.2).  It drives
the portal's search pages, parses the HTML with the standard library's
:class:`html.parser.HTMLParser`, and rebuilds :class:`License` records.

The scraper is written against page *structure* (table ids and column
order), not against our renderer's internals, so it would work unchanged on
any server producing the same page layout.  A per-license cache avoids
refetching detail pages, mirroring the original tool's on-disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from html.parser import HTMLParser

from repro import obs
from repro.geodesy import GeoPoint
from repro.geodesy.coordinates import parse_dms
from repro.uls.portal import UlsPortal
from repro.uls.records import (
    License,
    MicrowavePath,
    TowerLocation,
    parse_date,
)


def _scraper_worker(database) -> "UlsScraper":
    """Rebuild a scraper (and portal) inside a worker process."""
    return UlsScraper(UlsPortal(database))


def _count_filings_task(scraper: "UlsScraper", name: str) -> int:
    return len(scraper.licenses_of(name))


def _scrape_licensee_task(scraper: "UlsScraper", name: str) -> list:
    return scraper.scrape_licensee(name)


def _collect_scrape_delta(scraper: "UlsScraper"):
    """Chunk finalizer: page counts since the last collect + the worker's
    parsed-license cache (idempotent to re-absorb)."""
    stats = scraper.stats
    scraper.stats = ScrapeStats()
    pages = (stats.search_pages, stats.detail_pages, stats.cache_hits)
    return pages, dict(scraper._detail_cache)


class ScrapeError(ValueError):
    """Raised when a page cannot be parsed into the expected structure."""


class _TableExtractor(HTMLParser):
    """Collects every ``<table class="results">`` as a list of text rows.

    Tables are keyed by their ``id`` attribute ("" when absent); each table
    is a list of rows, each row a list of cell strings (header row
    included).
    """

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.tables: dict[str, list[list[str]]] = {}
        self._table_order: list[str] = []
        self._current_id: str | None = None
        self._current_rows: list[list[str]] | None = None
        self._current_row: list[str] | None = None
        self._cell_parts: list[str] | None = None

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        attributes = dict(attrs)
        if tag == "table" and "results" in (attributes.get("class") or ""):
            self._current_id = attributes.get("id") or f"table{len(self._table_order)}"
            self._current_rows = []
        elif tag == "tr" and self._current_rows is not None:
            self._current_row = []
        elif tag in ("td", "th") and self._current_row is not None:
            self._cell_parts = []

    def handle_endtag(self, tag: str) -> None:
        if tag in ("td", "th") and self._cell_parts is not None:
            assert self._current_row is not None
            self._current_row.append("".join(self._cell_parts).strip())
            self._cell_parts = None
        elif tag == "tr" and self._current_row is not None:
            assert self._current_rows is not None
            self._current_rows.append(self._current_row)
            self._current_row = None
        elif tag == "table" and self._current_rows is not None:
            assert self._current_id is not None
            self.tables[self._current_id] = self._current_rows
            self._table_order.append(self._current_id)
            self._current_rows = None
            self._current_id = None

    def handle_data(self, data: str) -> None:
        if self._cell_parts is not None:
            self._cell_parts.append(data)

    def first_table(self) -> list[list[str]]:
        if not self._table_order:
            raise ScrapeError("page contains no results table")
        return self.tables[self._table_order[0]]


class _MetaExtractor(HTMLParser):
    """Extracts the license id / service / class line and the page h1."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self._in_meta = False
        self._in_contact = False
        self._in_h1 = False
        self.meta_text = ""
        self.contact_text = ""
        self.heading = ""

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        attributes = dict(attrs)
        if tag == "p" and attributes.get("id") == "meta":
            self._in_meta = True
        elif tag == "p" and attributes.get("id") == "contact":
            self._in_contact = True
        elif tag == "h1":
            self._in_h1 = True

    def handle_endtag(self, tag: str) -> None:
        if tag == "p":
            self._in_meta = False
            self._in_contact = False
        elif tag == "h1":
            self._in_h1 = False

    def handle_data(self, data: str) -> None:
        if self._in_meta:
            self.meta_text += data
        if self._in_contact:
            self.contact_text += data
        if self._in_h1:
            self.heading += data


def _parse_table_page(html: str) -> list[list[str]]:
    extractor = _TableExtractor()
    extractor.feed(html)
    return extractor.first_table()


@dataclass
class ScrapeStats:
    """Bookkeeping for a scraping session."""

    search_pages: int = 0
    detail_pages: int = 0
    cache_hits: int = 0


class UlsScraper:
    """Replays the paper's scraping pipeline against a portal."""

    def __init__(self, portal: UlsPortal) -> None:
        self._portal = portal
        self._detail_cache: dict[str, License] = {}
        self.stats = ScrapeStats()

    # ------------------------------------------------------------------
    # Search pages
    # ------------------------------------------------------------------

    def geographic_search(
        self, latitude: float, longitude: float, radius_km: float
    ) -> list[dict[str, str]]:
        """Scrape the geographic results: one dict per row."""
        with obs.span("uls.scraper.search", kind="geographic"):
            html = self._portal.geographic_search_page(
                latitude, longitude, radius_km
            )
            self.stats.search_pages += 1
            obs.count("uls.scraper.page.search")
            table = _parse_table_page(html)
        header, rows = table[0], table[1:]
        expected = ["Call Sign", "License ID", "Licensee", "Radio Service", "Station Class"]
        if header != expected:
            raise ScrapeError(f"unexpected geographic results header: {header!r}")
        return [
            {
                "callsign": row[0],
                "license_id": row[1],
                "licensee_name": row[2],
                "radio_service_code": row[3],
                "station_class": row[4],
            }
            for row in rows
        ]

    def licenses_of(self, licensee_name: str) -> list[str]:
        """License ids filed by a licensee (name-search page)."""
        with obs.span("uls.scraper.search", kind="name", licensee=licensee_name):
            html = self._portal.name_search_page(licensee_name)
            self.stats.search_pages += 1
            obs.count("uls.scraper.page.search")
            table = _parse_table_page(html)
        return [row[1] for row in table[1:]]

    # ------------------------------------------------------------------
    # Detail pages
    # ------------------------------------------------------------------

    def license_detail(self, license_id: str) -> License:
        """Scrape (or serve from cache) one license-detail page."""
        if license_id in self._detail_cache:
            self.stats.cache_hits += 1
            obs.count("uls.scraper.cache.hit")
            return self._detail_cache[license_id]
        obs.count("uls.scraper.cache.miss")
        with obs.span("uls.scraper.detail", license_id=license_id):
            html = self._portal.license_detail_page(license_id)
            self.stats.detail_pages += 1
            obs.count("uls.scraper.page.detail")
            lic = self._parse_detail(html)
        if lic.license_id != license_id:
            raise ScrapeError(
                f"requested {license_id!r} but page is for {lic.license_id!r}"
            )
        self._detail_cache[license_id] = lic
        return lic

    def scrape_licensee(self, licensee_name: str) -> list[License]:
        """All filings of one licensee, via name search + detail pages."""
        return [self.license_detail(lid) for lid in self.licenses_of(licensee_name)]

    # ------------------------------------------------------------------
    # Batched scraping (repro.parallel fan-out)
    # ------------------------------------------------------------------

    def count_filings(self, names: list[str], jobs: int = 1) -> list[int]:
        """Filing counts per licensee (one name-search page each).

        ``jobs=1`` scrapes through this object exactly as a caller's own
        ``len(scraper.licenses_of(name))`` loop would; above that, names
        fan out in contiguous chunks and worker page counts and parsed
        licenses are absorbed back here, so ``stats`` stays jobs-invariant
        whenever the names are distinct.
        """
        return self._batched(_count_filings_task, names, jobs)

    def scrape_licensees(self, names: list[str], jobs: int = 1) -> list[list[License]]:
        """Full filings per licensee, batched like :meth:`count_filings`."""
        return self._batched(_scrape_licensee_task, names, jobs)

    def _batched(self, task, names: list[str], jobs: int) -> list:
        # Imported here, not at module level: repro.core's reconstruction
        # stack imports repro.uls, and repro.parallel.grid imports
        # repro.core.engine — a module-level import would close that loop.
        from repro.parallel.executor import ContextSpec, ParallelMap

        with ParallelMap(
            jobs,
            context=ContextSpec(_scraper_worker, (self._portal.database,)),
            local_context=self,
        ) as executor:
            if executor.backend == "process":
                return executor.map(
                    task,
                    list(names),
                    finalize=_collect_scrape_delta,
                    on_chunk_result=self._absorb_chunk,
                )
            # Local backends run against this scraper directly — stats and
            # cache are already ours, nothing to merge.
            return executor.map(task, list(names))

    def _absorb_chunk(self, worker: int, delta) -> None:
        pages, cache = delta
        self.absorb(pages, cache)

    def absorb(self, pages: tuple[int, int, int], cache: dict[str, License]) -> None:
        """Fold a worker scraper's page counts and parsed licenses in."""
        search_pages, detail_pages, cache_hits = pages
        self.stats.search_pages += search_pages
        self.stats.detail_pages += detail_pages
        self.stats.cache_hits += cache_hits
        self._detail_cache.update(cache)

    # ------------------------------------------------------------------
    # Detail page parsing
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_detail(html: str) -> License:
        tables = _TableExtractor()
        tables.feed(html)
        meta = _MetaExtractor()
        meta.feed(html)

        for required in ("dates", "locations", "paths"):
            if required not in tables.tables:
                raise ScrapeError(f"detail page missing {required!r} table")

        meta_fields: dict[str, str] = {}
        for chunk in meta.meta_text.split("|"):
            if ":" in chunk:
                key, _, value = chunk.partition(":")
                meta_fields[key.strip()] = value.strip()
        license_id = meta_fields.get("License ID", "")
        if not license_id:
            raise ScrapeError("detail page has no license id")

        contact_email = ""
        if ":" in meta.contact_text:
            value = meta.contact_text.partition(":")[2].strip()
            contact_email = "" if value == "—" else value

        heading = meta.heading
        if "—" in heading:
            callsign_part, _, licensee_name = heading.partition("—")
            callsign = callsign_part.replace("License", "").strip()
            licensee_name = licensee_name.strip()
        else:
            raise ScrapeError(f"unparseable detail heading: {heading!r}")

        dates: dict[str, str] = {}
        for row in tables.tables["dates"][1:]:
            dates[row[0]] = "" if row[1] == "—" else row[1]

        locations: dict[int, TowerLocation] = {}
        for row in tables.tables["locations"][1:]:
            number = int(row[0])
            locations[number] = TowerLocation(
                location_number=number,
                point=GeoPoint(parse_dms(row[1]), parse_dms(row[2])),
                ground_elevation_m=float(row[3]),
                structure_height_m=float(row[4]),
                site_name="" if row[5] == "—" else row[5],
            )

        paths: list[MicrowavePath] = []
        for row in tables.tables["paths"][1:]:
            freq_text = row[3]
            frequencies = (
                ()
                if freq_text == "—"
                else tuple(float(part) for part in freq_text.split(","))
            )
            paths.append(
                MicrowavePath(
                    path_number=int(row[0]),
                    tx_location_number=int(row[1]),
                    rx_location_number=int(row[2]),
                    frequencies_mhz=frequencies,
                )
            )

        return License(
            license_id=license_id,
            callsign=callsign,
            licensee_name=licensee_name,
            contact_email=contact_email,
            radio_service_code=meta_fields.get("Radio Service", ""),
            station_class=meta_fields.get("Station Class", ""),
            grant_date=parse_date(dates.get("Grant")),
            expiration_date=parse_date(dates.get("Expiration")),
            cancellation_date=parse_date(dates.get("Cancellation")),
            termination_date=parse_date(dates.get("Termination")),
            locations=locations,
            paths=paths,
        )
