"""Indexed in-memory store of ULS licenses.

The real ULS is a relational database fronted by several search pages; our
substitute keeps every license in memory with the indices the searches
need: by license id, by call sign, by licensee, and a spatial grid over
location coordinates for the radius searches.
"""

from __future__ import annotations

import datetime as dt
import hashlib
import math
import pickle
from typing import Iterable, Iterator

from repro.geodesy import GeoPoint, geodesic_distance
from repro.uls.columnar import ColumnarLicenseStore
from repro.uls.index import TemporalIndex
from repro.uls.records import License

#: Spatial-grid cell size in degrees (~55 km of latitude).  Radius searches
#: scan the cells overlapping the search circle; at 10 km radii that is at
#: most four cells.
_GRID_CELL_DEG = 0.5


class DuplicateLicenseError(ValueError):
    """Raised when adding a license whose id is already present."""


class UnknownLicenseError(KeyError):
    """Raised when looking up a license id that is not on file."""


class UlsDatabase:
    """An in-memory, indexed collection of :class:`License` records."""

    def __init__(self, licenses: Iterable[License] = ()) -> None:
        self._by_id: dict[str, License] = {}
        self._by_callsign: dict[str, License] = {}
        self._by_licensee: dict[str, list[License]] = {}
        self._grid: dict[tuple[int, int], list[tuple[GeoPoint, str]]] = {}
        #: Bumped on every mutation; temporal-index consumers (the
        #: engine's snapshot cursors) compare generations to detect
        #: stale evolution state.
        self._generation: int = 0
        #: Lazily-built temporal indices: None = database-wide, a
        #: licensee name = that licensee's filings only.
        self._temporal_indices: dict[str | None, TemporalIndex] = {}
        #: Lazily-built columnar store (one per generation, like the
        #: temporal indices; invalidated by any mutation).
        self._columnar_store: ColumnarLicenseStore | None = None
        #: Cached (generation, digest) pair for :meth:`content_digest`.
        self._content_digest: tuple[int, str] | None = None
        for lic in licenses:
            self.add(lic)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, lic: License) -> None:
        """Add a license, maintaining all indices."""
        if lic.license_id in self._by_id:
            raise DuplicateLicenseError(f"duplicate license id {lic.license_id!r}")
        if lic.callsign and lic.callsign in self._by_callsign:
            raise DuplicateLicenseError(f"duplicate callsign {lic.callsign!r}")
        self._by_id[lic.license_id] = lic
        if lic.callsign:
            self._by_callsign[lic.callsign] = lic
        self._by_licensee.setdefault(lic.licensee_name, []).append(lic)
        for location in lic.locations.values():
            cell = self._cell(location.point)
            self._grid.setdefault(cell, []).append((location.point, lic.license_id))
        self._generation += 1
        self._temporal_indices.clear()
        self._columnar_store = None

    def extend(self, licenses: Iterable[License]) -> None:
        for lic in licenses:
            self.add(lic)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, license_id: str) -> License:
        """The license with ``license_id``; raises :class:`UnknownLicenseError`."""
        try:
            return self._by_id[license_id]
        except KeyError:
            raise UnknownLicenseError(license_id) from None

    def get_by_callsign(self, callsign: str) -> License:
        try:
            return self._by_callsign[callsign]
        except KeyError:
            raise UnknownLicenseError(callsign) from None

    def licenses_for(self, licensee_name: str) -> list[License]:
        """All filings by ``licensee_name`` (empty list if none)."""
        return list(self._by_licensee.get(licensee_name, ()))

    def licensee_names(self) -> list[str]:
        """All licensee names, sorted."""
        return sorted(self._by_licensee)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[License]:
        return iter(self._by_id.values())

    def __contains__(self, license_id: object) -> bool:
        return license_id in self._by_id

    # ------------------------------------------------------------------
    # Queries used by the search service
    # ------------------------------------------------------------------

    def licenses_within(self, center: GeoPoint, radius_m: float) -> list[License]:
        """Licenses with at least one location within ``radius_m`` of ``center``.

        Results are unique and ordered by license id for determinism.
        """
        if radius_m < 0.0:
            raise ValueError("radius must be non-negative")
        hits: set[str] = set()
        for cell in self._cells_overlapping(center, radius_m):
            for point, license_id in self._grid.get(cell, ()):
                if license_id in hits:
                    continue
                if geodesic_distance(center, point) <= radius_m:
                    hits.add(license_id)
        return [self._by_id[license_id] for license_id in sorted(hits)]

    def active_on(self, on_date: dt.date) -> list[License]:
        """All licenses active on ``on_date``, in filing (insertion) order.

        Served from the :class:`~repro.uls.index.TemporalIndex`: a bisect
        plus a memoised interval set instead of a per-license date scan.
        """
        active = self.temporal_index().active_ids_at(on_date)
        return [lic for lic in self._by_id.values() if lic.license_id in active]

    # ------------------------------------------------------------------
    # Temporal index
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Mutation counter: changes whenever a license is added."""
        return self._generation

    def temporal_index(self, licensee: str | None = None) -> TemporalIndex:
        """The (cached) event index over the whole database or one licensee.

        Indices are invalidated whenever a license is added; callers that
        cache derived state across mutations should also remember
        :attr:`generation` and rebuild when it moves.
        """
        index = self._temporal_indices.get(licensee)
        if index is None:
            licenses = (
                self._by_id.values()
                if licensee is None
                else self._by_licensee.get(licensee, ())
            )
            index = TemporalIndex(licenses)
            self._temporal_indices[licensee] = index
        return index

    def columnar_store(self) -> ColumnarLicenseStore:
        """The (cached) columnar view of every filing, one per generation.

        Built lazily on first use — rows grouped per licensee in
        ``licensee_names()`` order, licenses in filing (insertion) order
        — and invalidated whenever a license is added, exactly like the
        temporal indices.  The columnar reconstruction kernel
        (:mod:`repro.core.columnar`) iterates this store instead of the
        per-object license graph.
        """
        store = self._columnar_store
        if store is None or store.generation != self._generation:
            store = ColumnarLicenseStore(
                {
                    name: self._by_licensee[name]
                    for name in sorted(self._by_licensee)
                },
                generation=self._generation,
            )
            self._columnar_store = store
        return store

    def content_digest(self) -> str:
        """A stable hex digest of every license's full content.

        The persistent store (:mod:`repro.store`) keys its on-disk
        entries off this: two databases holding identical license sets
        share a digest across processes, and any mutation (generation
        bump) changes it, which is what invalidates persisted cache
        entries.  Computed from a fixed-protocol pickle of the id-sorted
        license list (field-complete and ~an order of magnitude faster
        than the repr-based digest the engine uses for small ad-hoc
        license sets), and cached per generation like the other derived
        views.
        """
        cached = self._content_digest
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        payload = pickle.dumps(
            sorted(self._by_id.values(), key=lambda lic: lic.license_id),
            protocol=4,
        )
        digest = hashlib.sha256(payload).hexdigest()
        self._content_digest = (self._generation, digest)
        return digest

    def __getstate__(self) -> dict:
        """Pickle without the derived caches (workers rebuild lazily).

        The columnar store is deliberately excluded: workers rebuild it
        from the shipped license records under their own generation
        counter rather than trusting pickled float columns.
        """
        state = self.__dict__.copy()
        state["_temporal_indices"] = {}
        state["_columnar_store"] = None
        return state

    # ------------------------------------------------------------------
    # Spatial grid internals
    # ------------------------------------------------------------------

    @staticmethod
    def _cell(point: GeoPoint) -> tuple[int, int]:
        return (
            int(math.floor(point.latitude / _GRID_CELL_DEG)),
            int(math.floor(point.longitude / _GRID_CELL_DEG)),
        )

    @staticmethod
    def _cells_overlapping(
        center: GeoPoint, radius_m: float
    ) -> Iterator[tuple[int, int]]:
        # Conservative bounding box in degrees.
        lat_pad = radius_m / 111_320.0 + 1e-9
        cos_lat = max(0.01, math.cos(math.radians(center.latitude)))
        lon_pad = radius_m / (111_320.0 * cos_lat) + 1e-9
        lat_lo = int(math.floor((center.latitude - lat_pad) / _GRID_CELL_DEG))
        lat_hi = int(math.floor((center.latitude + lat_pad) / _GRID_CELL_DEG))
        lon_lo = int(math.floor((center.longitude - lon_pad) / _GRID_CELL_DEG))
        lon_hi = int(math.floor((center.longitude + lon_pad) / _GRID_CELL_DEG))
        for lat_cell in range(lat_lo, lat_hi + 1):
            for lon_cell in range(lon_lo, lon_hi + 1):
                yield (lat_cell, lon_cell)
