"""A ULS web-portal simulator.

The paper's data pipeline scrapes HTML pages served by the FCC's Universal
Licensing System.  With no network access we cannot hit the real portal, so
this module renders equivalent pages — search result tables and license
detail pages — from a :class:`~repro.uls.database.UlsDatabase`.  The
scraper (:mod:`repro.uls.scraper`) then parses these pages exactly as it
would parse the real ones; only the HTTP transport is missing.

Pages are deliberately messy in the ways real portal pages are: values are
wrapped in presentational markup, dates use US formatting, and coordinates
are rendered as DMS strings.
"""

from __future__ import annotations

import datetime as dt
from html import escape

from repro.geodesy import GeoPoint
from repro.geodesy.coordinates import format_dms
from repro.uls.database import UlsDatabase
from repro.uls.records import License, format_date
from repro.uls.search import UlsSearchService


class PageNotFoundError(KeyError):
    """Raised when a requested page does not exist (HTTP 404 analogue)."""


def _results_table(rows: list[tuple[str, ...]], header: tuple[str, ...]) -> str:
    parts = ['<table class="results">', "<tr>"]
    parts.extend(f"<th>{escape(col)}</th>" for col in header)
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        parts.extend(f"<td>{escape(cell)}</td>" for cell in row)
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


class UlsPortal:
    """Renders ULS-style HTML pages over an in-memory license database."""

    def __init__(self, database: UlsDatabase) -> None:
        self._db = database
        self._search = UlsSearchService(database)
        self.page_requests = 0

    @property
    def database(self) -> UlsDatabase:
        return self._db

    # ------------------------------------------------------------------
    # Search pages
    # ------------------------------------------------------------------

    def geographic_search_page(
        self,
        latitude: float,
        longitude: float,
        radius_km: float,
        active_on: dt.date | None = None,
    ) -> str:
        """The searchGeographic.jsp results page."""
        self.page_requests += 1
        center = GeoPoint(latitude, longitude)
        rows = self._search.geographic_search(center, radius_km * 1000.0, active_on)
        table = _results_table(
            [
                (
                    row.callsign,
                    row.license_id,
                    row.licensee_name,
                    row.radio_service_code,
                    row.station_class,
                )
                for row in rows
            ],
            ("Call Sign", "License ID", "Licensee", "Radio Service", "Station Class"),
        )
        return (
            "<html><head><title>ULS Geographic Search Results</title></head>"
            f"<body><h1>Geographic Search</h1>"
            f"<p>Center: {latitude:.6f}, {longitude:.6f}; radius {radius_km:g} km; "
            f"{len(rows)} matches</p>{table}</body></html>"
        )

    def name_search_page(self, licensee_name: str) -> str:
        """The licensee-name search results page."""
        self.page_requests += 1
        rows = self._search.name_search(licensee_name)
        table = _results_table(
            [(row.callsign, row.license_id, row.licensee_name) for row in rows],
            ("Call Sign", "License ID", "Licensee"),
        )
        return (
            "<html><head><title>ULS License Search</title></head>"
            f"<body><h1>Licenses for {escape(licensee_name)}</h1>{table}</body></html>"
        )

    # ------------------------------------------------------------------
    # License detail page
    # ------------------------------------------------------------------

    def license_detail_page(self, license_id: str) -> str:
        """The license-detail page with dates, locations, paths, frequencies."""
        self.page_requests += 1
        try:
            lic = self._db.get(license_id)
        except KeyError:
            raise PageNotFoundError(license_id) from None
        return self._render_detail(lic)

    def _render_detail(self, lic: License) -> str:
        dates_table = _results_table(
            [
                ("Grant", format_date(lic.grant_date, "us") or "—"),
                ("Expiration", format_date(lic.expiration_date, "us") or "—"),
                ("Cancellation", format_date(lic.cancellation_date, "us") or "—"),
                ("Termination", format_date(lic.termination_date, "us") or "—"),
            ],
            ("Event", "Date"),
        ).replace('class="results"', 'class="results" id="dates"', 1)

        location_rows = []
        for number in sorted(lic.locations):
            loc = lic.locations[number]
            location_rows.append(
                (
                    str(number),
                    format_dms(loc.point.latitude, "lat", seconds_decimals=4),
                    format_dms(loc.point.longitude, "lon", seconds_decimals=4),
                    f"{loc.ground_elevation_m:.1f}",
                    f"{loc.structure_height_m:.1f}",
                    loc.site_name or "—",
                )
            )
        locations_table = _results_table(
            location_rows,
            ("Loc", "Latitude", "Longitude", "Ground Elev (m)", "Height (m)", "Site"),
        ).replace('class="results"', 'class="results" id="locations"', 1)

        path_rows = []
        for path in lic.paths:
            freq_text = ", ".join(f"{freq:.1f}" for freq in path.frequencies_mhz)
            path_rows.append(
                (
                    str(path.path_number),
                    str(path.tx_location_number),
                    str(path.rx_location_number),
                    freq_text or "—",
                )
            )
        paths_table = _results_table(
            path_rows, ("Path", "TX Loc", "RX Loc", "Frequencies (MHz)")
        ).replace('class="results"', 'class="results" id="paths"', 1)

        return (
            "<html><head><title>ULS License Detail</title></head><body>"
            f"<h1>License {escape(lic.callsign)} — {escape(lic.licensee_name)}</h1>"
            f'<p id="meta">License ID: <b>{escape(lic.license_id)}</b> | '
            f"Radio Service: <b>{escape(lic.radio_service_code)}</b> | "
            f"Station Class: <b>{escape(lic.station_class)}</b></p>"
            f'<p id="contact">Contact E-Mail: '
            f"<b>{escape(lic.contact_email) or '—'}</b></p>"
            f"<h2>Dates</h2>{dates_table}"
            f"<h2>Locations</h2>{locations_table}"
            f"<h2>Paths</h2>{paths_table}"
            "</body></html>"
        )
