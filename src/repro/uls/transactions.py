"""Incremental ULS updates: transaction logs between snapshots.

The FCC publishes full weekly dumps *and* daily/weekly transaction files;
a production pipeline ingests the full dump once and then applies
transactions.  This module provides that layer:

* derive the transaction log a period's filings imply (grants,
  cancellations, terminations with their effective dates);
* apply a log to a database, mutating license state exactly as the
  source records would;
* serialise logs in a pipe-delimited format compatible with
  :mod:`repro.uls.dumpio` (grant transactions embed the full license
  record group).

The invariant — *snapshot(t0) + transactions(t0, t1) ≡ snapshot(t1)* — is
what the tests pin down.
"""

from __future__ import annotations

import datetime as dt
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, TextIO

from repro.uls.database import UlsDatabase
from repro.uls.dumpio import DumpFormatError, read_uls_dump, write_license
from repro.uls.records import License

#: Transaction actions, in the order they apply within one day.
ACTIONS = ("grant", "cancel", "terminate")


@dataclass(frozen=True)
class Transaction:
    """One license life-cycle event."""

    date: dt.date
    action: str
    license_id: str
    license: License | None = None  # full record, for grants

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown action {self.action!r}")
        if self.action == "grant" and self.license is None:
            raise ValueError("grant transactions must carry the license record")
        if self.action != "grant" and self.license is not None:
            raise ValueError("only grant transactions carry license records")


def transactions_between(
    database: UlsDatabase, start: dt.date, end: dt.date
) -> list[Transaction]:
    """The transaction log for the half-open window (start, end].

    Events are ordered by (date, action, license id) — deterministic and
    replayable.  Candidate licenses come from the database's temporal
    index (only ids with a raw life-cycle date inside the window are
    examined), so a narrow monitoring window costs O(log n + events)
    instead of a full-database scan.
    """
    if end <= start:
        raise ValueError("window must have positive length")
    log: list[Transaction] = []
    candidates = database.temporal_index().event_ids_between(start, end)
    for license_id in candidates:
        lic = database.get(license_id)
        if lic.grant_date is not None and start < lic.grant_date <= end:
            log.append(
                Transaction(lic.grant_date, "grant", lic.license_id, license=lic)
            )
        if lic.cancellation_date is not None and start < lic.cancellation_date <= end:
            log.append(Transaction(lic.cancellation_date, "cancel", lic.license_id))
        if lic.termination_date is not None and start < lic.termination_date <= end:
            log.append(Transaction(lic.termination_date, "terminate", lic.license_id))
    log.sort(key=lambda tx: (tx.date, ACTIONS.index(tx.action), tx.license_id))
    return log


def snapshot_database(database: UlsDatabase, on_date: dt.date) -> UlsDatabase:
    """Licenses already *filed* by ``on_date`` (granted on or before it),
    with cancellation/termination dates that lie in the future removed —
    i.e. what a dump published on ``on_date`` would have contained."""
    snapshot = UlsDatabase()
    for lic in database:
        if lic.grant_date is None or lic.grant_date > on_date:
            continue
        copy = License(
            license_id=lic.license_id,
            callsign=lic.callsign,
            licensee_name=lic.licensee_name,
            contact_email=lic.contact_email,
            radio_service_code=lic.radio_service_code,
            station_class=lic.station_class,
            grant_date=lic.grant_date,
            expiration_date=lic.expiration_date,
            cancellation_date=(
                lic.cancellation_date
                if lic.cancellation_date is not None
                and lic.cancellation_date <= on_date
                else None
            ),
            termination_date=(
                lic.termination_date
                if lic.termination_date is not None
                and lic.termination_date <= on_date
                else None
            ),
            locations=dict(lic.locations),
            paths=list(lic.paths),
        )
        snapshot.add(copy)
    return snapshot


def apply_transactions(
    database: UlsDatabase, transactions: Iterable[Transaction]
) -> UlsDatabase:
    """Apply a log to ``database`` in place (returned for chaining).

    Grants add the license (idempotently skipped when already present);
    cancels/terminates stamp the effective date on the stored record.
    Unknown license ids in cancel/terminate raise — a corrupt log should
    never be half-applied silently.
    """
    for tx in transactions:
        if tx.action == "grant":
            if tx.license_id not in database:
                assert tx.license is not None
                database.add(tx.license)
        elif tx.action == "cancel":
            database.get(tx.license_id).cancellation_date = tx.date
        else:
            database.get(tx.license_id).termination_date = tx.date
    return database


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------

def write_transaction_log(
    transactions: Iterable[Transaction], destination: str | Path | TextIO
) -> None:
    """Write a log: one ``TX`` line per event; grants are followed by the
    license's dump record group."""
    def _write(out: TextIO) -> None:
        for tx in transactions:
            out.write(f"TX|{tx.date.isoformat()}|{tx.action}|{tx.license_id}\n")
            if tx.license is not None:
                write_license(tx.license, out)

    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            _write(handle)
    else:
        _write(destination)


def read_transaction_log(source: str | Path | TextIO) -> list[Transaction]:
    """Parse a transaction log written by :func:`write_transaction_log`."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = source.read()

    transactions: list[Transaction] = []
    pending: tuple[dt.date, str, str] | None = None
    buffer: list[str] = []

    def flush() -> None:
        nonlocal pending, buffer
        if pending is None:
            return
        date, action, license_id = pending
        license_record = None
        if buffer:
            (license_record,) = read_uls_dump(io.StringIO("".join(buffer)))
            if license_record.license_id != license_id:
                raise DumpFormatError(
                    f"transaction {license_id!r} embeds record for "
                    f"{license_record.license_id!r}"
                )
        transactions.append(Transaction(date, action, license_id, license_record))
        pending = None
        buffer = []

    for line in text.splitlines(keepends=True):
        if line.startswith("TX|"):
            flush()
            fields = line.rstrip("\n").split("|")
            if len(fields) != 4:
                raise DumpFormatError("TX needs 4 fields")
            pending = (dt.date.fromisoformat(fields[1]), fields[2], fields[3])
        elif line.strip():
            if pending is None:
                raise DumpFormatError("dump records outside a transaction")
            buffer.append(line)
    flush()
    return transactions
