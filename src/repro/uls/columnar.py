"""Flat, column-oriented storage of license geometry.

The cold reconstruction path walks per-object ``License`` →
``TowerLocation`` → ``MicrowavePath`` structures endpoint by endpoint;
the obs traces show most of that time inside the geodesic machinery and
the attribute-chasing around it.  :class:`ColumnarLicenseStore` lays the
same data out as parallel stdlib :mod:`array` columns — license rows,
endpoint coordinates (degrees *and* the radian/trig forms the geodesic
kernels consume), path endpoint indices, flattened frequency spans, and
activity-interval bounds — so the hot phases in
:mod:`repro.core.columnar` iterate flat numeric columns instead of
object graphs.

A store is built **once per** :attr:`repro.uls.database.UlsDatabase
.generation` (mirroring the temporal index: any mutation invalidates it)
and is deliberately *not* pickled with the database — parallel workers
rebuild their own from the shipped license records, which is cheaper and
safer than shipping derived float columns across process boundaries.

Activity intervals reuse :func:`repro.uls.index.license_interval` — the
exact half-open ``[grant, end)`` window the :class:`~repro.uls.index
.TemporalIndex` is built from — converted to proleptic-Gregorian
ordinals so the active-row scan is pure integer comparison.

The store also precomputes a table of exact Vincenty solutions for the
coordinate pairs reconstruction is known to measure: every filed path
endpoint pair (link lengths) and every pair of distinct endpoint
coordinates within :data:`NEIGHBOR_RADIUS_M` (stitching probes),
each in both directions because the scalar path is direction-sensitive
at the last ulp.  Each endpoint row carries a unique-coordinate id
(:attr:`~ColumnarLicenseStore.ep_uid`); the table is keyed by the packed
integer ``uid_a * n_coords + uid_b``, and equal uids short-circuit to a
distance of exactly 0.0 with no lookup.  Solutions come from
:func:`repro.geodesy.batch.inverse_batch` and are bit-identical to the
scalar memoised path.
"""

from __future__ import annotations

import datetime as dt
import math
from array import array
from typing import Mapping, Sequence

from repro import obs
from repro.geodesy import EARTH_MEAN_RADIUS_M, GeoPoint
from repro.geodesy.batch import inverse_batch, reduced_latitude_trig
from repro.uls.index import license_interval
from repro.uls.records import License

#: Radius (metres) within which pairs of distinct endpoint coordinates
#: get a precomputed inverse solution.  Stitching probes measure a point
#: against cluster anchors in the surrounding 3x3 grid cells, i.e. out to
#: ~2.9x the stitch tolerance — 1.2 km covers every tolerance up to
#: ~400 m (the paper's default is 30 m; the ablation sweep tops out at
#: 1 km, whose rare far probes fall through to the inline kernel).
NEIGHBOR_RADIUS_M = 1200.0

#: Activity-interval sentinel for "active indefinitely" (one past the
#: largest representable date ordinal).
FOREVER_ORDINAL = dt.date.max.toordinal() + 1

#: Stride for packing a (lat-cell, lon-cell) pair into one integer:
#: ``c_lat * _CELL_STRIDE + c_lon``.  Lon cell indices are far below the
#: stride for every tolerance the sweep uses (even 1 m tolerances index
#: at ~2·10⁷), so the packing is bijective and packed-key grid buckets
#: behave exactly like tuple-keyed ones.
CELL_STRIDE = 1 << 32


def _haversine_m(
    lat1_rad: float, lon1_rad: float, cos1: float,
    lat2_rad: float, lon2_rad: float, cos2: float,
) -> float:
    """Spherical distance over precomputed radian/cosine columns."""
    sin_dphi = math.sin((lat2_rad - lat1_rad) / 2.0)
    sin_dlam = math.sin((lon2_rad - lon1_rad) / 2.0)
    h = sin_dphi * sin_dphi + cos1 * cos2 * sin_dlam * sin_dlam
    return 2.0 * EARTH_MEAN_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


class ColumnarLicenseStore:
    """Column-oriented view of one set of license filings.

    ``groups`` maps licensee name → license sequence; rows are laid out
    contiguously per licensee, licensees in mapping order and licenses in
    sequence order, so per-licensee iteration order matches the object
    path (``UlsDatabase.licenses_for`` insertion order) exactly.

    The store is immutable once built.  Construction is confined by the
    cache-discipline lint rule to :mod:`repro.uls` and the engine module
    — everything else obtains one via
    :meth:`repro.uls.database.UlsDatabase.columnar_store`.
    """

    __slots__ = (
        "generation",
        "license_ids",
        "row_ep_start",
        "row_ep_end",
        "row_path_start",
        "row_path_end",
        "row_active_start",
        "row_active_end",
        "ep_lat",
        "ep_lon",
        "ep_lat_rad",
        "ep_lon_rad",
        "ep_cos_phi",
        "ep_sin_u",
        "ep_cos_u",
        "ep_ground",
        "ep_height",
        "ep_site",
        "ep_point",
        "ep_license_id",
        "path_tx",
        "path_rx",
        "path_freq_start",
        "freq_mhz",
        "ep_uid",
        "n_coords",
        "solutions",
        "_spans",
        "_cell_cache",
    )

    def __init__(
        self,
        groups: Mapping[str, Sequence[License]],
        *,
        generation: int = 0,
    ) -> None:
        self.generation = generation

        license_ids: list[str] = []
        row_ep_start = array("l")
        row_ep_end = array("l")
        row_path_start = array("l")
        row_path_end = array("l")
        row_active_start = array("l")
        row_active_end = array("l")

        ep_lat = array("d")
        ep_lon = array("d")
        ep_ground = array("d")
        ep_height = array("d")
        ep_site: list[str] = []
        ep_point: list[GeoPoint] = []
        ep_license_id: list[str] = []

        path_tx = array("l")
        path_rx = array("l")
        path_freq_start = array("l", [0])
        freq_mhz = array("d")

        spans: dict[str, tuple[int, int]] = {}
        # Filed (tx, rx) endpoint-row pairs, for the solutions table.
        filed_pairs: list[tuple[int, int]] = []

        for licensee, licenses in groups.items():
            row_start = len(license_ids)
            for lic in licenses:
                license_ids.append(lic.license_id)
                interval = license_interval(lic)
                if interval is None:
                    # Never active: an empty integer window.
                    row_active_start.append(0)
                    row_active_end.append(0)
                else:
                    start, end = interval
                    row_active_start.append(start.toordinal())
                    row_active_end.append(
                        FOREVER_ORDINAL if end is None else end.toordinal()
                    )

                ep_base = len(ep_lat)
                row_ep_start.append(ep_base)
                # location number -> endpoint row, for path resolution.
                number_to_row: dict[int, int] = {}
                for number, location in lic.locations.items():
                    number_to_row[number] = len(ep_lat)
                    point = location.point
                    ep_lat.append(point.latitude)
                    ep_lon.append(point.longitude)
                    ep_ground.append(location.ground_elevation_m)
                    ep_height.append(location.structure_height_m)
                    ep_site.append(location.site_name)
                    ep_point.append(point)
                    ep_license_id.append(lic.license_id)
                row_ep_end.append(len(ep_lat))

                row_path_start.append(len(path_tx))
                for path in lic.paths:
                    tx_row = number_to_row[path.tx_location_number]
                    rx_row = number_to_row[path.rx_location_number]
                    path_tx.append(tx_row)
                    path_rx.append(rx_row)
                    freq_mhz.extend(path.frequencies_mhz)
                    path_freq_start.append(len(freq_mhz))
                    filed_pairs.append((tx_row, rx_row))
                row_path_end.append(len(path_tx))
            spans[licensee] = (row_start, len(license_ids))

        self.license_ids = tuple(license_ids)
        self.row_ep_start = row_ep_start
        self.row_ep_end = row_ep_end
        self.row_path_start = row_path_start
        self.row_path_end = row_path_end
        self.row_active_start = row_active_start
        self.row_active_end = row_active_end
        self.ep_lat = ep_lat
        self.ep_lon = ep_lon
        self.ep_ground = ep_ground
        self.ep_height = ep_height
        self.ep_site = tuple(ep_site)
        self.ep_point = tuple(ep_point)
        self.ep_license_id = tuple(ep_license_id)
        self.path_tx = path_tx
        self.path_rx = path_rx
        self.path_freq_start = path_freq_start
        self.freq_mhz = freq_mhz
        self._spans = spans
        self._cell_cache: dict[float, array] = {}

        # Derived per-endpoint trig columns (radians, haversine cosines,
        # Vincenty reduced-latitude sin/cos), computed once per *unique*
        # coordinate and broadcast to rows.
        with obs.span(
            "kernel.columnar.store.build",
            licenses=len(self.license_ids),
            endpoints=len(ep_lat),
            paths=len(path_tx),
        ) as span:
            self._build_trig_columns()
            pairs, uid_rows = self._solution_pairs(filed_pairs)
            self._build_solutions(pairs, uid_rows)
            span.tag(solutions=len(self.solutions))
        obs.count("kernel.columnar.store.build")

    # ------------------------------------------------------------------
    # Derived columns + precomputed solutions
    # ------------------------------------------------------------------

    def _build_trig_columns(self) -> None:
        ep_lat, ep_lon = self.ep_lat, self.ep_lon
        lat_rad = array("d", bytes(8 * len(ep_lat)))
        lon_rad = array("d", bytes(8 * len(ep_lat)))
        cos_phi = array("d", bytes(8 * len(ep_lat)))
        sin_u = array("d", bytes(8 * len(ep_lat)))
        cos_u = array("d", bytes(8 * len(ep_lat)))
        trig_memo: dict[float, tuple[float, float, float, float]] = {}
        for row, lat in enumerate(ep_lat):
            cached = trig_memo.get(lat)
            if cached is None:
                rad = math.radians(lat)
                su, cu = reduced_latitude_trig(lat)
                cached = (rad, math.cos(rad), su, cu)
                trig_memo[lat] = cached
            lat_rad[row], cos_phi[row], sin_u[row], cos_u[row] = cached
            lon_rad[row] = math.radians(ep_lon[row])
        self.ep_lat_rad = lat_rad
        self.ep_lon_rad = lon_rad
        self.ep_cos_phi = cos_phi
        self.ep_sin_u = sin_u
        self.ep_cos_u = cos_u

    def _solution_pairs(
        self, filed_pairs: list[tuple[int, int]]
    ) -> tuple[list[tuple[int, int]], list[int]]:
        """Unique-coordinate index pairs worth pre-solving, both ways.

        Covers every filed path pair (link lengths) and every pair of
        distinct coordinates within :data:`NEIGHBOR_RADIUS_M` (stitch
        probes).  Both directions are included: Vincenty's inverse is
        direction-sensitive in the last ulp, and byte-identity to the
        object kernel requires solving the exact direction it would.
        Returns the sorted pair list and the uid → endpoint-row map.

        As a side effect this assigns every endpoint row its
        unique-coordinate id (:attr:`ep_uid`): solutions are keyed by the
        packed integer ``uid_a * n_coords + uid_b``, and equal uids mean
        bitwise-equal coordinates (geodesic distance exactly 0.0 — the
        kernels need no lookup at all for that case).
        """
        ep_lat, ep_lon = self.ep_lat, self.ep_lon
        coord_uid: dict[tuple[float, float], int] = {}
        row_uid = array("l", [0]) * len(ep_lat)
        uid_rows: list[int] = []
        for row in range(len(ep_lat)):
            key = (ep_lat[row], ep_lon[row])
            uid = coord_uid.get(key)
            if uid is None:
                uid = len(uid_rows)
                coord_uid[key] = uid
                uid_rows.append(row)
            row_uid[row] = uid
        self.ep_uid = row_uid
        self.n_coords = len(uid_rows)

        pairs: set[tuple[int, int]] = set()
        for tx_row, rx_row in filed_pairs:
            a, b = row_uid[tx_row], row_uid[rx_row]
            if a != b:
                pairs.add((a, b))
                pairs.add((b, a))

        # Neighbour pairs: bucket unique coordinates into cells roughly
        # NEIGHBOR_RADIUS_M on a side and compare within the 3x3 block.
        cell_lat = NEIGHBOR_RADIUS_M / 111_320.0
        grid: dict[tuple[int, int], list[int]] = {}
        lat_rad, lon_rad, cos_phi = self.ep_lat_rad, self.ep_lon_rad, self.ep_cos_phi
        for uid, row in enumerate(uid_rows):
            cos_lat = max(0.01, cos_phi[row])
            cell = (
                int(ep_lat[row] // cell_lat),
                int(ep_lon[row] // (NEIGHBOR_RADIUS_M / (111_320.0 * cos_lat))),
            )
            grid.setdefault(cell, []).append(uid)
        for (cell_a, cell_b), members in grid.items():
            neighbourhood: list[int] = []
            for d_lat in (-1, 0, 1):
                for d_lon in (-1, 0, 1):
                    neighbourhood.extend(
                        grid.get((cell_a + d_lat, cell_b + d_lon), ())
                    )
            for uid in members:
                row = uid_rows[uid]
                for other in neighbourhood:
                    if other == uid:
                        continue
                    other_row = uid_rows[other]
                    if (
                        _haversine_m(
                            lat_rad[row], lon_rad[row], cos_phi[row],
                            lat_rad[other_row], lon_rad[other_row],
                            cos_phi[other_row],
                        )
                        <= NEIGHBOR_RADIUS_M
                    ):
                        pairs.add((uid, other))
                        pairs.add((other, uid))
        return sorted(pairs), uid_rows

    def _build_solutions(
        self, pairs: list[tuple[int, int]], uid_rows: list[int]
    ) -> None:
        ep_lat, ep_lon = self.ep_lat, self.ep_lon
        lats = [ep_lat[row] for row in uid_rows]
        lons = [ep_lon[row] for row in uid_rows]
        solved = inverse_batch(lats, lons, pairs)
        n = self.n_coords
        self.solutions = {
            i * n + j: solution for (i, j), solution in zip(pairs, solved)
        }

    def cells_for(self, tolerance_m: float) -> array:
        """Per-endpoint stitch-grid cell ids for ``tolerance_m``, packed.

        Each entry is ``c_lat * CELL_STRIDE + c_lon`` with the exact
        :func:`repro.geodesy.coordinates.coordinate_key` cell arithmetic
        (per-endpoint longitude cell width from the clamped cosine
        column).  Cached per tolerance: a parameter sweep computes each
        tolerance's column once, and every reconstruction at that
        tolerance reads it back.
        """
        cells = self._cell_cache.get(tolerance_m)
        if cells is None:
            ep_lat, ep_lon, cos_phi = self.ep_lat, self.ep_lon, self.ep_cos_phi
            cell_deg_lat = tolerance_m / 111_320.0
            cells = array("q", bytes(8 * len(ep_lat)))
            for row in range(len(ep_lat)):
                cos_lat = max(0.01, cos_phi[row])
                cells[row] = int(ep_lat[row] // cell_deg_lat) * CELL_STRIDE + int(
                    ep_lon[row] // (tolerance_m / (111_320.0 * cos_lat))
                )
            self._cell_cache[tolerance_m] = cells
        return cells

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def licensees(self) -> tuple[str, ...]:
        return tuple(self._spans)

    def span(self, licensee: str) -> tuple[int, int]:
        """The ``[start, end)`` license-row span of ``licensee``."""
        return self._spans.get(licensee, (0, 0))

    def active_rows(self, licensee: str, on_date: dt.date) -> list[int]:
        """License rows of ``licensee`` active on ``on_date``, row order.

        Row order is filing (insertion) order, so the object path's
        ``active_licenses(licenses_for(...))`` sequence is reproduced
        exactly.
        """
        ordinal = on_date.toordinal()
        start, end = self.span(licensee)
        active_start, active_end = self.row_active_start, self.row_active_end
        return [
            row
            for row in range(start, end)
            if active_start[row] <= ordinal < active_end[row]
        ]

    def active_ids(self, licensee: str, on_date: dt.date) -> frozenset[str]:
        """The active-license fingerprint — the snapshot-cache key column.

        Equals the object path's per-filing ``License.is_active`` scan
        (``license_interval`` mirrors ``is_active`` exactly).
        """
        ids = self.license_ids
        return frozenset(
            ids[row] for row in self.active_rows(licensee, on_date)
        )

    def __len__(self) -> int:
        return len(self.license_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarLicenseStore(licenses={len(self.license_ids)}, "
            f"endpoints={len(self.ep_lat)}, paths={len(self.path_tx)}, "
            f"solutions={len(self.solutions)}, generation={self.generation})"
        )
