"""Temporal event index over license life-cycle dates.

The longitudinal pipeline (Fig 1/2 timelines, §4 date sweeps, corridor
monitoring) asks the same question over and over: *which licenses are
active on this date?*  Answering it by scanning every license record is
O(n) per date — fine for eight paper dates, quadratic-feeling for the
dense weekly and monthly grids a production pipeline replays constantly.

:class:`TemporalIndex` precomputes the answer's structure once.  Every
license contributes at most two *events* — it becomes active on its grant
date and inactive on the earliest of its cancellation / termination /
expiration dates (the exact half-open ``[grant, end)`` window
:meth:`repro.uls.records.License.is_active` implements).  Sorting the
distinct event dates yields a timeline of *intervals* within which the
active set is constant, so

* ``active_ids_at(date)`` is a ``bisect`` plus a memoised per-interval
  frozenset — O(log n) warm;
* ``active_count_at(date)`` is a ``bisect`` into a cumulative-count
  array — O(log n) always, no set materialised;
* ``diff(d1, d2)`` walks only the events *between* two dates and returns
  the ``(granted, lapsed)`` delta — the primitive the
  :class:`~repro.core.engine.CorridorEngine` evolves snapshots with.

Because each license has a single activity interval (ULS filings are not
re-granted under the same id), window deltas reduce to set arithmetic:
ids granted and lapsed inside the same window cancel out.
"""

from __future__ import annotations

import datetime as dt
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.uls.records import License

#: Cap on memoised per-interval active sets.  Dense corridor grids touch
#: a few hundred distinct intervals; the cap only guards pathological
#: daily-grid-over-decades callers from unbounded growth.
_INTERVAL_SET_CAP = 1024


def license_interval(lic: License) -> tuple[dt.date, dt.date | None] | None:
    """The half-open ``[start, end)`` window in which ``lic`` is active.

    ``None`` when the license is never active (no grant date, or an end
    date on/before the grant).  ``end`` is ``None`` for licenses active
    indefinitely.  Mirrors :meth:`License.is_active` exactly — property-
    tested in ``tests/test_temporal_index.py``.
    """
    if lic.grant_date is None:
        return None
    end: dt.date | None = None
    for candidate in (
        lic.cancellation_date,
        lic.termination_date,
        lic.expiration_date,
    ):
        if candidate is not None and (end is None or candidate < end):
            end = candidate
    if end is not None and end <= lic.grant_date:
        return None
    return (lic.grant_date, end)


@dataclass(frozen=True, slots=True)
class TemporalDelta:
    """What changed between two dates: ids granted, ids lapsed.

    ``apply`` evolves an active-set fingerprint from the first date to
    the second: ``active(d2) == delta.apply(active(d1))``.  An empty
    delta is the licence-to-reuse a cached snapshot outright.
    """

    granted: frozenset[str]
    lapsed: frozenset[str]

    def __bool__(self) -> bool:
        return bool(self.granted or self.lapsed)

    @property
    def is_empty(self) -> bool:
        return not (self.granted or self.lapsed)

    @property
    def size(self) -> int:
        """Total ids touched (granted + lapsed)."""
        return len(self.granted) + len(self.lapsed)

    def apply(self, fingerprint: frozenset[str]) -> frozenset[str]:
        """Evolve ``fingerprint`` (active ids at d1) to the d2 active set."""
        return (fingerprint - self.lapsed) | self.granted

    def reversed(self) -> "TemporalDelta":
        """The delta walking the same window backwards."""
        return TemporalDelta(granted=self.lapsed, lapsed=self.granted)


_EMPTY_DELTA = TemporalDelta(granted=frozenset(), lapsed=frozenset())


class TemporalIndex:
    """A sorted event index over one set of licenses.

    The index is immutable once built; :class:`~repro.uls.database
    .UlsDatabase` caches one per licensee (plus one database-wide) and
    invalidates them when a license is added.
    """

    __slots__ = (
        "_dates",
        "_added",
        "_removed",
        "_cum_counts",
        "_raw_dates",
        "_raw_ids",
        "_interval_sets",
        "_cursor",
        "event_count",
    )

    def __init__(self, licenses: Iterable[License]) -> None:
        adds: dict[dt.date, list[str]] = {}
        removes: dict[dt.date, list[str]] = {}
        raw: dict[dt.date, set[str]] = {}
        for lic in licenses:
            for candidate in (
                lic.grant_date,
                lic.cancellation_date,
                lic.termination_date,
                lic.expiration_date,
            ):
                if candidate is not None:
                    raw.setdefault(candidate, set()).add(lic.license_id)
            interval = license_interval(lic)
            if interval is None:
                continue
            start, end = interval
            adds.setdefault(start, []).append(lic.license_id)
            if end is not None:
                removes.setdefault(end, []).append(lic.license_id)

        self._dates: list[dt.date] = sorted(set(adds) | set(removes))
        self._added: list[tuple[str, ...]] = []
        self._removed: list[tuple[str, ...]] = []
        self._cum_counts: list[int] = [0]
        count = 0
        events = 0
        for date in self._dates:
            added = tuple(sorted(adds.get(date, ())))
            removed = tuple(sorted(removes.get(date, ())))
            self._added.append(added)
            self._removed.append(removed)
            count += len(added) - len(removed)
            events += len(added) + len(removed)
            self._cum_counts.append(count)

        self._raw_dates: list[dt.date] = sorted(raw)
        self._raw_ids: list[frozenset[str]] = [
            frozenset(raw[date]) for date in self._raw_dates
        ]
        self._interval_sets: dict[int, frozenset[str]] = {}
        # (interval, mutable working set) — the evolution cursor.
        self._cursor: tuple[int, set[str]] = (0, set())
        #: Total activation/deactivation events on the timeline.
        self.event_count: int = events

    @classmethod
    def for_licenses(cls, licenses: Iterable[License]) -> "TemporalIndex":
        return cls(licenses)

    # ------------------------------------------------------------------
    # Interval arithmetic
    # ------------------------------------------------------------------

    def interval_of(self, on_date: dt.date) -> int:
        """The index of the constant-active-set interval holding ``on_date``.

        Interval ``i`` is the state after the events at the first ``i``
        event dates have fired; interval 0 precedes every event.
        """
        return bisect_right(self._dates, on_date)

    def active_count_at(self, on_date: dt.date) -> int:
        """How many licenses are active on ``on_date`` (no set built)."""
        return self._cum_counts[self.interval_of(on_date)]

    def active_ids_at(self, on_date: dt.date) -> frozenset[str]:
        """The ids active on ``on_date`` — the snapshot fingerprint.

        Warm calls are a bisect plus a dict hit: per-interval sets are
        memoised, and cold intervals are evolved from the nearest cursor
        instead of rebuilt from scratch.
        """
        return self._interval_set(self.interval_of(on_date))

    def _interval_set(self, target: int) -> frozenset[str]:
        memo = self._interval_sets
        cached = memo.get(target)
        if cached is not None:
            return cached
        origin, state = self._cursor
        if abs(target - origin) >= target:
            origin, working = 0, set()
        else:
            working = set(state)
        if target >= origin:
            for i in range(origin, target):
                working.difference_update(self._removed[i])
                working.update(self._added[i])
        else:
            for i in range(origin - 1, target - 1, -1):
                working.difference_update(self._added[i])
                working.update(self._removed[i])
        frozen = frozenset(working)
        if len(memo) >= _INTERVAL_SET_CAP:
            memo.clear()
        memo[target] = frozen
        self._cursor = (target, working)
        return frozen

    # ------------------------------------------------------------------
    # Deltas
    # ------------------------------------------------------------------

    def diff(self, d1: dt.date, d2: dt.date) -> TemporalDelta:
        """The ``(granted, lapsed)`` delta from ``d1`` to ``d2``.

        ``granted`` holds ids active on ``d2`` but not ``d1``; ``lapsed``
        the reverse.  Walking backwards (``d2 < d1``) swaps the roles.
        Cost is proportional to the number of events strictly between the
        two dates, not to the size of the license set.
        """
        if d1 == d2:
            return _EMPTY_DELTA
        if d2 < d1:
            return self.diff(d2, d1).reversed()
        lo = self.interval_of(d1)
        hi = self.interval_of(d2)
        if lo == hi:
            return _EMPTY_DELTA
        added: set[str] = set()
        removed: set[str] = set()
        for i in range(lo, hi):
            added.update(self._added[i])
            removed.update(self._removed[i])
        # Single activity interval per license: an id that both starts
        # and ends inside the window is a net no-op.
        return TemporalDelta(
            granted=frozenset(added - removed),
            lapsed=frozenset(removed - added),
        )

    def event_ids_between(self, start: dt.date, end: dt.date) -> list[str]:
        """Ids with *any* raw life-cycle date in ``(start, end]``, sorted.

        Raw events include every recorded date field — e.g. a termination
        date recorded after an earlier effective cancellation — so this
        is the exact candidate set for transaction-log construction
        (:func:`repro.uls.transactions.transactions_between`).
        """
        if end <= start:
            raise ValueError("window must have positive length")
        lo = bisect_right(self._raw_dates, start)
        hi = bisect_right(self._raw_dates, end)
        ids: set[str] = set()
        for i in range(lo, hi):
            ids.update(self._raw_ids[i])
        return sorted(ids)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def event_dates(self) -> Sequence[dt.date]:
        """The distinct activation/deactivation dates, ascending."""
        return tuple(self._dates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TemporalIndex(events={self.event_count}, "
            f"intervals={len(self._dates) + 1})"
        )
