"""Pipe-delimited ULS dump reader/writer.

The FCC publishes ULS data as pipe-delimited files with one record type per
line.  We implement the subset of record types the reconstruction needs,
mirroring the real layout (record-type tag first, license identifier
second):

``HD`` — license header: id, call sign, radio service, station class,
grant/expiration/cancellation/termination dates (ISO).
``EN`` — entity: licensee name and filing contact e-mail.
``LO`` — location: number, split DMS latitude/longitude, ground elevation
(m), structure height (m), site name.
``PA`` — path: number, tx location number, rx location number.
``FR`` — frequency: path number, frequency (MHz).

Records for one license are contiguous and start with its ``HD`` line, as
in the real dumps.  Pipes are not escaped (the FCC format has no escaping),
so field values must not contain ``|``.
"""

from __future__ import annotations

import io
import math
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.geodesy import GeoPoint
from repro.geodesy.coordinates import parse_uls_coordinate
from repro.uls.records import (
    License,
    MicrowavePath,
    TowerLocation,
    format_date,
    parse_date,
)


class DumpFormatError(ValueError):
    """Raised on malformed dump content."""


def _check_field(value: str) -> str:
    if "|" in value or "\n" in value:
        raise DumpFormatError(f"field value may not contain '|' or newline: {value!r}")
    return value


def _split_dms(value: float) -> tuple[int, int, float]:
    """Split decimal degrees magnitude into (deg, min, sec)."""
    magnitude = abs(value)
    degrees = int(magnitude)
    rem = (magnitude - degrees) * 60.0
    minutes = int(rem)
    seconds = (rem - minutes) * 60.0
    # Guard against floating point pushing seconds to 60.
    if seconds >= 59.9999999:
        seconds = 0.0
        minutes += 1
        if minutes == 60:
            minutes = 0
            degrees += 1
    return degrees, minutes, seconds


def write_license(lic: License, out: TextIO) -> None:
    """Write one license's record group to ``out``."""
    out.write(
        "|".join(
            [
                "HD",
                _check_field(lic.license_id),
                _check_field(lic.callsign),
                _check_field(lic.radio_service_code),
                _check_field(lic.station_class),
                format_date(lic.grant_date),
                format_date(lic.expiration_date),
                format_date(lic.cancellation_date),
                format_date(lic.termination_date),
            ]
        )
        + "\n"
    )
    out.write(
        f"EN|{lic.license_id}|{_check_field(lic.licensee_name)}"
        f"|{_check_field(lic.contact_email)}\n"
    )
    for number in sorted(lic.locations):
        loc = lic.locations[number]
        lat_d, lat_m, lat_s = _split_dms(loc.point.latitude)
        lon_d, lon_m, lon_s = _split_dms(loc.point.longitude)
        lat_h = "N" if loc.point.latitude >= 0 else "S"
        lon_h = "E" if loc.point.longitude >= 0 else "W"
        out.write(
            "|".join(
                [
                    "LO",
                    lic.license_id,
                    str(number),
                    str(lat_d),
                    str(lat_m),
                    f"{lat_s:.4f}",
                    lat_h,
                    str(lon_d),
                    str(lon_m),
                    f"{lon_s:.4f}",
                    lon_h,
                    f"{loc.ground_elevation_m:.1f}",
                    f"{loc.structure_height_m:.1f}",
                    _check_field(loc.site_name),
                ]
            )
            + "\n"
        )
    for path in lic.paths:
        out.write(
            f"PA|{lic.license_id}|{path.path_number}"
            f"|{path.tx_location_number}|{path.rx_location_number}\n"
        )
        for freq in path.frequencies_mhz:
            out.write(f"FR|{lic.license_id}|{path.path_number}|{freq:.1f}\n")


def write_uls_dump(licenses: Iterable[License], destination: str | Path | TextIO) -> None:
    """Write licenses to a dump file or stream."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            for lic in licenses:
                write_license(lic, handle)
    else:
        for lic in licenses:
            write_license(lic, destination)


def dumps(licenses: Iterable[License]) -> str:
    """Serialise licenses to a dump string."""
    buffer = io.StringIO()
    write_uls_dump(licenses, buffer)
    return buffer.getvalue()


def _parse_records(lines: Iterable[str]) -> Iterator[License]:
    current: dict | None = None

    def finish(record: dict) -> License:
        paths = []
        for number in sorted(record["paths"]):
            tx, rx = record["paths"][number]
            freqs = tuple(record["freqs"].get(number, ()))
            paths.append(
                MicrowavePath(
                    path_number=number,
                    tx_location_number=tx,
                    rx_location_number=rx,
                    frequencies_mhz=freqs,
                )
            )
        return License(
            license_id=record["license_id"],
            callsign=record["callsign"],
            licensee_name=record["licensee_name"],
            contact_email=record["contact_email"],
            radio_service_code=record["service"],
            station_class=record["station_class"],
            grant_date=record["grant"],
            expiration_date=record["expiration"],
            cancellation_date=record["cancellation"],
            termination_date=record["termination"],
            locations=record["locations"],
            paths=paths,
        )

    for line_number, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if not line:
            continue
        fields = line.split("|")
        tag = fields[0]
        if tag == "HD":
            if current is not None:
                yield finish(current)
            if len(fields) != 9:
                raise DumpFormatError(f"line {line_number}: HD needs 9 fields")
            current = {
                "license_id": fields[1],
                "callsign": fields[2],
                "service": fields[3],
                "station_class": fields[4],
                "grant": parse_date(fields[5]),
                "expiration": parse_date(fields[6]),
                "cancellation": parse_date(fields[7]),
                "termination": parse_date(fields[8]),
                "licensee_name": "",
                "contact_email": "",
                "locations": {},
                "paths": {},
                "freqs": {},
            }
            continue
        if current is None:
            raise DumpFormatError(f"line {line_number}: {tag} record before any HD")
        if fields[1] != current["license_id"]:
            raise DumpFormatError(
                f"line {line_number}: {tag} for {fields[1]!r} inside "
                f"{current['license_id']!r} group"
            )
        if tag == "EN":
            if len(fields) not in (3, 4):
                raise DumpFormatError(f"line {line_number}: EN needs 3 or 4 fields")
            current["licensee_name"] = fields[2]
            if len(fields) == 4:
                current["contact_email"] = fields[3]
        elif tag == "LO":
            if len(fields) != 14:
                raise DumpFormatError(f"line {line_number}: LO needs 14 fields")
            number = int(fields[2])
            latitude = parse_uls_coordinate(fields[3], fields[4], fields[5], fields[6])
            longitude = parse_uls_coordinate(fields[7], fields[8], fields[9], fields[10])
            current["locations"][number] = TowerLocation(
                location_number=number,
                point=GeoPoint(latitude, longitude),
                ground_elevation_m=float(fields[11]),
                structure_height_m=float(fields[12]),
                site_name=fields[13],
            )
        elif tag == "PA":
            if len(fields) != 5:
                raise DumpFormatError(f"line {line_number}: PA needs 5 fields")
            current["paths"][int(fields[2])] = (int(fields[3]), int(fields[4]))
        elif tag == "FR":
            if len(fields) != 4:
                raise DumpFormatError(f"line {line_number}: FR needs 4 fields")
            frequency = float(fields[3])
            if not math.isfinite(frequency) or frequency <= 0.0:
                raise DumpFormatError(f"line {line_number}: bad frequency {fields[3]!r}")
            current["freqs"].setdefault(int(fields[2]), []).append(frequency)
        else:
            raise DumpFormatError(f"line {line_number}: unknown record type {tag!r}")

    if current is not None:
        yield finish(current)


def read_uls_dump(source: str | Path | TextIO) -> list[License]:
    """Read licenses from a dump file, stream, or path."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return list(_parse_records(handle))
    return list(_parse_records(source))


def loads(text: str) -> list[License]:
    """Parse licenses from a dump string."""
    return list(_parse_records(io.StringIO(text)))
