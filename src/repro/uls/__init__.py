"""FCC Universal Licensing System (ULS) substrate.

The paper reconstructs HFT networks from FCC microwave license filings
retrieved through the ULS web portal.  This subpackage provides an
in-process equivalent:

* :mod:`repro.uls.records` — the license data model (licenses, tower
  locations, microwave paths, frequencies, life-cycle dates);
* :mod:`repro.uls.database` — an indexed in-memory license store;
* :mod:`repro.uls.index` — the temporal event index: O(log n) active-set
  lookups and ``diff(d1, d2)`` deltas over license life-cycle dates;
* :mod:`repro.uls.columnar` — flat column-oriented license storage (one
  store per database generation) backing the columnar reconstruction
  kernel;
* :mod:`repro.uls.search` — the four search interfaces the paper uses
  (geographic, site-based, licensee-name, license-detail);
* :mod:`repro.uls.dumpio` — reader/writer for the pipe-delimited ULS
  weekly-dump format (``HD``/``EN``/``LO``/``PA``/``FR`` records);
* :mod:`repro.uls.portal` — a web-portal simulator that renders license
  search results and license detail pages as HTML;
* :mod:`repro.uls.scraper` — the scraping client that parses those pages,
  exercising the same code path as scraping the real portal;
* :mod:`repro.uls.transactions` — incremental updates: transaction logs
  between snapshots (the weekly-file layer of a production pipeline);
* :mod:`repro.uls.validation` — data-quality scrubbing before geometry.
"""

from repro.uls.records import (
    License,
    MicrowavePath,
    TowerLocation,
    active_licenses,
)
from repro.uls.columnar import ColumnarLicenseStore
from repro.uls.database import UlsDatabase
from repro.uls.index import TemporalDelta, TemporalIndex, license_interval
from repro.uls.search import UlsSearchService
from repro.uls.dumpio import read_uls_dump, write_uls_dump
from repro.uls.portal import UlsPortal
from repro.uls.scraper import UlsScraper
from repro.uls.transactions import (
    Transaction,
    apply_transactions,
    snapshot_database,
    transactions_between,
)
from repro.uls.validation import ValidationIssue, clean_licenses, validate_licenses

__all__ = [
    "License",
    "MicrowavePath",
    "TowerLocation",
    "active_licenses",
    "UlsDatabase",
    "ColumnarLicenseStore",
    "TemporalDelta",
    "TemporalIndex",
    "license_interval",
    "UlsSearchService",
    "read_uls_dump",
    "write_uls_dump",
    "UlsPortal",
    "UlsScraper",
    "Transaction",
    "apply_transactions",
    "snapshot_database",
    "transactions_between",
    "ValidationIssue",
    "clean_licenses",
    "validate_licenses",
]
