"""Data model for FCC ULS microwave licenses.

A ULS license (identified by a call sign such as ``WRFF778``) authorises a
set of point-to-point microwave paths.  Each license lists:

* the licensee (entity name),
* life-cycle dates: grant, expiration, and — when applicable —
  cancellation and termination dates,
* numbered tower *locations* (coordinates, ground elevation, structure
  height),
* *paths*: transmitter location → receiver location pairs,
* the *frequencies* authorised on each path.

The model below captures exactly the fields the paper's methodology needs
(§2.2): dates for longitudinal reconstruction, coordinates for geometry,
and frequencies for the §5 reliability analysis.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.constants import RADIO_SERVICE_MG, STATION_CLASS_FXO
from repro.geodesy import GeoPoint, geodesic_distance


@dataclass(frozen=True, slots=True)
class TowerLocation:
    """A numbered antenna location within a license filing."""

    location_number: int
    point: GeoPoint
    ground_elevation_m: float = 0.0
    structure_height_m: float = 0.0
    site_name: str = ""

    def __post_init__(self) -> None:
        if self.location_number < 1:
            raise ValueError("ULS location numbers start at 1")
        if self.structure_height_m < 0.0:
            raise ValueError("structure height cannot be negative")

    @property
    def antenna_height_amsl_m(self) -> float:
        """Antenna height above mean sea level (ground + structure)."""
        return self.ground_elevation_m + self.structure_height_m


@dataclass(frozen=True, slots=True)
class MicrowavePath:
    """One authorised point-to-point path within a license.

    ``frequencies_mhz`` lists the centre frequencies authorised on the path
    (a transmitter may use several frequencies towards one receiver).
    """

    path_number: int
    tx_location_number: int
    rx_location_number: int
    frequencies_mhz: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.path_number < 1:
            raise ValueError("ULS path numbers start at 1")
        if self.tx_location_number == self.rx_location_number:
            raise ValueError("a path cannot loop back to its own location")
        if any(freq <= 0.0 for freq in self.frequencies_mhz):
            raise ValueError("frequencies must be positive")


@dataclass(slots=True)
class License:
    """One ULS license filing.

    ``license_id`` is the unique ULS identifier; ``callsign`` is the
    human-facing call sign printed on the portal pages.
    ``contact_email`` is the filing contact (the §6 future-work signal for
    identifying co-owned licensees); empty when not on file.  A license is
    *active* on a date if it has been granted on or before that date and
    neither cancelled nor terminated on or before it (paper §2.3).
    """

    license_id: str
    callsign: str
    licensee_name: str
    radio_service_code: str = RADIO_SERVICE_MG
    station_class: str = STATION_CLASS_FXO
    contact_email: str = ""
    grant_date: dt.date | None = None
    expiration_date: dt.date | None = None
    cancellation_date: dt.date | None = None
    termination_date: dt.date | None = None
    locations: dict[int, TowerLocation] = field(default_factory=dict)
    paths: list[MicrowavePath] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.license_id:
            raise ValueError("license_id must be non-empty")
        if not self.licensee_name:
            raise ValueError("licensee_name must be non-empty")
        self.validate_references()

    def validate_references(self) -> None:
        """Check that every path references defined location numbers."""
        for path in self.paths:
            if path.tx_location_number not in self.locations:
                raise ValueError(
                    f"license {self.license_id}: path {path.path_number} "
                    f"references undefined tx location {path.tx_location_number}"
                )
            if path.rx_location_number not in self.locations:
                raise ValueError(
                    f"license {self.license_id}: path {path.path_number} "
                    f"references undefined rx location {path.rx_location_number}"
                )

    def is_active(self, on_date: dt.date) -> bool:
        """Whether the license authorises transmission on ``on_date``.

        Mirrors the paper's rule: granted, and not cancelled/terminated.
        A missing grant date means the filing is still pending — inactive.
        The cancellation/termination date itself counts as inactive (the
        FCC records the date the authorisation ends).
        """
        if self.grant_date is None or on_date < self.grant_date:
            return False
        if self.cancellation_date is not None and on_date >= self.cancellation_date:
            return False
        if self.termination_date is not None and on_date >= self.termination_date:
            return False
        if self.expiration_date is not None and on_date >= self.expiration_date:
            return False
        return True

    def path_endpoints(self, path: MicrowavePath) -> tuple[TowerLocation, TowerLocation]:
        """The (tx, rx) tower locations of ``path``."""
        return (
            self.locations[path.tx_location_number],
            self.locations[path.rx_location_number],
        )

    def path_length_m(self, path: MicrowavePath) -> float:
        """Geodesic length of a path in metres."""
        tx, rx = self.path_endpoints(path)
        return geodesic_distance(tx.point, rx.point)

    def iter_links(self) -> Iterator[tuple[TowerLocation, TowerLocation, MicrowavePath]]:
        """Yield (tx, rx, path) for every authorised path."""
        for path in self.paths:
            tx, rx = self.path_endpoints(path)
            yield (tx, rx, path)

    @property
    def all_frequencies_mhz(self) -> tuple[float, ...]:
        """All frequencies authorised anywhere on the license, sorted."""
        freqs: list[float] = []
        for path in self.paths:
            freqs.extend(path.frequencies_mhz)
        return tuple(sorted(freqs))


def active_licenses(
    licenses: Iterable[License], on_date: dt.date
) -> list[License]:
    """Filter ``licenses`` to the ones active on ``on_date``."""
    return [lic for lic in licenses if lic.is_active(on_date)]


def licenses_by_licensee(licenses: Iterable[License]) -> dict[str, list[License]]:
    """Group licenses by licensee name, preserving insertion order."""
    grouped: dict[str, list[License]] = {}
    for lic in licenses:
        grouped.setdefault(lic.licensee_name, []).append(lic)
    return grouped


def parse_date(text: str | None) -> dt.date | None:
    """Parse a ULS date.

    Accepts ISO (``2020-04-01``) and the portal's US style
    (``04/01/2020``); empty/None mean "no date on file".
    """
    if text is None:
        return None
    text = text.strip()
    if not text:
        return None
    if "/" in text:
        month, day, year = text.split("/")
        return dt.date(int(year), int(month), int(day))
    return dt.date.fromisoformat(text)


def format_date(value: dt.date | None, style: str = "iso") -> str:
    """Format a date for dumps (``iso``) or portal pages (``us``)."""
    if value is None:
        return ""
    if style == "iso":
        return value.isoformat()
    if style == "us":
        return f"{value.month:02d}/{value.day:02d}/{value.year:04d}"
    raise ValueError(f"unknown date style: {style!r}")


def total_filings(licenses: Sequence[License]) -> int:
    """Number of license filings (the paper's shortlisting unit, §2.2)."""
    return len(licenses)
