"""The four ULS search interfaces the paper's methodology uses (§2.1).

* *Geographic* search: licenses within a radius of a location.
* *Site-based* search: filter by radio service code and station class.
* *Name* search: licenses filed by a given licensee.
* *License detail*: full record for one license id.

These mirror the FCC portal's semantics so the paper's scraping funnel
(geographic search around CME → MG/FXO filter → per-licensee license lists
→ per-license details) can be replayed verbatim.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

from repro.constants import (
    CME_SEARCH_RADIUS_M,
    RADIO_SERVICE_MG,
    STATION_CLASS_FXO,
)
from repro.geodesy import GeoPoint
from repro.uls.database import UlsDatabase
from repro.uls.records import License


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One row of a portal search-results page."""

    license_id: str
    callsign: str
    licensee_name: str
    radio_service_code: str
    station_class: str


def _row(lic: License) -> SearchResult:
    return SearchResult(
        license_id=lic.license_id,
        callsign=lic.callsign,
        licensee_name=lic.licensee_name,
        radio_service_code=lic.radio_service_code,
        station_class=lic.station_class,
    )


class UlsSearchService:
    """Query layer over a :class:`UlsDatabase`, one method per portal page."""

    def __init__(self, database: UlsDatabase) -> None:
        self._db = database

    @property
    def database(self) -> UlsDatabase:
        return self._db

    # ------------------------------------------------------------------
    # Portal-equivalent searches
    # ------------------------------------------------------------------

    def geographic_search(
        self,
        center: GeoPoint,
        radius_m: float = CME_SEARCH_RADIUS_M,
        active_on: dt.date | None = None,
    ) -> list[SearchResult]:
        """Licenses with an endpoint within ``radius_m`` of ``center``.

        ``active_on`` optionally restricts to licenses active on that date
        (the portal's "active licenses" checkbox).  The active-set filter
        is a membership test against the database's temporal index — one
        bisect for the whole search instead of a date comparison per hit.
        """
        active_ids = (
            self._db.temporal_index().active_ids_at(active_on)
            if active_on is not None
            else None
        )
        rows = []
        for lic in self._db.licenses_within(center, radius_m):
            if active_ids is not None and lic.license_id not in active_ids:
                continue
            rows.append(_row(lic))
        return rows

    def site_search(
        self,
        radio_service_code: str = RADIO_SERVICE_MG,
        station_class: str = STATION_CLASS_FXO,
        within: list[SearchResult] | None = None,
    ) -> list[SearchResult]:
        """Filter by service code and station class.

        When ``within`` is given, filters those rows (the paper applies the
        site-based criteria to the geographic results); otherwise searches
        the whole database.
        """
        if within is not None:
            return [
                row
                for row in within
                if row.radio_service_code == radio_service_code
                and row.station_class == station_class
            ]
        return [
            _row(lic)
            for lic in self._db
            if lic.radio_service_code == radio_service_code
            and lic.station_class == station_class
        ]

    def name_search(self, licensee_name: str) -> list[SearchResult]:
        """All filings by an exact licensee name."""
        return [_row(lic) for lic in self._db.licenses_for(licensee_name)]

    def license_detail(self, license_id: str) -> License:
        """The full license record (the portal's license-detail page)."""
        return self._db.get(license_id)

    # ------------------------------------------------------------------
    # Convenience aggregations used by the analysis funnel
    # ------------------------------------------------------------------

    def candidate_licensees(
        self,
        center: GeoPoint,
        radius_m: float = CME_SEARCH_RADIUS_M,
        radio_service_code: str = RADIO_SERVICE_MG,
        station_class: str = STATION_CLASS_FXO,
    ) -> list[str]:
        """Licensee names uncovered by the paper's geographic+site query.

        This is the "57 candidate licensees" step of §2.2.
        """
        geo_rows = self.geographic_search(center, radius_m)
        site_rows = self.site_search(radio_service_code, station_class, within=geo_rows)
        names = sorted({row.licensee_name for row in site_rows})
        return names

    def filing_counts(self, licensee_names: list[str]) -> dict[str, int]:
        """Number of filings per licensee (shortlisting input, §2.2)."""
        return {name: len(self._db.licenses_for(name)) for name in licensee_names}
