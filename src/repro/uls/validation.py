"""Data-quality validation for license records.

Real ULS data is messy; a reconstruction pipeline needs a scrubbing pass
before geometry.  Checks cover the failure modes that would corrupt the
paper's analyses: impossible link geometry (a conventional microwave hop
beyond ~150 km cannot close a link budget), degenerate zero-length paths,
incoherent life-cycle dates, and frequencies outside the licensed
point-to-point bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.uls.records import License

#: Longest plausible conventional-microwave hop, km (beyond this the
#: Earth bulge and free-space loss make the filing suspect).
MAX_PLAUSIBLE_HOP_KM = 150.0

#: Shortest plausible hop, metres (below this the two "towers" are the
#: same structure filed twice).
MIN_PLAUSIBLE_HOP_M = 100.0

#: Licensed point-to-point bands: anything outside is suspect for this
#: service, MHz.
FREQUENCY_RANGE_MHZ = (3_000.0, 40_000.0)

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class ValidationIssue:
    """One data-quality finding."""

    severity: str
    code: str
    license_id: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")


def validate_license(lic: License) -> list[ValidationIssue]:
    """All issues found on one license."""
    issues: list[ValidationIssue] = []

    def add(severity: str, code: str, message: str) -> None:
        issues.append(ValidationIssue(severity, code, lic.license_id, message))

    # Life-cycle coherence.
    if lic.grant_date is not None:
        for label, date in (
            ("cancellation", lic.cancellation_date),
            ("termination", lic.termination_date),
            ("expiration", lic.expiration_date),
        ):
            if date is not None and date < lic.grant_date:
                add("error", "date-order", f"{label} date precedes grant date")
    elif lic.cancellation_date is not None or lic.termination_date is not None:
        add("warning", "dates-without-grant", "ended but never granted")

    # Geometry.
    for path in lic.paths:
        length_m = lic.path_length_m(path)
        if length_m > MAX_PLAUSIBLE_HOP_KM * 1000.0:
            add(
                "error",
                "hop-too-long",
                f"path {path.path_number} spans {length_m / 1000.0:.1f} km",
            )
        elif length_m < MIN_PLAUSIBLE_HOP_M:
            add(
                "warning",
                "hop-degenerate",
                f"path {path.path_number} spans only {length_m:.0f} m",
            )

        # Frequencies.
        seen: set[float] = set()
        for frequency in path.frequencies_mhz:
            if not FREQUENCY_RANGE_MHZ[0] <= frequency <= FREQUENCY_RANGE_MHZ[1]:
                add(
                    "error",
                    "frequency-out-of-band",
                    f"path {path.path_number}: {frequency:.1f} MHz outside "
                    "licensed point-to-point range",
                )
            if frequency in seen:
                add(
                    "warning",
                    "frequency-duplicate",
                    f"path {path.path_number}: {frequency:.1f} MHz listed twice",
                )
            seen.add(frequency)
        if not path.frequencies_mhz:
            add("warning", "frequency-missing", f"path {path.path_number} has none")

    # Orphan locations (filed but not used by any path).
    used = {
        number
        for path in lic.paths
        for number in (path.tx_location_number, path.rx_location_number)
    }
    orphans = sorted(set(lic.locations) - used)
    if orphans and lic.paths:
        add("warning", "location-orphan", f"unused locations {orphans}")

    return issues


def validate_licenses(licenses: Iterable[License]) -> list[ValidationIssue]:
    """All issues across a collection, in input order."""
    issues: list[ValidationIssue] = []
    for lic in licenses:
        issues.extend(validate_license(lic))
    return issues


def partition_by_severity(
    issues: Iterable[ValidationIssue],
) -> tuple[list[ValidationIssue], list[ValidationIssue]]:
    """(errors, warnings)."""
    errors = [issue for issue in issues if issue.severity == "error"]
    warnings = [issue for issue in issues if issue.severity == "warning"]
    return errors, warnings


def clean_licenses(licenses: Iterable[License]) -> list[License]:
    """The subset of licenses with no *errors* (warnings pass).

    The reconstruction pipeline runs on the cleaned set; dropping a
    corrupt filing is safer than letting a 2,000 km "link" distort a
    latency estimate.
    """
    kept = []
    for lic in licenses:
        errors, _ = partition_by_severity(validate_license(lic))
        if not errors:
            kept.append(lic)
    return kept
