"""Column-kernel reconstruction: the flat-array cold path (§2.3).

This module is the ``kernel="columnar"`` implementation behind
:class:`repro.core.engine.CorridorEngine` — a restatement of the object
kernel (:func:`repro.core.stitching.stitch_licenses` +
:func:`repro.core.fiber.attach_fiber_tails`) over the flat columns of a
:class:`repro.uls.columnar.ColumnarLicenseStore`.  The output contract
is **byte identity**: every tower, link and fiber tail — ids, ordering,
floats — matches the object kernel exactly (property-tested in
``tests/test_columnar.py`` and diff-gated in ``scripts/check.sh``).

What makes the columnar path fast where the object path is slow:

* **Endpoint stitching** probes the same tolerance grid with the same
  cell-scan order, but measures probe distances out of the store's
  precomputed Vincenty solution table instead of re-iterating Vincenty
  per probe (the inline :func:`repro.geodesy.batch.inverse_trig` kernel
  covers the rare out-of-table pair, bit-identically).
* **Link merging** reads path endpoint indices and flattened frequency
  spans straight out of integer/float columns.
* **Fiber conversion** prunes the data-center × tower cross product
  with a conservative spherical bound (skip only when the haversine
  distance exceeds the tail limit by >2 % — far beyond the WGS84 vs
  sphere discrepancy, so no in-range tail can be lost) and solves the
  survivors in one :func:`repro.geodesy.batch.inverse_batch` call that
  consults and feeds the engine's installed
  :class:`~repro.geodesy.memo.GeodesicMemo` in bulk.

The kernels emit ``kernel.columnar.*`` obs counters (probe/solution/
prune totals) alongside the same ``core.stitch``/``core.fiber`` spans
the object path records, so traces stay comparable across kernels.
"""

from __future__ import annotations

import datetime as dt
import math

from repro import obs
from repro.core.corridor import CorridorSpec
from repro.core.latency import LatencyModel
from repro.core.network import FiberTail, HftNetwork, MicrowaveLink, Tower
from repro.geodesy import EARTH_MEAN_RADIUS_M
from repro.geodesy.batch import inverse_batch, inverse_trig
from repro.geodesy.memo import active_memo
from repro.uls.columnar import CELL_STRIDE, ColumnarLicenseStore

#: Safety margin on the spherical fiber prefilter: a pair is skipped
#: only when the haversine distance exceeds the tail limit by 2 % plus a
#: metre.  The WGS84-geodesic/haversine discrepancy is bounded well
#: under 0.6 %, so no pair within the exact limit is ever skipped.
_FIBER_PRUNE_MARGIN = 1.02

#: The stitch grid's 3x3 neighbourhood as packed-cell offsets, in the
#: object kernel's exact scan order (lat-delta outer, lon-delta inner).
_CELL_OFFSETS = tuple(
    d_lat * CELL_STRIDE + d_lon for d_lat in (-1, 0, 1) for d_lon in (-1, 0, 1)
)


def reconstruct_columnar(
    store: ColumnarLicenseStore,
    licensee: str,
    on_date: dt.date,
    corridor: CorridorSpec,
    latency_model: LatencyModel,
    stitch_tolerance_m: float,
    max_fiber_tail_m: float,
    fiber_mode: str,
) -> HftNetwork:
    """Build ``licensee``'s network on ``on_date`` from flat columns.

    Byte-identical to ``NetworkReconstructor.reconstruct`` over the same
    records and parameters (towers, links, tails, and all metadata).
    """
    if stitch_tolerance_m <= 0.0:
        raise ValueError("tolerance must be positive")
    if max_fiber_tail_m < 0.0:
        raise ValueError("max tail length cannot be negative")
    if fiber_mode not in ("nearest", "all"):
        raise ValueError(f"unknown fiber attachment mode: {fiber_mode!r}")

    obs.count("kernel.columnar.snapshot")
    active = store.active_rows(licensee, on_date)
    # Out-of-table pairs solved this call, keyed like the store's table
    # (packed uid pairs; shared by probes and links).
    extra: dict[int, tuple] = {}
    with obs.span("core.stitch", licensee=licensee, licenses=len(active)):
        towers, links, tower_anchor = _stitch_columnar(
            store, active, stitch_tolerance_m, extra
        )
    with obs.span("core.fiber", licensee=licensee, towers=len(towers)):
        tails = _fiber_columnar(
            store, towers, tower_anchor, corridor, max_fiber_tail_m, fiber_mode
        )
    return HftNetwork(
        licensee=licensee,
        as_of=on_date,
        towers=towers,
        links=links,
        fiber_tails=tails,
        data_centers=corridor.data_centers,
        latency_model=latency_model,
    )


def _stitch_columnar(
    store: ColumnarLicenseStore,
    active: list[int],
    tolerance_m: float,
    extra: dict,
) -> tuple[list[Tower], list[MicrowaveLink], dict[str, int]]:
    """Grid bucketing + cluster assignment + link merging over columns.

    Replicates ``EndpointStitcher`` exactly: the same
    ``coordinate_key`` cell arithmetic, the same fixed 3x3 cell-scan
    order, per-cell insertion order, first anchor within tolerance wins,
    anchor/site-name first-seen and elevation/height max-merged.
    """
    ep_lat, ep_lon = store.ep_lat, store.ep_lon
    ep_sin_u, ep_cos_u = store.ep_sin_u, store.ep_cos_u
    ep_ground, ep_height = store.ep_ground, store.ep_height
    ep_site, ep_license_id = store.ep_site, store.ep_license_id
    ep_uid, n_coords = store.ep_uid, store.n_coords
    ep_cell = store.cells_for(tolerance_m)
    solutions = store.solutions
    row_ep_start, row_ep_end = store.row_ep_start, store.row_ep_end

    anchor_rows: list[int] = []
    cluster_ground: list[float] = []
    cluster_height: list[float] = []
    cluster_site: list[str] = []
    cluster_licenses: list[set[str]] = []
    grid: dict[int, list[int]] = {}
    grid_get = grid.get
    ep_cluster: dict[int, int] = {}

    probes = 0
    table_misses = 0

    for row in active:
        for ep in range(row_ep_start[row], row_ep_end[row]):
            uid = ep_uid[ep]
            center = ep_cell[ep]
            found = -1
            for offset in _CELL_OFFSETS:
                bucket = grid_get(center + offset)
                if not bucket:
                    continue
                for cluster in bucket:
                    anchor = anchor_rows[cluster]
                    probes += 1
                    anchor_uid = ep_uid[anchor]
                    if uid == anchor_uid:
                        # Bitwise-equal coordinates: the geodesic is
                        # exactly 0.0, within any positive tolerance.
                        found = cluster
                        break
                    key = uid * n_coords + anchor_uid
                    solution = solutions.get(key)
                    if solution is None:
                        solution = extra.get(key)
                        if solution is None:
                            solution = inverse_trig(
                                ep_lat[ep], ep_lon[ep],
                                ep_lat[anchor], ep_lon[anchor],
                                ep_sin_u[ep], ep_cos_u[ep],
                                ep_sin_u[anchor], ep_cos_u[anchor],
                            )
                            extra[key] = solution
                            table_misses += 1
                    if solution[0] <= tolerance_m:
                        found = cluster
                        break
                if found >= 0:
                    break
            license_id = ep_license_id[ep]
            if found < 0:
                found = len(anchor_rows)
                anchor_rows.append(ep)
                cluster_ground.append(ep_ground[ep])
                cluster_height.append(ep_height[ep])
                cluster_site.append(ep_site[ep])
                cluster_licenses.append({license_id})
                grid.setdefault(center, []).append(found)
            else:
                cluster_licenses[found].add(license_id)
                # Prefer the richest metadata seen for the tower (the
                # object kernel's deterministic max-merge).
                if not cluster_site[found] and ep_site[ep]:
                    cluster_site[found] = ep_site[ep]
                if ep_height[ep] > cluster_height[found]:
                    cluster_height[found] = ep_height[ep]
                if ep_ground[ep] > cluster_ground[found]:
                    cluster_ground[found] = ep_ground[ep]
            ep_cluster[ep] = found

    # Finalise clusters into geography-sorted towers (stable sort: ties
    # keep cluster creation order, as the object kernel's does).
    order = sorted(
        range(len(anchor_rows)),
        key=lambda i: (ep_lon[anchor_rows[i]], ep_lat[anchor_rows[i]]),
    )
    towers: list[Tower] = []
    cluster_tower_id: list[str] = [""] * len(anchor_rows)
    tower_anchor: dict[str, int] = {}
    for rank, cluster in enumerate(order, start=1):
        tower_id = f"twr-{rank:04d}"
        cluster_tower_id[cluster] = tower_id
        anchor = anchor_rows[cluster]
        tower_anchor[tower_id] = anchor
        towers.append(
            Tower(
                tower_id=tower_id,
                point=store.ep_point[anchor],
                ground_elevation_m=cluster_ground[cluster],
                structure_height_m=cluster_height[cluster],
                site_name=cluster_site[cluster],
                license_ids=tuple(sorted(cluster_licenses[cluster])),
            )
        )

    # Link merging: one link per tower pair, union of frequencies and
    # license ids across filings.
    path_tx, path_rx = store.path_tx, store.path_rx
    freq_start, freq_mhz = store.path_freq_start, store.freq_mhz
    license_ids = store.license_ids
    merged: dict[tuple[str, str], tuple[set, set]] = {}
    for row in active:
        row_license = license_ids[row]
        for path in range(store.row_path_start[row], store.row_path_end[row]):
            tx_id = cluster_tower_id[ep_cluster[path_tx[path]]]
            rx_id = cluster_tower_id[ep_cluster[path_rx[path]]]
            if tx_id == rx_id:
                # Both endpoints stitched to one tower: degenerate filing.
                continue
            key = (tx_id, rx_id) if tx_id < rx_id else (rx_id, tx_id)
            entry = merged.get(key)
            if entry is None:
                entry = (set(), set())
                merged[key] = entry
            entry[0].update(freq_mhz[freq_start[path]:freq_start[path + 1]])
            entry[1].add(row_license)

    links: list[MicrowaveLink] = []
    for key in sorted(merged):
        tower_a, tower_b = key
        anchor_a = tower_anchor[tower_a]
        anchor_b = tower_anchor[tower_b]
        pair = ep_uid[anchor_a] * n_coords + ep_uid[anchor_b]
        solution = solutions.get(pair)
        if solution is None:
            solution = extra.get(pair)
            if solution is None:
                solution = inverse_trig(
                    ep_lat[anchor_a], ep_lon[anchor_a],
                    ep_lat[anchor_b], ep_lon[anchor_b],
                    ep_sin_u[anchor_a], ep_cos_u[anchor_a],
                    ep_sin_u[anchor_b], ep_cos_u[anchor_b],
                )
                extra[pair] = solution
                table_misses += 1
        frequencies, filed_by = merged[key]
        links.append(
            MicrowaveLink(
                tower_a=tower_a,
                tower_b=tower_b,
                length_m=solution[0],
                frequencies_mhz=tuple(sorted(frequencies)),
                license_ids=tuple(sorted(filed_by)),
            )
        )
    obs.count("kernel.columnar.stitch.probes", probes)
    obs.count("kernel.columnar.solutions.fallback", table_misses)
    return towers, links, tower_anchor


def _fiber_columnar(
    store: ColumnarLicenseStore,
    towers: list[Tower],
    tower_anchor: dict[str, int],
    corridor: CorridorSpec,
    max_tail_m: float,
    mode: str,
) -> list[FiberTail]:
    """Fiber tails over columns: spherical prune, then one bulk solve.

    Replicates ``attach_fiber_tails`` exactly — every surviving pair is
    measured with the same Vincenty inverse (through the installed
    geodesic memo, in the same data-center-major order), the same
    ``0 < length <= max_tail_m`` filter, sorting and ``nearest``
    truncation.
    """
    ep_lat_rad, ep_lon_rad = store.ep_lat_rad, store.ep_lon_rad
    ep_cos_phi = store.ep_cos_phi
    prune_limit = max_tail_m * _FIBER_PRUNE_MARGIN + 1.0
    sin, asin, sqrt = math.sin, math.asin, math.sqrt
    two_r = 2.0 * EARTH_MEAN_RADIUS_M

    # Prefilter pass: collect surviving (data center, tower) pairs in the
    # object kernel's iteration order, indexing a compact coordinate set.
    coords_lat: list[float] = []
    coords_lon: list[float] = []
    coord_index: dict[tuple[float, float], int] = {}
    pairs: list[tuple[int, int]] = []
    survivors: list[tuple[int, Tower]] = []  # (dc position, tower)
    pruned = 0

    data_centers = list(corridor.data_centers)
    for dc_pos, dc in enumerate(data_centers):
        dc_point = dc.point
        dc_key = (dc_point.latitude, dc_point.longitude)
        dc_idx = coord_index.get(dc_key)
        if dc_idx is None:
            dc_idx = len(coords_lat)
            coord_index[dc_key] = dc_idx
            coords_lat.append(dc_point.latitude)
            coords_lon.append(dc_point.longitude)
        dc_lat_rad = math.radians(dc_point.latitude)
        dc_lon_rad = math.radians(dc_point.longitude)
        dc_cos = math.cos(dc_lat_rad)
        for tower in towers:
            point = tower.point
            row = tower_anchor[tower.tower_id]
            # Inline haversine prefilter (repro.uls.columnar._haversine_m).
            sin_dphi = sin((ep_lat_rad[row] - dc_lat_rad) / 2.0)
            sin_dlam = sin((ep_lon_rad[row] - dc_lon_rad) / 2.0)
            h = sin_dphi * sin_dphi + dc_cos * ep_cos_phi[row] * sin_dlam * sin_dlam
            if two_r * asin(min(1.0, sqrt(h))) > prune_limit:
                pruned += 1
                continue
            tower_key = (point.latitude, point.longitude)
            tower_idx = coord_index.get(tower_key)
            if tower_idx is None:
                tower_idx = len(coords_lat)
                coord_index[tower_key] = tower_idx
                coords_lat.append(point.latitude)
                coords_lon.append(point.longitude)
            pairs.append((dc_idx, tower_idx))
            survivors.append((dc_pos, tower))

    # One bulk solve through the engine's installed memo: identical
    # lookup/store order to the object kernel's per-pair calls.
    solved = inverse_batch(coords_lat, coords_lon, pairs, memo=active_memo())

    per_dc: list[list[FiberTail]] = [[] for _ in data_centers]
    for (dc_pos, tower), solution in zip(survivors, solved):
        length = solution[0]
        if 0.0 < length <= max_tail_m:
            per_dc[dc_pos].append(
                FiberTail(
                    data_center=data_centers[dc_pos].name,
                    tower_id=tower.tower_id,
                    length_m=length,
                )
            )
    tails: list[FiberTail] = []
    for in_range in per_dc:
        in_range.sort(key=lambda tail: (tail.length_m, tail.tower_id))
        if mode == "nearest":
            in_range = in_range[:1]
        tails.extend(in_range)
    tails.sort(key=lambda tail: (tail.data_center, tail.length_m, tail.tower_id))
    obs.count("kernel.columnar.fiber.pruned", pruned)
    obs.count("kernel.columnar.fiber.measured", len(pairs))
    return tails
