"""Network reconstruction from license records (§2.3).

This is the paper's tool: given the license filings of a licensee and a
date, produce the licensee's network as of that date.  A license
contributes its links iff it was granted and not cancelled/terminated on
the date; links are stitched into towers, fiber tails connect the corridor
data centers to towers within 50 km, and the result is an
:class:`~repro.core.network.HftNetwork` ready for routing and metrics.
"""

from __future__ import annotations

import datetime as dt
from typing import Iterable

from repro import obs
from repro.constants import MAX_FIBER_TAIL_M, STITCH_TOLERANCE_M
from repro.core.corridor import CorridorSpec
from repro.core.fiber import attach_fiber_tails
from repro.core.latency import LatencyModel
from repro.core.network import HftNetwork
from repro.core.stitching import stitch_licenses
from repro.uls.database import UlsDatabase
from repro.uls.records import License, active_licenses


class NetworkReconstructor:
    """Reconstructs :class:`HftNetwork` snapshots from license filings.

    Parameters
    ----------
    corridor:
        The data centers to attach fiber tails to.
    latency_model:
        Propagation model; defaults to the paper's (c in air, 2c/3 fiber,
        no per-tower overhead).
    stitch_tolerance_m:
        Endpoint clustering tolerance.
    max_fiber_tail_m:
        Maximum data-center-to-tower fiber length (paper: 50 km).
    fiber_mode:
        ``"nearest"`` (paper's "last tower on each side": one tail per
        data center) or ``"all"`` (a tail to every in-range tower).
    """

    def __init__(
        self,
        corridor: CorridorSpec,
        latency_model: LatencyModel | None = None,
        stitch_tolerance_m: float = STITCH_TOLERANCE_M,
        max_fiber_tail_m: float = MAX_FIBER_TAIL_M,
        fiber_mode: str = "nearest",
    ) -> None:
        self.corridor = corridor
        self.latency_model = latency_model or LatencyModel()
        self.stitch_tolerance_m = stitch_tolerance_m
        self.max_fiber_tail_m = max_fiber_tail_m
        self.fiber_mode = fiber_mode

    def reconstruct(
        self,
        licenses: Iterable[License],
        on_date: dt.date,
        licensee: str | None = None,
    ) -> HftNetwork:
        """Build the network formed by ``licenses`` active on ``on_date``.

        ``licensee`` defaults to the (single) licensee name found in the
        records; passing records of several licensees without naming the
        network is an error, because mixing filings across entities is a
        methodological decision the paper explicitly leaves to future work
        (§2.4).
        """
        license_list = list(licenses)
        names = {lic.licensee_name for lic in license_list}
        if licensee is None:
            if len(names) > 1:
                raise ValueError(
                    "licenses span multiple licensees; pass licensee= explicitly "
                    f"(found {sorted(names)})"
                )
            licensee = next(iter(names)) if names else "(empty)"

        active = active_licenses(license_list, on_date)
        with obs.span("core.stitch", licensee=licensee, licenses=len(active)):
            towers, links = stitch_licenses(active, self.stitch_tolerance_m)
        with obs.span("core.fiber", licensee=licensee, towers=len(towers)):
            tails = attach_fiber_tails(
                self.corridor.data_centers,
                towers,
                self.max_fiber_tail_m,
                self.fiber_mode,
            )
        return HftNetwork(
            licensee=licensee,
            as_of=on_date,
            towers=towers,
            links=links,
            fiber_tails=tails,
            data_centers=self.corridor.data_centers,
            latency_model=self.latency_model,
        )

    def reconstruct_licensee(
        self, database: UlsDatabase, licensee: str, on_date: dt.date
    ) -> HftNetwork:
        """Reconstruct one licensee's network from a database."""
        return self.reconstruct(
            database.licenses_for(licensee), on_date, licensee=licensee
        )

    def connected_networks(
        self,
        database: UlsDatabase,
        on_date: dt.date,
        source: str,
        target: str,
        licensees: Iterable[str] | None = None,
    ) -> list[HftNetwork]:
        """Networks with an end-to-end path between two data centers.

        This implements the paper's "connected networks" notion (§3): a
        licensee counts iff its active licenses form an end-end path
        between ``source`` and ``target`` on ``on_date``.
        """
        names = list(licensees) if licensees is not None else database.licensee_names()
        connected = []
        for name in names:
            network = self.reconstruct_licensee(database, name, on_date)
            if network.is_connected(source, target):
                connected.append(network)
        return connected


def reconstruct_all(
    database: UlsDatabase,
    corridor: CorridorSpec,
    on_date: dt.date,
    latency_model: LatencyModel | None = None,
    reconstructor: NetworkReconstructor | None = None,
) -> dict[str, HftNetwork]:
    """Reconstruct every licensee's network at ``on_date``.

    Returns a name → network mapping (networks may be empty or
    disconnected; callers filter with :meth:`HftNetwork.is_connected`).

    ``reconstructor`` carries non-default reconstruction parameters
    (stitch tolerance, fiber mode, ...); its corridor must match
    ``corridor``.  Passing both ``latency_model`` and ``reconstructor``
    is ambiguous and rejected.  The work is routed through a
    :class:`repro.core.engine.CorridorEngine`, so the bulk reconstruction
    benefits from the geodesic memo.
    """
    if reconstructor is not None:
        if latency_model is not None:
            raise ValueError(
                "pass either latency_model or reconstructor, not both"
            )
        if reconstructor.corridor != corridor:
            raise ValueError(
                "reconstructor.corridor disagrees with the corridor argument"
            )
    from repro.core.engine import CorridorEngine

    if reconstructor is not None:
        engine = CorridorEngine(database, reconstructor=reconstructor)
    else:
        engine = CorridorEngine(database, corridor, latency_model=latency_model)
    return {
        name: engine.snapshot(name, on_date)
        for name in database.licensee_names()
    }
