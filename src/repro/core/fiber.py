"""Fiber tails between data centers and nearby towers (§2.3).

The paper assumes "short fiber segments connecting the last tower on each
side to its corresponding data center", with data centers having fiber
connectivity to towers up to 50 km away and the fiber following the
geodesic.  Two attachment policies are provided:

* ``"nearest"`` (default, the paper's "last tower" reading): each data
  center gets one tail, to its nearest tower within 50 km.
* ``"all"``: a tail to *every* tower within 50 km.  Under this reading a
  network's branch towards one data center doubles as a backup entry into
  another nearby data center, which inflates the alternate-path metric —
  the ablation bench quantifies the difference.
"""

from __future__ import annotations

from typing import Iterable

from repro.constants import MAX_FIBER_TAIL_M
from repro.core.corridor import DataCenterSite
from repro.core.network import FiberTail, Tower
from repro.geodesy import geodesic_distance


def attach_fiber_tails(
    data_centers: Iterable[DataCenterSite],
    towers: Iterable[Tower],
    max_tail_m: float = MAX_FIBER_TAIL_M,
    mode: str = "nearest",
) -> list[FiberTail]:
    """Fiber tails from data centers to in-range towers.

    Tails are sorted by (data center, length) for deterministic output.
    """
    if max_tail_m < 0.0:
        raise ValueError("max tail length cannot be negative")
    if mode not in ("nearest", "all"):
        raise ValueError(f"unknown fiber attachment mode: {mode!r}")
    tails: list[FiberTail] = []
    tower_list = list(towers)
    for dc in data_centers:
        in_range = []
        for tower in tower_list:
            length = geodesic_distance(dc.point, tower.point)
            if 0.0 < length <= max_tail_m:
                in_range.append(
                    FiberTail(data_center=dc.name, tower_id=tower.tower_id, length_m=length)
                )
        in_range.sort(key=lambda tail: (tail.length_m, tail.tower_id))
        if mode == "nearest":
            in_range = in_range[:1]
        tails.extend(in_range)
    tails.sort(key=lambda tail: (tail.data_center, tail.length_m, tail.tower_id))
    return tails
