"""Graph model of a reconstructed HFT microwave network.

An :class:`HftNetwork` is what the paper's tool produces for one licensee
at one date: towers (license endpoints stitched across filings), microwave
links between them, fiber tails to the corridor's data centers, and a
latency-weighted graph to route over.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable

import networkx as nx

from repro import obs
from repro.core.corridor import CorridorSpec, DataCenterSite
from repro.core.latency import LatencyModel, seconds_to_ms
from repro.geodesy import GeoPoint

#: Node-attribute value for data center nodes.
NODE_KIND_DATACENTER = "datacenter"
#: Node-attribute value for tower nodes.
NODE_KIND_TOWER = "tower"

# Re-exported name: the corridor's site type doubles as the network's
# data-center type.
DataCenter = DataCenterSite


@dataclass(frozen=True, slots=True)
class Tower:
    """A physical tower: a stitched license endpoint."""

    tower_id: str
    point: GeoPoint
    ground_elevation_m: float = 0.0
    structure_height_m: float = 0.0
    site_name: str = ""
    license_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.tower_id:
            raise ValueError("tower_id must be non-empty")

    # Fast pickle path for store entries (see GeoPoint.__getstate__):
    # a snapshot export carries ~40 towers per network per fingerprint.
    def __getstate__(self):
        return (
            self.tower_id,
            self.point,
            self.ground_elevation_m,
            self.structure_height_m,
            self.site_name,
            self.license_ids,
        )

    def __setstate__(self, state) -> None:
        set_ = object.__setattr__
        set_(self, "tower_id", state[0])
        set_(self, "point", state[1])
        set_(self, "ground_elevation_m", state[2])
        set_(self, "structure_height_m", state[3])
        set_(self, "site_name", state[4])
        set_(self, "license_ids", state[5])


@dataclass(frozen=True, slots=True)
class MicrowaveLink:
    """A licensed microwave link between two towers.

    Multiple filings over the same tower pair are merged into one link with
    the union of their frequencies and license ids.
    """

    tower_a: str
    tower_b: str
    length_m: float
    frequencies_mhz: tuple[float, ...] = ()
    license_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.tower_a == self.tower_b:
            raise ValueError("a link cannot connect a tower to itself")
        if self.length_m <= 0.0:
            raise ValueError("link length must be positive")

    @property
    def endpoints(self) -> frozenset[str]:
        return frozenset((self.tower_a, self.tower_b))

    # Fast pickle path for store entries (see GeoPoint.__getstate__).
    def __getstate__(self):
        return (
            self.tower_a,
            self.tower_b,
            self.length_m,
            self.frequencies_mhz,
            self.license_ids,
        )

    def __setstate__(self, state) -> None:
        set_ = object.__setattr__
        set_(self, "tower_a", state[0])
        set_(self, "tower_b", state[1])
        set_(self, "length_m", state[2])
        set_(self, "frequencies_mhz", state[3])
        set_(self, "license_ids", state[4])


@dataclass(frozen=True, slots=True)
class FiberTail:
    """A fiber segment connecting a data center to a nearby tower."""

    data_center: str
    tower_id: str
    length_m: float

    def __post_init__(self) -> None:
        if self.length_m < 0.0:
            raise ValueError("fiber length cannot be negative")

    # Fast pickle path for store entries (see GeoPoint.__getstate__).
    def __getstate__(self):
        return (self.data_center, self.tower_id, self.length_m)

    def __setstate__(self, state) -> None:
        set_ = object.__setattr__
        set_(self, "data_center", state[0])
        set_(self, "tower_id", state[1])
        set_(self, "length_m", state[2])


@dataclass(frozen=True)
class Route:
    """A lowest-latency route between two data centers."""

    source: str
    target: str
    nodes: tuple[str, ...]
    latency_s: float
    length_m: float
    microwave_length_m: float
    fiber_length_m: float
    tower_count: int

    @property
    def latency_ms(self) -> float:
        return seconds_to_ms(self.latency_s)

    @property
    def hop_count(self) -> int:
        """Number of links (microwave + fiber) on the route."""
        return len(self.nodes) - 1


class HftNetwork:
    """One licensee's network at one reconstruction date."""

    def __init__(
        self,
        licensee: str,
        as_of: dt.date,
        towers: Iterable[Tower],
        links: Iterable[MicrowaveLink],
        fiber_tails: Iterable[FiberTail],
        data_centers: Iterable[DataCenterSite],
        latency_model: LatencyModel | None = None,
    ) -> None:
        self.licensee = licensee
        self.as_of = as_of
        self.latency_model = latency_model or LatencyModel()
        self.towers: dict[str, Tower] = {tower.tower_id: tower for tower in towers}
        self.data_centers: dict[str, DataCenterSite] = {
            dc.name: dc for dc in data_centers
        }
        self.links: list[MicrowaveLink] = list(links)
        self.fiber_tails: list[FiberTail] = list(fiber_tails)
        self._validate()

    def _validate(self) -> None:
        overlap = set(self.towers) & set(self.data_centers)
        if overlap:
            raise ValueError(f"tower ids collide with data center names: {overlap}")
        for link in self.links:
            for endpoint in (link.tower_a, link.tower_b):
                if endpoint not in self.towers:
                    raise ValueError(
                        f"link references unknown tower {endpoint!r}"
                    )
        for tail in self.fiber_tails:
            if tail.data_center not in self.data_centers:
                raise ValueError(f"fiber tail to unknown data center {tail.data_center!r}")
            if tail.tower_id not in self.towers:
                raise ValueError(f"fiber tail from unknown tower {tail.tower_id!r}")

    # ------------------------------------------------------------------
    # Graph
    # ------------------------------------------------------------------

    @cached_property
    def graph(self) -> nx.Graph:
        """The latency-weighted graph (nodes: towers + data centers).

        Edge attributes: ``medium`` ("microwave"/"fiber"), ``length_m``,
        ``latency_s`` (propagation only), ``frequencies_mhz``,
        ``license_ids``.
        """
        graph = nx.Graph()
        for name, dc in self.data_centers.items():
            graph.add_node(name, kind=NODE_KIND_DATACENTER, point=dc.point)
        for tower_id, tower in self.towers.items():
            graph.add_node(tower_id, kind=NODE_KIND_TOWER, point=tower.point)
        for link in self.links:
            graph.add_edge(
                link.tower_a,
                link.tower_b,
                medium="microwave",
                length_m=link.length_m,
                latency_s=self.latency_model.microwave_latency_s(link.length_m),
                frequencies_mhz=link.frequencies_mhz,
                license_ids=link.license_ids,
            )
        for tail in self.fiber_tails:
            graph.add_edge(
                tail.data_center,
                tail.tower_id,
                medium="fiber",
                length_m=tail.length_m,
                latency_s=self.latency_model.fiber_latency_s(tail.length_m),
                frequencies_mhz=(),
                license_ids=(),
            )
        return graph

    def _edge_weight(self, u: str, v: str, data: dict) -> float:
        """Dijkstra weight: propagation latency plus half the per-tower
        overhead for each tower endpoint (so a path through n towers pays
        exactly n overheads)."""
        weight = data["latency_s"]
        overhead = self.latency_model.per_tower_overhead_s
        if overhead:
            if u in self.towers:
                weight += overhead / 2.0
            if v in self.towers:
                weight += overhead / 2.0
        return weight

    # ------------------------------------------------------------------
    # Routing and properties
    # ------------------------------------------------------------------

    def is_connected(self, source: str, target: str) -> bool:
        """Whether an end-to-end path exists between two data centers."""
        graph = self.graph
        if source not in graph or target not in graph:
            return False
        return nx.has_path(graph, source, target)

    def lowest_latency_route(self, source: str, target: str) -> Route | None:
        """The lowest-latency route between two data centers, or None.

        Latency accounts for medium-specific speeds and (when configured)
        per-tower overheads, exactly as §2.3 describes.
        """
        graph = self.graph
        if source not in graph or target not in graph:
            return None
        with obs.span(
            "core.routing", licensee=self.licensee, source=source, target=target
        ):
            try:
                latency, nodes = nx.single_source_dijkstra(
                    graph, source, target, weight=self._edge_weight
                )
            except nx.NetworkXNoPath:
                return None
        length = 0.0
        mw_length = 0.0
        fiber_length = 0.0
        for u, v in zip(nodes, nodes[1:]):
            data = graph.edges[u, v]
            length += data["length_m"]
            if data["medium"] == "microwave":
                mw_length += data["length_m"]
            else:
                fiber_length += data["length_m"]
        tower_count = sum(1 for node in nodes if node in self.towers)
        return Route(
            source=source,
            target=target,
            nodes=tuple(nodes),
            latency_s=latency,
            length_m=length,
            microwave_length_m=mw_length,
            fiber_length_m=fiber_length,
            tower_count=tower_count,
        )

    def route_frequencies_mhz(self, route: Route) -> list[tuple[float, ...]]:
        """Per-link frequency tuples along a route (microwave links only)."""
        graph = self.graph
        frequencies = []
        for u, v in zip(route.nodes, route.nodes[1:]):
            data = graph.edges[u, v]
            if data["medium"] == "microwave":
                frequencies.append(data["frequencies_mhz"])
        return frequencies

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------

    @property
    def tower_count(self) -> int:
        return len(self.towers)

    @property
    def link_count(self) -> int:
        return len(self.links)

    def link_lengths_m(self) -> list[float]:
        """Lengths of all microwave links, metres."""
        return [link.length_m for link in self.links]

    def with_latency_model(self, latency_model: LatencyModel) -> "HftNetwork":
        """A copy of this network under a different latency model."""
        return HftNetwork(
            licensee=self.licensee,
            as_of=self.as_of,
            towers=self.towers.values(),
            links=self.links,
            fiber_tails=self.fiber_tails,
            data_centers=self.data_centers.values(),
            latency_model=latency_model,
        )

    def with_as_of(self, as_of: dt.date) -> "HftNetwork":
        """A re-dated view of this network (same towers/links/graph).

        The engine's snapshot cache keys on the *active license set*, so
        one stitched network can serve many dates; this produces the view
        carrying the caller's date.  The already-built latency graph is
        shared — all consumers treat it as read-only (mutating analyses
        like APA work on ``graph.copy()``).
        """
        if as_of == self.as_of:
            return self
        clone = HftNetwork(
            licensee=self.licensee,
            as_of=as_of,
            towers=self.towers.values(),
            links=self.links,
            fiber_tails=self.fiber_tails,
            data_centers=self.data_centers.values(),
            latency_model=self.latency_model,
        )
        if "graph" in self.__dict__:
            clone.__dict__["graph"] = self.graph
        return clone

    def __getstate__(self):
        # The latency graph is a cached_property rebuilt deterministically
        # from towers/links; persisting it (store entries, parallel seed
        # exports) would pickle a networkx adjacency per snapshot — the
        # bulk of the payload — that warm consumers mostly never touch
        # (routes ship separately in the engine's route cache).
        state = dict(self.__dict__)
        state.pop("graph", None)
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HftNetwork({self.licensee!r}, as_of={self.as_of.isoformat()}, "
            f"towers={len(self.towers)}, links={len(self.links)})"
        )
