"""Endpoint stitching: turning license endpoints into shared towers.

The paper reconstructs entire networks "by stitching together their
individual links: a tower that is an endpoint for two links forms a node
connecting these links" (§2.3).  Different filings quote the same physical
tower with slightly different rounding, so stitching clusters endpoints
within a small tolerance (default 30 m) and gives each cluster a canonical
tower identity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import STITCH_TOLERANCE_M
from repro.geodesy import GeoPoint, geodesic_distance
from repro.geodesy.coordinates import coordinate_key
from repro.uls.records import License, TowerLocation
from repro.core.network import MicrowaveLink, Tower


@dataclass
class _Cluster:
    """A growing group of endpoints believed to be one physical tower."""

    anchor: GeoPoint
    ground_elevation_m: float
    structure_height_m: float
    site_name: str
    license_ids: set[str]


class EndpointStitcher:
    """Clusters license endpoints into towers.

    Endpoints within ``tolerance_m`` of a cluster's anchor join that
    cluster; the anchor is the first-seen coordinate (FCC filings are
    anchored to the physical structure, so first-seen is as canonical as
    any).  A spatial grid keyed on :func:`coordinate_key` keeps matching
    O(1) per endpoint.
    """

    def __init__(self, tolerance_m: float = STITCH_TOLERANCE_M) -> None:
        if tolerance_m <= 0.0:
            raise ValueError("tolerance must be positive")
        self.tolerance_m = tolerance_m
        self._clusters: list[_Cluster] = []
        self._grid: dict[tuple[int, int], list[int]] = {}

    def add_endpoint(self, location: TowerLocation, license_id: str) -> int:
        """Register an endpoint; returns its cluster index."""
        index = self._find_cluster(location.point)
        if index is None:
            index = len(self._clusters)
            self._clusters.append(
                _Cluster(
                    anchor=location.point,
                    ground_elevation_m=location.ground_elevation_m,
                    structure_height_m=location.structure_height_m,
                    site_name=location.site_name,
                    license_ids={license_id},
                )
            )
            key = coordinate_key(location.point, self.tolerance_m)
            self._grid.setdefault(key, []).append(index)
        else:
            cluster = self._clusters[index]
            cluster.license_ids.add(license_id)
            # Prefer the richest metadata seen for the tower.  Anchor and
            # site name are first-seen (the anchor pins cluster geometry;
            # a first non-empty site name is as canonical as any); the
            # numeric fields max-merge so the result is independent of
            # endpoint arrival order.
            if not cluster.site_name and location.site_name:
                cluster.site_name = location.site_name
            if location.structure_height_m > cluster.structure_height_m:
                cluster.structure_height_m = location.structure_height_m
            if location.ground_elevation_m > cluster.ground_elevation_m:
                cluster.ground_elevation_m = location.ground_elevation_m
        return index

    def _find_cluster(self, point: GeoPoint) -> int | None:
        center = coordinate_key(point, self.tolerance_m)
        for d_lat in (-1, 0, 1):
            for d_lon in (-1, 0, 1):
                key = (center[0] + d_lat, center[1] + d_lon)
                for index in self._grid.get(key, ()):
                    anchor = self._clusters[index].anchor
                    if geodesic_distance(point, anchor) <= self.tolerance_m:
                        return index
        return None

    def towers(self) -> tuple[list[Tower], dict[int, str]]:
        """Finalise clusters into towers with stable, geography-sorted ids.

        Returns the tower list and a cluster-index → tower-id mapping.
        """
        order = sorted(
            range(len(self._clusters)),
            key=lambda i: (
                self._clusters[i].anchor.longitude,
                self._clusters[i].anchor.latitude,
            ),
        )
        towers: list[Tower] = []
        index_to_id: dict[int, str] = {}
        for rank, cluster_index in enumerate(order, start=1):
            cluster = self._clusters[cluster_index]
            tower_id = f"twr-{rank:04d}"
            index_to_id[cluster_index] = tower_id
            towers.append(
                Tower(
                    tower_id=tower_id,
                    point=cluster.anchor,
                    ground_elevation_m=cluster.ground_elevation_m,
                    structure_height_m=cluster.structure_height_m,
                    site_name=cluster.site_name,
                    license_ids=tuple(sorted(cluster.license_ids)),
                )
            )
        return towers, index_to_id


def stitch_licenses(
    licenses: list[License], tolerance_m: float = STITCH_TOLERANCE_M
) -> tuple[list[Tower], list[MicrowaveLink]]:
    """Stitch a set of licenses into towers and merged microwave links.

    Links filed multiple times over the same tower pair (e.g. one license
    per direction, or refilings with extra frequencies) merge into a single
    :class:`MicrowaveLink` carrying the union of frequencies and license
    ids.  Link length is the geodesic distance between the canonical tower
    anchors.
    """
    stitcher = EndpointStitcher(tolerance_m)
    # endpoint_clusters[(license_id, location_number)] -> cluster index
    endpoint_clusters: dict[tuple[str, int], int] = {}
    for lic in licenses:
        for number, location in lic.locations.items():
            endpoint_clusters[(lic.license_id, number)] = stitcher.add_endpoint(
                location, lic.license_id
            )

    towers, index_to_id = stitcher.towers()
    tower_points = {tower.tower_id: tower.point for tower in towers}

    merged: dict[frozenset[str], dict] = {}
    for lic in licenses:
        for path in lic.paths:
            tx_id = index_to_id[endpoint_clusters[(lic.license_id, path.tx_location_number)]]
            rx_id = index_to_id[endpoint_clusters[(lic.license_id, path.rx_location_number)]]
            if tx_id == rx_id:
                # Both endpoints stitched to one tower: degenerate filing,
                # cannot form a link.
                continue
            key = frozenset((tx_id, rx_id))
            entry = merged.setdefault(
                key, {"frequencies": set(), "licenses": set()}
            )
            entry["frequencies"].update(path.frequencies_mhz)
            entry["licenses"].add(lic.license_id)

    links: list[MicrowaveLink] = []
    for key in sorted(merged, key=sorted):
        tower_a, tower_b = sorted(key)
        entry = merged[key]
        links.append(
            MicrowaveLink(
                tower_a=tower_a,
                tower_b=tower_b,
                length_m=geodesic_distance(tower_points[tower_a], tower_points[tower_b]),
                frequencies_mhz=tuple(sorted(entry["frequencies"])),
                license_ids=tuple(sorted(entry["licenses"])),
            )
        )
    return towers, links
