"""Longitudinal reconstruction (§4): latency and licensing over time.

The paper reconstructs each network on January 1st of every year from 2013
through 2019, plus April 1st 2020, and plots (Fig 1) the end-to-end latency
and (Fig 2) the number of active licenses.  This module produces those
series from raw license records.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.corridor import CorridorSpec
from repro.core.reconstruction import NetworkReconstructor
from repro.uls.database import UlsDatabase
from repro.uls.records import License

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.core.engine import CorridorEngine


def yearly_snapshot_dates(
    first_year: int = 2013,
    last_year: int = 2019,
    final_date: dt.date | None = dt.date(2020, 4, 1),
) -> list[dt.date]:
    """The paper's date grid: Jan 1 of each year, then the final date.

    ``final_date=None`` yields the bare yearly grid (no 2020-04-01
    sample) — callers replaying only the annual reconstruction use this.
    """
    if last_year < first_year:
        raise ValueError("last_year must be >= first_year")
    dates = [dt.date(year, 1, 1) for year in range(first_year, last_year + 1)]
    if final_date is not None:
        if dates and final_date <= dates[-1]:
            raise ValueError("final_date must come after the yearly grid")
        dates.append(final_date)
    return dates


def dense_date_grid(
    step: str = "monthly",
    start: dt.date = dt.date(2013, 1, 1),
    end: dt.date = dt.date(2020, 4, 1),
) -> list[dt.date]:
    """A dense, ascending date grid over the study window.

    ``step`` is ``"paper"`` (the eight paper dates), ``"monthly"`` (the
    first of every month) or ``"weekly"`` (every seventh day from
    ``start``).  Dense grids are what the temporal index and the
    engine's incremental snapshot evolution make affordable: between
    consecutive grid dates only a handful of licenses change state, so
    each point beyond the first costs a bisect and a delta walk rather
    than a full active-set scan.
    """
    if end < start:
        raise ValueError("end must not precede start")
    if step == "paper":
        return yearly_snapshot_dates()
    dates: list[dt.date] = []
    if step == "monthly":
        year, month = start.year, start.month
        while (year, month) <= (end.year, end.month):
            first_of_month = dt.date(year, month, 1)
            if start <= first_of_month <= end:
                dates.append(first_of_month)
            month += 1
            if month > 12:
                year, month = year + 1, 1
    elif step == "weekly":
        date = start
        while date <= end:
            dates.append(date)
            date += dt.timedelta(days=7)
    else:
        raise ValueError(f"unknown step {step!r} (paper, monthly, weekly)")
    return dates


@dataclass(frozen=True, slots=True)
class TimelinePoint:
    """One sample of a network's latency trajectory.

    ``latency_ms`` is None when the network has no end-to-end path on that
    date (the network does not appear on the plot for that year, like
    Pierce Broadband before 2020 in Fig 1).
    """

    date: dt.date
    latency_ms: float | None
    tower_count: int | None = None


def latency_timeline(
    database: UlsDatabase,
    corridor: CorridorSpec,
    licensee: str,
    dates: Sequence[dt.date],
    source: str | None = None,
    target: str | None = None,
    reconstructor: NetworkReconstructor | None = None,
    engine: CorridorEngine | None = None,
) -> list[TimelinePoint]:
    """The Fig 1 series: end-to-end latency of one licensee over time.

    Runs through a :class:`repro.core.engine.CorridorEngine`, so grid
    points whose active license set is unchanged reuse the stitched
    network and its routes.  Pass ``engine`` to share caches with other
    queries; ``reconstructor`` carries non-default reconstruction
    parameters — its corridor must agree with ``corridor`` (historically
    this silently trusted the caller).
    """
    from repro.core.engine import CorridorEngine

    source, target = corridor.resolve_path(source, target)
    if reconstructor is not None and reconstructor.corridor != corridor:
        raise ValueError(
            "reconstructor.corridor disagrees with the corridor argument"
        )
    if engine is None:
        if reconstructor is not None:
            engine = CorridorEngine(database, reconstructor=reconstructor)
        else:
            engine = CorridorEngine(database, corridor)
    elif reconstructor is not None:
        raise ValueError("pass either engine or reconstructor, not both")
    elif engine.corridor != corridor:
        raise ValueError("engine.corridor disagrees with the corridor argument")
    return engine.timeline(licensee, dates, source=source, target=target)


@dataclass(frozen=True, slots=True)
class LicenseCountSeries:
    """The Fig 2 series: active license counts for one licensee."""

    licensee: str
    dates: tuple[dt.date, ...]
    counts: tuple[int, ...]

    def as_pairs(self) -> list[tuple[dt.date, int]]:
        return list(zip(self.dates, self.counts))


def active_license_count(licenses: Iterable[License], on_date: dt.date) -> int:
    """Number of licenses active on a date."""
    return sum(1 for lic in licenses if lic.is_active(on_date))


def license_count_timeline(
    database: UlsDatabase,
    licensee: str,
    dates: Sequence[dt.date],
) -> LicenseCountSeries:
    """Active-license counts for ``licensee`` at each date.

    Served from the licensee's :class:`~repro.uls.index.TemporalIndex`:
    each point is a bisect into the cumulative event counts — O(log n)
    per date instead of one ``is_active`` scan over every filing — and
    no license list is materialised.
    """
    index = database.temporal_index(licensee)
    counts = tuple(index.active_count_at(date) for date in dates)
    return LicenseCountSeries(licensee=licensee, dates=tuple(dates), counts=counts)


def grant_cancellation_activity(
    database: UlsDatabase, licensee: str, year: int
) -> tuple[int, int]:
    """(grants, cancellations) filed by ``licensee`` during ``year``.

    §4 uses this to show churn that net counts hide (e.g. National Tower
    Company both granting and cancelling during 2014).
    """
    grants = 0
    cancellations = 0
    for lic in database.licenses_for(licensee):
        if lic.grant_date is not None and lic.grant_date.year == year:
            grants += 1
        if lic.cancellation_date is not None and lic.cancellation_date.year == year:
            cancellations += 1
    return grants, cancellations
