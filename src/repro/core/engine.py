"""The corridor engine: a caching query layer over reconstruction.

Every paper artefact (tables, figures, funnel, ablations, entities, flux,
monitoring) answers queries of the same shape — "this licensee's network on
this date", "the lowest-latency route on this date" — against topology that
changes only when a license is granted, cancelled or terminated.  The
paper's tool (:class:`~repro.core.reconstruction.NetworkReconstructor`)
recomputes stitching, fiber attachment and routing from scratch on every
call; across a timeline or a ranking sweep that repeats nearly all of the
work.

:class:`CorridorEngine` is the memoising layer the workload shape calls
for.  It owns one :class:`~repro.uls.database.UlsDatabase`, one
:class:`~repro.core.corridor.CorridorSpec`, one set of reconstruction
parameters, and three caches:

* a **snapshot cache** keyed on ``(licensee, active-license fingerprint,
  reconstruction params)`` — two dates on which a licensee's active
  license set is identical share one stitched network;
* a **geodesic memo** (:class:`repro.geodesy.memo.GeodesicMemo`) installed
  around every reconstruction, converting repeated Vincenty inverse
  solutions — the hot path under stitching, fiber attachment and link
  measurement — into lookups;
* a **route cache** for ``lowest_latency_route(source, target)`` per
  cached snapshot.

Cached results are *bit-identical* to cache-free reconstruction (property-
tested in ``tests/test_engine.py``): the memo stores exact solutions and
the snapshot cache stores the exact network object.  Reconstruction
parameters are part of every snapshot key, so engines built with different
stitch tolerances, fiber modes or latency models can never alias — and the
engine itself is parameter-immutable: build one engine per parameterisation
(see :meth:`repro.synth.scenario.Scenario.engine`).

The :class:`NetworkReconstructor` remains the cache-free kernel; the
engine wraps it and never changes its semantics.
"""

from __future__ import annotations

import datetime as dt
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro import obs
from repro.core.columnar import reconstruct_columnar
from repro.core.corridor import CorridorSpec
from repro.core.latency import LatencyModel
from repro.core.network import HftNetwork, Route
from repro.core.reconstruction import NetworkReconstructor
from repro.core.timeline import TimelinePoint
from repro.geodesy.memo import DEFAULT_MEMO_SIZE, GeodesicMemo, use_memo
from repro.uls.columnar import ColumnarLicenseStore
from repro.uls.database import UlsDatabase
from repro.uls.records import License

#: Default bound on cached snapshots.  A full corridor scenario has ~60
#: licensees × a handful of distinct active sets each; 512 covers every
#: analysis driver without eviction while bounding worst-case memory.
DEFAULT_SNAPSHOT_CACHE_SIZE = 512

#: Default bound on cached routes ((snapshot, source, target) triples).
DEFAULT_ROUTE_CACHE_SIZE = 4096

#: Process-wide default for :class:`CorridorEngine`'s ``incremental``
#: flag.  The CLI's ``--no-incremental`` flips this to replay the
#: pre-index behaviour (a full fingerprint scan per request) for the
#: byte-identity diff gates and honest benchmarking.
INCREMENTAL_DEFAULT = True

#: Process-wide default for :class:`CorridorEngine`'s ``kernel``
#: selection.  ``"columnar"`` runs cold reconstructions through the
#: flat-column kernel (:func:`repro.core.columnar.reconstruct_columnar`
#: over the database's :class:`~repro.uls.columnar.ColumnarLicenseStore`);
#: ``"object"`` replays the per-object :class:`NetworkReconstructor`
#: path.  Outputs are byte-identical (diff-gated in ``scripts/check.sh``),
#: so the kernel deliberately does **not** participate in cache keys —
#: snapshots built by either kernel are interchangeable.  The CLI's
#: ``--kernel`` flips this before any engine is built.
KERNEL_DEFAULT = "columnar"

#: Process-wide default persistent store for :class:`CorridorEngine`'s
#: ``store`` parameter.  Holds a :class:`repro.store.CacheStore` (or any
#: object with ``attach``/``load_into``/``save_from`` — the engine never
#: imports :mod:`repro.store`, keeping the layering DAG acyclic) or
#: ``None``.  The CLI's ``--cache-dir`` sets this before any engine is
#: built, so every engine constructed during a command auto-loads from
#: and checkpoints to the on-disk store.
STORE_DEFAULT = None

_KERNELS = ("columnar", "object")

_MISSING = object()


def _license_content_digest(licenses: Iterable[License]) -> str:
    """A stable digest of full license *content*, not just ids.

    Keys :meth:`CorridorEngine.snapshot_from_licenses` entries for
    record sets that are not verbatim database rows (scraped licenses
    differ in the low float bits), so they can never alias a
    database-derived snapshot.  Dataclass reprs spell out every field
    deterministically; sorting by id makes the digest order-insensitive.
    """
    hasher = hashlib.sha256()
    for lic in sorted(licenses, key=lambda item: item.license_id):
        hasher.update(repr(lic).encode("utf-8"))
    return hasher.hexdigest()


@dataclass(frozen=True, slots=True)
class CacheCounter:
    """Hit/miss/eviction counts for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True, slots=True)
class CacheStats:
    """A point-in-time snapshot of all three engine caches.

    ``snapshot_incremental`` / ``snapshot_full`` split snapshot-key
    resolutions by how the active-set fingerprint was derived: evolved
    from a per-licensee cursor via a :class:`~repro.uls.index
    .TemporalDelta` (incremental) versus computed from scratch (full —
    first touch of a licensee, a stale cursor after a database mutation,
    or ``incremental=False``).  ``index_events`` is the temporal index's
    event count over the engine's database.
    """

    snapshot: CacheCounter
    route: CacheCounter
    geodesic: CacheCounter
    snapshot_incremental: int = 0
    snapshot_full: int = 0
    index_events: int = 0

    @property
    def incremental_share(self) -> float:
        """Fraction of snapshot-key resolutions served incrementally."""
        total = self.snapshot_incremental + self.snapshot_full
        return self.snapshot_incremental / total if total else 0.0

    def describe(self) -> str:
        """A short human-readable summary (the CLI's ``--cache-stats``)."""
        lines = ["engine cache stats:"]
        for name, counter in (
            ("snapshot", self.snapshot),
            ("route", self.route),
            ("geodesic", self.geodesic),
        ):
            lines.append(
                f"  {name:9s} hits={counter.hits}  misses={counter.misses}  "
                f"evictions={counter.evictions}  entries={counter.size}  "
                f"hit-rate={counter.hit_rate:.1%}"
            )
        lines.append(
            f"  snapshot resolutions: incremental={self.snapshot_incremental}  "
            f"full={self.snapshot_full}  "
            f"incremental-share={self.incremental_share:.1%}"
        )
        lines.append(f"  temporal index: events={self.index_events}")
        return "\n".join(lines)


class _LruCache:
    """A bounded LRU mapping with hit/miss/eviction accounting."""

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("cache size must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, default: object = None) -> object:
        entry = self._entries.get(key, _MISSING)
        if entry is _MISSING:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: object) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value

    def items(self) -> tuple[tuple[Hashable, object], ...]:
        """Every cached (key, value) pair, LRU order (oldest first)."""
        return tuple(self._entries.items())

    def keys(self) -> frozenset:
        """The cached keys (for delta computation)."""
        return frozenset(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def counter(self) -> CacheCounter:
        return CacheCounter(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
        )


def _counter_delta(now: CacheCounter, before: CacheCounter) -> CacheCounter:
    """Counter activity between two snapshots (``size`` = current size)."""
    return CacheCounter(
        hits=now.hits - before.hits,
        misses=now.misses - before.misses,
        evictions=now.evictions - before.evictions,
        size=now.size,
    )


@dataclass(frozen=True)
class EngineCacheExport:
    """A picklable copy of an engine's cache *contents* (no counters).

    Produced by :meth:`CorridorEngine.export_cache_state` and installed
    with :meth:`CorridorEngine.seed_cache_state`: the parallel layer ships
    one of these to each worker so a fanned-out grid starts from the same
    warm state a serial run would have at that point.  Every entry is
    exact (memoised Vincenty solutions, the cached network/route objects
    themselves), so seeding never perturbs results.
    """

    params_key: tuple
    snapshots: tuple[tuple[Hashable, HftNetwork], ...]
    routes: tuple[tuple[Hashable, Route | None], ...]
    geodesic: tuple[tuple[tuple, tuple], ...]
    #: Per-licensee snapshot cursors ((licensee, date, key, generation)),
    #: sorted by licensee — workers adopt them so their first touch of a
    #: cursored licensee evolves incrementally, exactly as the parent
    #: would have.
    cursors: tuple[tuple[str, dt.date, tuple, int], ...] = ()


@dataclass(frozen=True)
class EngineCacheBaseline:
    """Key sets + counters at one instant (delta bookkeeping, not pickled)."""

    snapshot_keys: frozenset
    route_keys: frozenset
    geodesic_keys: frozenset
    stats: CacheStats


@dataclass(frozen=True)
class EngineCacheDelta:
    """What one engine learned since a baseline: new entries + counters.

    Workers return these to the parent process, which
    :meth:`CorridorEngine.absorb_cache_delta`\\ s them so the parallel run
    leaves the parent engine in the same warm cache state a serial run
    would — entries are installed without inflating hit/miss counters and
    the worker's counter activity is added on top.
    """

    params_key: tuple
    snapshots: tuple[tuple[Hashable, HftNetwork], ...]
    routes: tuple[tuple[Hashable, Route | None], ...]
    geodesic: tuple[tuple[tuple, tuple], ...]
    stats: CacheStats
    #: The worker's snapshot cursors at collection time (same shape as
    #: :attr:`EngineCacheExport.cursors`); the parent adopts them so its
    #: next request for those licensees evolves incrementally.
    cursors: tuple[tuple[str, dt.date, tuple, int], ...] = ()


class _SnapshotCursor:
    """Per-licensee incremental-evolution state.

    Remembers the last resolved ``(date, snapshot key)`` for a licensee
    and the database generation it was derived under; the next request
    for that licensee consults ``TemporalIndex.diff`` from here instead
    of recomputing the fingerprint from scratch.
    """

    __slots__ = ("date", "key", "generation")

    def __init__(self, date: dt.date, key: tuple, generation: int) -> None:
        self.date = date
        self.key = key
        self.generation = generation


class CorridorEngine:
    """Snapshot/route cache layer over one database + one parameter set.

    Parameters
    ----------
    database:
        The license records every query runs against.
    corridor:
        The corridor's data centers.  May be omitted when
        ``reconstructor`` is given (taken from it); when both are given
        they must agree.
    reconstructor:
        An existing cache-free kernel to wrap.  Mutually exclusive with
        the individual parameter keywords below.
    latency_model / stitch_tolerance_m / max_fiber_tail_m / fiber_mode:
        Reconstruction parameters, forwarded to the kernel
        :class:`NetworkReconstructor`.  All parameters participate in
        every cache key, so differently-parameterised engines never share
        entries.
    snapshot_cache_size / route_cache_size / geodesic_memo_size:
        Bounds on the three caches (LRU eviction).
    incremental:
        Whether snapshot keys evolve incrementally from per-licensee
        cursors via the database's :class:`~repro.uls.index
        .TemporalIndex` (the default; ``None`` defers to the
        process-wide :data:`INCREMENTAL_DEFAULT`).  ``False`` replays
        the pre-index behaviour — a linear active-set scan per request —
        and is only useful for equivalence gates and benchmarks.
    kernel:
        ``"columnar"`` (cold reconstructions run over the database's
        flat :class:`~repro.uls.columnar.ColumnarLicenseStore`) or
        ``"object"`` (the per-object :class:`NetworkReconstructor`
        path).  ``None`` defers to the process-wide
        :data:`KERNEL_DEFAULT`.  Both kernels produce byte-identical
        networks, so the choice affects cold-path speed only and is not
        part of any cache key.
    store:
        A persistent on-disk cache store (:class:`repro.store
        .CacheStore`).  ``None`` defers to the process-wide
        :data:`STORE_DEFAULT` (itself ``None`` unless the CLI engaged a
        store); ``False`` opts out explicitly.  With a store attached the
        engine auto-loads a matching entry on construction and
        :meth:`checkpoint` persists its caches back.
    """

    def __init__(
        self,
        database: UlsDatabase,
        corridor: CorridorSpec | None = None,
        *,
        reconstructor: NetworkReconstructor | None = None,
        latency_model: LatencyModel | None = None,
        stitch_tolerance_m: float | None = None,
        max_fiber_tail_m: float | None = None,
        fiber_mode: str | None = None,
        snapshot_cache_size: int = DEFAULT_SNAPSHOT_CACHE_SIZE,
        route_cache_size: int = DEFAULT_ROUTE_CACHE_SIZE,
        geodesic_memo_size: int = DEFAULT_MEMO_SIZE,
        incremental: bool | None = None,
        kernel: str | None = None,
        store: object | None = None,
    ) -> None:
        params_given = any(
            value is not None
            for value in (
                latency_model,
                stitch_tolerance_m,
                max_fiber_tail_m,
                fiber_mode,
            )
        )
        if reconstructor is not None:
            if params_given:
                raise ValueError(
                    "pass reconstruction parameters either via reconstructor= "
                    "or via keywords, not both"
                )
            if corridor is not None and corridor != reconstructor.corridor:
                raise ValueError(
                    "corridor disagrees with reconstructor.corridor; "
                    "pass one or the other"
                )
        else:
            if corridor is None:
                raise ValueError("pass a corridor (or a reconstructor)")
            kwargs: dict = {}
            if latency_model is not None:
                kwargs["latency_model"] = latency_model
            if stitch_tolerance_m is not None:
                kwargs["stitch_tolerance_m"] = stitch_tolerance_m
            if max_fiber_tail_m is not None:
                kwargs["max_fiber_tail_m"] = max_fiber_tail_m
            if fiber_mode is not None:
                kwargs["fiber_mode"] = fiber_mode
            reconstructor = NetworkReconstructor(corridor, **kwargs)

        kernel = KERNEL_DEFAULT if kernel is None else kernel
        if kernel not in _KERNELS:
            raise ValueError(
                f"unknown reconstruction kernel: {kernel!r} "
                f"(expected one of {_KERNELS})"
            )
        self.database = database
        self.reconstructor = reconstructor
        self.corridor = reconstructor.corridor
        self.kernel = kernel
        self.incremental = (
            INCREMENTAL_DEFAULT if incremental is None else bool(incremental)
        )
        self._snapshots = _LruCache(snapshot_cache_size)
        self._routes = _LruCache(route_cache_size)
        self._geodesic_memo = GeodesicMemo(geodesic_memo_size)
        self._cursors: dict[str, _SnapshotCursor] = {}
        self._incremental_resolutions = 0
        self._full_resolutions = 0
        self._delta_ids_total = 0
        # The engine's caches (LRU dicts, cursors, counters) are not
        # internally synchronised; concurrent callers serialise through
        # this lock (see repro.serve.facade.EngineFacade).  Engines are
        # never pickled — parallel workers rebuild their own — so the
        # lock never crosses a process boundary.
        self._lock = threading.RLock()
        if store is None:
            store = STORE_DEFAULT
        elif store is False:
            store = None
        self.store = store
        if self.store is not None:
            self.store.attach(self)

    def locked(self) -> threading.RLock:
        """The engine's reentrant guard, for ``with engine.locked():``.

        Every mutation of engine state (snapshot resolution, route
        lookups, cache transplants) by concurrent callers must run under
        this lock; single-threaded drivers may ignore it.
        """
        return self._lock

    # ------------------------------------------------------------------
    # Cache keys
    # ------------------------------------------------------------------

    @property
    def params_key(self) -> tuple:
        """The reconstruction-parameter component of every cache key."""
        kernel = self.reconstructor
        model = kernel.latency_model
        return (
            kernel.stitch_tolerance_m,
            kernel.max_fiber_tail_m,
            kernel.fiber_mode,
            model.microwave_speed,
            model.fiber_speed,
            model.per_tower_overhead_s,
        )

    def active_fingerprint(
        self, licensee: str, on_date: dt.date
    ) -> frozenset[str]:
        """The ids of ``licensee``'s licenses active on ``on_date``.

        This is the invariant the snapshot cache exploits: the stitched
        network is a pure function of (active license set, parameters), so
        any two dates with equal fingerprints share a snapshot.

        Incremental engines derive the set from the database's
        :class:`~repro.uls.index.TemporalIndex` (O(log n) warm, and the
        *same* frozenset object per constant-active-set interval, so key
        hashing stays cheap); full-rebuild engines scan the license list,
        exactly as before the index existed.
        """
        if self.incremental:
            return self.database.temporal_index(licensee).active_ids_at(on_date)
        return self._scan_fingerprint(licensee, on_date)

    def _scan_fingerprint(
        self, licensee: str, on_date: dt.date
    ) -> frozenset[str]:
        """The pre-index fingerprint path: one activity test per filing.

        The columnar kernel scans the store's integer activity-interval
        columns; the object kernel runs ``License.is_active`` per filing.
        Both produce the identical frozenset (``license_interval`` mirrors
        ``is_active`` exactly).
        """
        if self.kernel == "columnar":
            return self.database.columnar_store().active_ids(licensee, on_date)
        return frozenset(
            lic.license_id
            for lic in self.database.licenses_for(licensee)
            if lic.is_active(on_date)
        )

    def snapshot_key(self, licensee: str, on_date: dt.date) -> tuple:
        """The snapshot-cache key for (licensee, date) under this engine.

        Pure (no counters moved, no cursor state touched) — the counting
        resolution path every query runs through is :meth:`_resolve_key`.
        """
        return (
            licensee,
            self.active_fingerprint(licensee, on_date),
            self.params_key,
        )

    def _resolve_key(
        self, licensee: str, on_date: dt.date
    ) -> tuple[tuple, str, int]:
        """Resolve a snapshot key, evolving the licensee's cursor.

        Returns ``(key, resolution, delta_size)`` where ``resolution`` is
        ``"incremental"`` (derived from an existing cursor via
        ``TemporalIndex.diff``) or ``"full"`` (computed from scratch:
        first touch, stale cursor generation, or ``incremental=False``).
        An empty delta reuses the cursor's key outright — the exact same
        tuple object, fingerprint untouched — so consecutive grid dates
        with no license events cost a bisect and nothing else.
        """
        if not self.incremental:
            self._full_resolutions += 1
            obs.count("engine.snapshot.full")
            key = (licensee, self._scan_fingerprint(licensee, on_date), self.params_key)
            return key, "full", 0
        generation = self.database.generation
        cursor = self._cursors.get(licensee)
        if cursor is not None and cursor.generation == generation:
            delta_size = 0
            if cursor.date != on_date:
                index = self.database.temporal_index(licensee)
                delta = index.diff(cursor.date, on_date)
                if delta:
                    delta_size = delta.size
                    self._delta_ids_total += delta_size
                    cursor.key = (
                        licensee,
                        index.active_ids_at(on_date),
                        self.params_key,
                    )
                cursor.date = on_date
            self._incremental_resolutions += 1
            obs.count("engine.snapshot.incremental")
            return cursor.key, "incremental", delta_size
        fingerprint = self.database.temporal_index(licensee).active_ids_at(on_date)
        key = (licensee, fingerprint, self.params_key)
        self._cursors[licensee] = _SnapshotCursor(on_date, key, generation)
        self._full_resolutions += 1
        obs.count("engine.snapshot.full")
        return key, "full", 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def snapshot(self, licensee: str, on_date: dt.date) -> HftNetwork:
        """``licensee``'s network on ``on_date`` (cached by active set).

        Equivalent to ``NetworkReconstructor.reconstruct_licensee`` — the
        returned network always carries the requested ``as_of`` date, even
        when its topology was stitched for an earlier query.
        """
        with obs.span("engine.snapshot", licensee=licensee) as span:
            key, resolution, delta_size = self._resolve_key(licensee, on_date)
            span.tag(resolution=resolution, delta_ids=delta_size)
            network = self._snapshot_for_key(key, licensee, on_date)
        return network.with_as_of(on_date)

    def _snapshot_for_key(
        self, key: tuple, licensee: str, on_date: dt.date
    ) -> HftNetwork:
        """The cached network for a resolved key (``as_of`` = first query's
        date).  The lookup always runs — even when an empty delta proved
        the key unchanged — so hit/miss accounting and LRU order are
        exactly what a full-rebuild engine would produce."""
        network = self._snapshots.get(key)
        if network is None:
            obs.count("engine.snapshot.miss")
            network = self._reconstruct_memoised(
                self._cold_build(licensee, on_date), licensee
            )
            self._snapshots.put(key, network)
        else:
            obs.count("engine.snapshot.hit")
        return network

    def _cold_build(self, licensee: str, on_date: dt.date):
        """The kernel-selected cold-reconstruction thunk for one snapshot.

        For the columnar kernel the license store is fetched (and, on
        generation change, rebuilt) *before* the memoised window opens:
        store construction is a per-generation cost with its own
        ``kernel.columnar.store.build`` span, not part of any single
        snapshot's build time.
        """
        if self.kernel == "columnar":
            store = self.database.columnar_store()
            recon = self.reconstructor
            return lambda: reconstruct_columnar(
                store,
                licensee,
                on_date,
                corridor=self.corridor,
                latency_model=recon.latency_model,
                stitch_tolerance_m=recon.stitch_tolerance_m,
                max_fiber_tail_m=recon.max_fiber_tail_m,
                fiber_mode=recon.fiber_mode,
            )
        return lambda: self.reconstructor.reconstruct_licensee(
            self.database, licensee, on_date
        )

    def _reconstruct_memoised(self, build, licensee: str) -> HftNetwork:
        """Run one reconstruction under the engine's geodesic memo.

        The ``geodesy.memo`` span covers the window the memo is installed
        for; its hit/miss deltas (this reconstruction only) are tagged on
        the span and accumulated into the session counters.
        """
        memo = self._geodesic_memo
        hits_before, misses_before = memo.hits, memo.misses
        with obs.span("engine.snapshot.build", licensee=licensee):
            with obs.span("geodesy.memo", licensee=licensee) as memo_span:
                with use_memo(memo):
                    network = build()
                memo_span.tag(
                    hits=memo.hits - hits_before,
                    misses=memo.misses - misses_before,
                )
            obs.count("geodesy.memo.hit", memo.hits - hits_before)
            obs.count("geodesy.memo.miss", memo.misses - misses_before)
        return network

    def snapshot_from_licenses(
        self,
        licenses: Iterable[License],
        on_date: dt.date,
        licensee: str | None = None,
    ) -> HftNetwork:
        """A cached reconstruction of an explicit license set.

        For callers whose records do not come straight out of the engine's
        database: the §2.2 funnel reconstructs *scraped* licenses, and
        entity resolution pools filings across licensees.  When every
        active record is byte-identical to the database's row of the same
        id (pooled database rows are), the cache key fingerprints the
        active license ids exactly as :meth:`snapshot` does (ids are
        unique corridor-wide), under the resolved network name — so those
        callers share snapshots with the ranking/timeline drivers.

        Records that *differ* from the database's — scraped licenses,
        whose coordinates lose ~1e-8 deg through the portal's DMS
        round-trip — get a content-digested key instead.  Sharing the
        ids-only slot would let the scraped variant overwrite the
        database-derived snapshot and leak its perturbed floats into
        every later :meth:`snapshot` result (the byte-parity contracts
        in scripts/check.sh and the serve tier pin this).
        """
        license_list = list(licenses)
        if licensee is None:
            names = {lic.licensee_name for lic in license_list}
            if len(names) > 1:
                raise ValueError(
                    "licenses span multiple licensees; pass licensee= "
                    f"explicitly (found {sorted(names)})"
                )
            licensee = next(iter(names)) if names else "(empty)"
        active = [lic for lic in license_list if lic.is_active(on_date)]
        fingerprint = frozenset(lic.license_id for lic in active)
        verbatim = all(
            lic.license_id in self.database
            and self.database.get(lic.license_id) == lic
            for lic in active
        )
        if verbatim:
            key = (licensee, fingerprint, self.params_key)
        else:
            key = (
                licensee,
                (fingerprint, _license_content_digest(active)),
                self.params_key,
            )
        with obs.span("engine.snapshot", licensee=licensee, source="licenses"):
            network = self._snapshots.get(key)
            if network is None:
                obs.count("engine.snapshot.miss")
                if self.kernel == "columnar":
                    # An ephemeral store over just these records (they are
                    # not the engine database's rows), built outside the
                    # memoised window like the per-generation store.
                    store = ColumnarLicenseStore({licensee: license_list})
                    recon = self.reconstructor

                    def build() -> HftNetwork:
                        return reconstruct_columnar(
                            store,
                            licensee,
                            on_date,
                            corridor=self.corridor,
                            latency_model=recon.latency_model,
                            stitch_tolerance_m=recon.stitch_tolerance_m,
                            max_fiber_tail_m=recon.max_fiber_tail_m,
                            fiber_mode=recon.fiber_mode,
                        )

                else:

                    def build() -> HftNetwork:
                        return self.reconstructor.reconstruct(
                            license_list, on_date, licensee=licensee
                        )

                network = self._reconstruct_memoised(build, licensee)
                self._snapshots.put(key, network)
            else:
                obs.count("engine.snapshot.hit")
        return network.with_as_of(on_date)

    def route(
        self, licensee: str, on_date: dt.date, source: str, target: str
    ) -> Route | None:
        """The lowest-latency ``source``→``target`` route, or None.

        Routes are cached per snapshot (so per active-set fingerprint, not
        per date) and per endpoint pair.  The snapshot key is resolved
        once — incrementally when the licensee has a cursor — and shared
        between the route lookup and any snapshot rebuild.
        """
        snapshot_key, _, _ = self._resolve_key(licensee, on_date)
        key = (snapshot_key, source, target)
        route = self._routes.get(key, _MISSING)
        if route is _MISSING:
            obs.count("engine.route.miss")
            with obs.span(
                "engine.route", licensee=licensee, source=source, target=target
            ):
                network = self._snapshot_for_key(snapshot_key, licensee, on_date)
                route = network.lowest_latency_route(source, target)
            self._routes.put(key, route)
        else:
            obs.count("engine.route.hit")
        return route

    def is_connected(
        self, licensee: str, on_date: dt.date, source: str, target: str
    ) -> bool:
        """Whether an end-to-end path exists (via the route cache)."""
        return self.route(licensee, on_date, source, target) is not None

    def connected_networks(
        self,
        on_date: dt.date,
        source: str,
        target: str,
        licensees: Iterable[str] | None = None,
    ) -> list[HftNetwork]:
        """Networks with an end-to-end path on ``on_date`` (§3).

        Mirrors ``NetworkReconstructor.connected_networks``, with every
        snapshot and connectivity probe served through the caches.
        """
        names = (
            list(licensees)
            if licensees is not None
            else self.database.licensee_names()
        )
        return [
            self.snapshot(name, on_date)
            for name in names
            if self.is_connected(name, on_date, source, target)
        ]

    def timeline(
        self,
        licensee: str,
        dates: Sequence[dt.date],
        source: str | None = None,
        target: str | None = None,
    ) -> list[TimelinePoint]:
        """The Fig 1 series: one licensee's route latency over a date grid.

        The grid is walked in order as successive deltas: each date's
        snapshot key evolves from the previous one via the temporal
        index, so dates with no license events between them cost a
        bisect, a route-cache hit and nothing else.  The span records
        how the grid resolved (incremental vs full) and the total number
        of license ids that changed state across it.
        """
        source, target = self.corridor.resolve_path(source, target)
        with obs.span(
            "engine.timeline",
            licensee=licensee,
            points=len(dates),
            source=source,
            target=target,
        ) as span:
            incremental_before = self._incremental_resolutions
            full_before = self._full_resolutions
            delta_before = self._delta_ids_total
            points = self._timeline_points(licensee, dates, source, target)
            span.tag(
                incremental=self._incremental_resolutions - incremental_before,
                full=self._full_resolutions - full_before,
                delta_ids=self._delta_ids_total - delta_before,
            )
            return points

    def _timeline_points(
        self,
        licensee: str,
        dates: Sequence[dt.date],
        source: str,
        target: str,
    ) -> list[TimelinePoint]:
        points = []
        for date in dates:
            route = self.route(licensee, date, source, target)
            if route is None:
                points.append(TimelinePoint(date=date, latency_ms=None))
            else:
                points.append(
                    TimelinePoint(
                        date=date,
                        latency_ms=route.latency_ms,
                        tower_count=route.tower_count,
                    )
                )
        return points

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters for all three caches (a snapshot)."""
        memo = self._geodesic_memo
        return CacheStats(
            snapshot=self._snapshots.counter(),
            route=self._routes.counter(),
            geodesic=CacheCounter(
                hits=memo.hits,
                misses=memo.misses,
                evictions=memo.evictions,
                size=len(memo),
            ),
            snapshot_incremental=self._incremental_resolutions,
            snapshot_full=self._full_resolutions,
            index_events=self.database.temporal_index().event_count,
        )

    def clear_caches(self) -> None:
        """Drop all cached snapshots, routes, geodesic solutions and
        snapshot cursors.

        Counters are preserved (they describe lifetime behaviour); sizes
        return to zero.
        """
        self._snapshots.clear()
        self._routes.clear()
        self._geodesic_memo.clear()
        self._cursors.clear()

    # ------------------------------------------------------------------
    # Cache transplanting (the repro.parallel merge-back protocol)
    # ------------------------------------------------------------------

    def export_cache_state(
        self, geodesic_only: bool = False
    ) -> EngineCacheExport:
        """A picklable copy of the current cache contents (no counters).

        With ``geodesic_only`` the snapshot/route caches are omitted:
        geodesic memo entries are parameter-independent exact solutions,
        so they may seed a *differently*-parameterised engine (sibling
        seeding in a sweep), while snapshots/routes are only meaningful
        under the same ``params_key``.
        """
        memo = self._geodesic_memo
        return EngineCacheExport(
            params_key=self.params_key,
            snapshots=() if geodesic_only else self._snapshots.items(),
            routes=() if geodesic_only else self._routes.items(),
            geodesic=memo.entries(),
            cursors=() if geodesic_only else self._export_cursors(),
        )

    def _export_cursors(self) -> tuple[tuple[str, dt.date, tuple, int], ...]:
        """Picklable cursor state, sorted by licensee for determinism."""
        return tuple(
            (licensee, cursor.date, cursor.key, cursor.generation)
            for licensee, cursor in sorted(self._cursors.items())
        )

    def _install_cursors(
        self, cursors: tuple[tuple[str, dt.date, tuple, int], ...]
    ) -> None:
        """Adopt exported cursors (no counters move — not a resolution).

        Cursors from a different database generation are ignored: their
        fingerprints may predate a mutation this engine has seen.
        """
        generation = self.database.generation
        for licensee, date, key, cursor_generation in cursors:
            if cursor_generation == generation:
                self._cursors[licensee] = _SnapshotCursor(date, key, generation)

    def seed_cache_state(
        self, export: EngineCacheExport, geodesic_only: bool = False
    ) -> None:
        """Install exported entries into this engine's caches.

        Installation counts no hits or misses (it is not a lookup);
        entries beyond a cache's capacity evict LRU-first as usual.
        Snapshot/route entries require a matching ``params_key`` — pass
        ``geodesic_only`` to transplant only the memo across
        parameterisations.
        """
        if not geodesic_only and export.params_key != self.params_key:
            raise ValueError(
                "cache export was taken under different reconstruction "
                "parameters; re-export with geodesic_only=True"
            )
        for key, solution in export.geodesic:
            self._geodesic_memo.store(key, solution)
        if geodesic_only:
            return
        for key, network in export.snapshots:
            self._snapshots.put(key, network)
        for key, route in export.routes:
            self._routes.put(key, route)
        self._install_cursors(export.cursors)

    def checkpoint(self):
        """Persist this engine's cache contents to its attached store.

        A no-op (returning ``None``) without a store; otherwise returns
        the path the store published the entry at.  Because an attached
        engine loaded the store's entry on construction, its caches are a
        superset of the entry (modulo LRU eviction), so a checkpoint
        never loses previously persisted state.
        """
        if self.store is None:
            return None
        with self._lock:
            return self.store.save_from(self)

    def cache_baseline(self) -> EngineCacheBaseline:
        """A point-in-time marker for :meth:`collect_cache_delta`."""
        return EngineCacheBaseline(
            snapshot_keys=self._snapshots.keys(),
            route_keys=self._routes.keys(),
            geodesic_keys=self._geodesic_memo.keys(),
            stats=self.stats,
        )

    def collect_cache_delta(
        self, baseline: EngineCacheBaseline
    ) -> EngineCacheDelta:
        """Entries learned and counter activity since ``baseline``."""
        now = self.stats
        return EngineCacheDelta(
            params_key=self.params_key,
            snapshots=tuple(
                (key, value)
                for key, value in self._snapshots.items()
                if key not in baseline.snapshot_keys
            ),
            routes=tuple(
                (key, value)
                for key, value in self._routes.items()
                if key not in baseline.route_keys
            ),
            geodesic=tuple(
                (key, value)
                for key, value in self._geodesic_memo.entries()
                if key not in baseline.geodesic_keys
            ),
            stats=CacheStats(
                snapshot=_counter_delta(now.snapshot, baseline.stats.snapshot),
                route=_counter_delta(now.route, baseline.stats.route),
                geodesic=_counter_delta(now.geodesic, baseline.stats.geodesic),
                snapshot_incremental=(
                    now.snapshot_incremental
                    - baseline.stats.snapshot_incremental
                ),
                snapshot_full=now.snapshot_full - baseline.stats.snapshot_full,
                index_events=now.index_events,
            ),
            cursors=self._export_cursors(),
        )

    def absorb_cache_delta(self, delta: EngineCacheDelta) -> None:
        """Merge a worker's delta back: entries installed, counters added.

        After absorbing every worker's delta, the parent engine holds the
        same cache contents a serial run would have produced, and its
        counters account for the work the workers did on its behalf.
        """
        if delta.params_key != self.params_key:
            raise ValueError(
                "cache delta was collected under different reconstruction "
                "parameters than this engine's"
            )
        for key, solution in delta.geodesic:
            self._geodesic_memo.store(key, solution)
        for key, network in delta.snapshots:
            self._snapshots.put(key, network)
        for key, route in delta.routes:
            self._routes.put(key, route)
        memo = self._geodesic_memo
        memo.hits += delta.stats.geodesic.hits
        memo.misses += delta.stats.geodesic.misses
        memo.evictions += delta.stats.geodesic.evictions
        for cache, counter in (
            (self._snapshots, delta.stats.snapshot),
            (self._routes, delta.stats.route),
        ):
            cache.hits += counter.hits
            cache.misses += counter.misses
            cache.evictions += counter.evictions
        self._incremental_resolutions += delta.stats.snapshot_incremental
        self._full_resolutions += delta.stats.snapshot_full
        self._install_cursors(delta.cursors)

    def with_params(self, **overrides) -> "CorridorEngine":
        """A fresh engine sharing this database with parameter overrides.

        Parameter sweeps (ablations) must not share caches across
        parameterisations; this constructs the parameter-distinct sibling
        with empty caches.  Accepts the reconstruction-parameter keywords
        of the constructor (``latency_model``, ``stitch_tolerance_m``,
        ``max_fiber_tail_m``, ``fiber_mode``).
        """
        kernel = self.reconstructor
        base = {
            "latency_model": kernel.latency_model,
            "stitch_tolerance_m": kernel.stitch_tolerance_m,
            "max_fiber_tail_m": kernel.max_fiber_tail_m,
            "fiber_mode": kernel.fiber_mode,
        }
        unknown = set(overrides) - set(base)
        if unknown:
            raise TypeError(f"unknown reconstruction parameters: {sorted(unknown)}")
        base.update(overrides)
        return CorridorEngine(
            self.database,
            self.corridor,
            snapshot_cache_size=self._snapshots.maxsize,
            route_cache_size=self._routes.maxsize,
            geodesic_memo_size=self._geodesic_memo.maxsize,
            incremental=self.incremental,
            kernel=self.kernel,
            store=False,
            **base,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CorridorEngine(licensees={len(self.database.licensee_names())}, "
            f"snapshots={len(self._snapshots)}, routes={len(self._routes)})"
        )
