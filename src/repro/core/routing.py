"""Routing beyond the single shortest path.

The §5 analyses need more than Dijkstra:

* all *loop-free paths* between two data centers whose latency stays
  within a bound (5% above the c-speed geodesic latency) — used for the
  link-length CDFs of Fig 4(a);
* the set of *links* lying on at least one such path — used when full
  enumeration would be combinatorial;
* *alternate-path* edges (near-optimal edges off the shortest path) —
  used for the NLN-alternate frequency CDF of Fig 4(b).

Enumeration is a depth-first search pruned with exact distance-to-target
lower bounds from a reverse Dijkstra, so it only explores prefixes that can
still finish within the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterator

import networkx as nx

Node = Hashable
EdgeKey = frozenset

#: Relative slack absorbing floating-point noise in bound comparisons:
#: two mathematically equal path sums can differ by ~1e-15 relative when
#: accumulated in different orders, which would make a latency bound of
#: exactly the shortest-path latency reject the shortest path itself.
_BOUND_EPSILON = 1e-9


def _within(value: float, bound: float) -> bool:
    """value <= bound, tolerant of accumulation-order float noise."""
    return value <= bound * (1.0 + _BOUND_EPSILON)


class PathExplosionError(RuntimeError):
    """Raised when bounded enumeration exceeds its safety cap."""


def distance_maps(
    graph: nx.Graph, source: Node, target: Node
) -> tuple[dict[Node, float], dict[Node, float]]:
    """Shortest latencies from ``source`` and to ``target`` for all nodes."""
    from_source = nx.single_source_dijkstra_path_length(graph, source, weight="latency_s")
    to_target = nx.single_source_dijkstra_path_length(graph, target, weight="latency_s")
    return from_source, to_target


@dataclass(frozen=True)
class BoundedPath:
    """One loop-free path found within the latency bound."""

    nodes: tuple[Node, ...]
    latency_s: float


def enumerate_paths_within_bound(
    graph: nx.Graph,
    source: Node,
    target: Node,
    latency_bound_s: float,
    max_paths: int = 100_000,
) -> list[BoundedPath]:
    """All loop-free source→target paths with latency ≤ ``latency_bound_s``.

    Exact DFS with admissible pruning: a prefix is extended only while
    ``latency(prefix) + dist_to_target(head) ≤ bound``.  Raises
    :class:`PathExplosionError` if more than ``max_paths`` paths qualify —
    callers that only need the *edges* of such paths should use
    :func:`edges_within_latency_bound` instead, which never explodes.
    """
    if source not in graph or target not in graph:
        return []
    to_target = nx.single_source_dijkstra_path_length(graph, target, weight="latency_s")
    if source not in to_target or not _within(to_target[source], latency_bound_s):
        return []

    paths: list[BoundedPath] = []
    stack: list[Node] = [source]
    on_stack: set[Node] = {source}

    def dfs(node: Node, latency_so_far: float) -> None:
        if node == target:
            paths.append(BoundedPath(nodes=tuple(stack), latency_s=latency_so_far))
            if len(paths) > max_paths:
                raise PathExplosionError(
                    f"more than {max_paths} paths within bound"
                )
            return
        for neighbor in graph.neighbors(node):
            if neighbor in on_stack:
                continue
            edge_latency = graph.edges[node, neighbor]["latency_s"]
            new_latency = latency_so_far + edge_latency
            remaining = to_target.get(neighbor)
            if remaining is None or not _within(new_latency + remaining, latency_bound_s):
                continue
            stack.append(neighbor)
            on_stack.add(neighbor)
            dfs(neighbor, new_latency)
            stack.pop()
            on_stack.remove(neighbor)

    dfs(source, 0.0)
    paths.sort(key=lambda path: path.latency_s)
    return paths


def _avoiding_distance(
    graph: nx.Graph, source: Node, target: Node, avoid: Node
) -> float | None:
    """Shortest latency source→target in ``graph`` minus node ``avoid``."""
    if source == avoid or target == avoid:
        return None
    view = nx.restricted_view(graph, [avoid], [])
    try:
        return nx.dijkstra_path_length(view, source, target, weight="latency_s")
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None


def edges_within_latency_bound(
    graph: nx.Graph,
    source: Node,
    target: Node,
    latency_bound_s: float,
) -> set[frozenset]:
    """Edges lying on at least one near-optimal source→target path.

    An edge (u, v) qualifies iff, in some orientation,
    ``d(source→u avoiding v) + latency(u,v) + d(v→target avoiding u) ≤
    bound``.  The avoid-node refinement rejects dead-end edges (e.g. a
    stub branch towards another data center): the plain
    ``d(s,u)+w+d(v,t)`` test accepts them even though no loop-free path
    uses them, because the return distance doubles back over the edge.
    The two partial paths could in principle still share an interior node
    (making the concatenation non-simple); on corridor-shaped networks,
    where near-optimal partial paths progress monotonically along the
    corridor, this does not occur — and the exact (exponential)
    enumeration in :func:`enumerate_paths_within_bound` is available to
    cross-check on small networks.

    A cheap ``d(s,u)+w+d(v,t)`` pre-filter avoids the two per-edge
    Dijkstras for the vast majority of non-qualifying edges.
    """
    if source not in graph or target not in graph:
        return set()
    from_source, to_target = distance_maps(graph, source, target)
    edges: set[frozenset] = set()
    for u, v, data in graph.edges(data=True):
        latency = data["latency_s"]
        for a, b in ((u, v), (v, u)):
            da = from_source.get(a)
            tb = to_target.get(b)
            if da is None or tb is None or not _within(da + latency + tb, latency_bound_s):
                continue  # fails even the optimistic test
            if a == source:
                d_to_a = 0.0
            else:
                d_avoid = _avoiding_distance(graph, source, a, avoid=b)
                if d_avoid is None:
                    continue
                d_to_a = d_avoid
            if b == target:
                d_from_b = 0.0
            else:
                d_avoid = _avoiding_distance(graph, b, target, avoid=a)
                if d_avoid is None:
                    continue
                d_from_b = d_avoid
            if _within(d_to_a + latency + d_from_b, latency_bound_s):
                edges.add(frozenset((u, v)))
                break
    return edges


def path_edges(nodes: tuple[Node, ...]) -> set[frozenset]:
    """The undirected edge set of a node path."""
    return {frozenset((u, v)) for u, v in zip(nodes, nodes[1:])}


def alternate_edges(
    graph: nx.Graph,
    source: Node,
    target: Node,
    latency_bound_s: float,
    shortest_nodes: tuple[Node, ...],
) -> set[frozenset]:
    """Near-optimal edges that are not on the given shortest path.

    These are the "alternate path" links of §5 (e.g. the NLN-alternate
    frequency series in Fig 4b).
    """
    near_optimal = edges_within_latency_bound(graph, source, target, latency_bound_s)
    return near_optimal - path_edges(shortest_nodes)


def iterate_microwave_edges(
    graph: nx.Graph, edge_keys: set[frozenset]
) -> Iterator[tuple[Node, Node, dict]]:
    """Yield (u, v, data) for the microwave edges among ``edge_keys``."""
    for key in sorted(edge_keys, key=lambda k: sorted(map(str, k))):
        u, v = sorted(key, key=str)
        data = graph.edges[u, v]
        if data["medium"] == "microwave":
            yield (u, v, data)
