"""Human-readable YAML export of reconstructed networks.

The paper's tool "outputs the networks as human-readable YAML files,
incorporating information about tower coordinates and heights, link
lengths, and operating frequencies" (§1).  This module serialises an
:class:`HftNetwork` to exactly that, and loads it back.
"""

from __future__ import annotations

import datetime as dt
from pathlib import Path
from typing import Any

import yaml

from repro.core.corridor import DataCenterSite
from repro.core.latency import LatencyModel
from repro.core.network import FiberTail, HftNetwork, MicrowaveLink, Tower
from repro.geodesy import GeoPoint

_FORMAT_VERSION = 1


def network_to_dict(network: HftNetwork) -> dict[str, Any]:
    """A plain-dict representation suitable for YAML dumping."""
    return {
        "format_version": _FORMAT_VERSION,
        "licensee": network.licensee,
        "as_of": network.as_of.isoformat(),
        "latency_model": {
            "microwave_speed_mps": network.latency_model.microwave_speed,
            "fiber_speed_mps": network.latency_model.fiber_speed,
            "per_tower_overhead_s": network.latency_model.per_tower_overhead_s,
        },
        "data_centers": [
            {
                "name": dc.name,
                "latitude": dc.point.latitude,
                "longitude": dc.point.longitude,
            }
            for dc in network.data_centers.values()
        ],
        "towers": [
            {
                "id": tower.tower_id,
                "latitude": round(tower.point.latitude, 8),
                "longitude": round(tower.point.longitude, 8),
                "ground_elevation_m": tower.ground_elevation_m,
                "structure_height_m": tower.structure_height_m,
                "site_name": tower.site_name,
                "licenses": list(tower.license_ids),
            }
            for tower in network.towers.values()
        ],
        "links": [
            {
                "towers": [link.tower_a, link.tower_b],
                "length_km": round(link.length_m / 1000.0, 6),
                "frequencies_ghz": [
                    round(freq / 1000.0, 5) for freq in link.frequencies_mhz
                ],
                "licenses": list(link.license_ids),
            }
            for link in network.links
        ],
        "fiber_tails": [
            {
                "data_center": tail.data_center,
                "tower": tail.tower_id,
                "length_km": round(tail.length_m / 1000.0, 6),
            }
            for tail in network.fiber_tails
        ],
    }


def network_to_yaml(network: HftNetwork, path: str | Path | None = None) -> str:
    """Serialise a network to YAML; optionally write it to ``path``."""
    text = yaml.safe_dump(
        network_to_dict(network), sort_keys=False, default_flow_style=False
    )
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def network_from_dict(data: dict[str, Any]) -> HftNetwork:
    """Rebuild a network from :func:`network_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version: {version!r}")
    model_data = data["latency_model"]
    latency_model = LatencyModel(
        microwave_speed=model_data["microwave_speed_mps"],
        fiber_speed=model_data["fiber_speed_mps"],
        per_tower_overhead_s=model_data["per_tower_overhead_s"],
    )
    data_centers = [
        DataCenterSite(dc["name"], GeoPoint(dc["latitude"], dc["longitude"]))
        for dc in data["data_centers"]
    ]
    towers = [
        Tower(
            tower_id=entry["id"],
            point=GeoPoint(entry["latitude"], entry["longitude"]),
            ground_elevation_m=entry["ground_elevation_m"],
            structure_height_m=entry["structure_height_m"],
            site_name=entry["site_name"],
            license_ids=tuple(entry["licenses"]),
        )
        for entry in data["towers"]
    ]
    links = [
        MicrowaveLink(
            tower_a=entry["towers"][0],
            tower_b=entry["towers"][1],
            length_m=entry["length_km"] * 1000.0,
            frequencies_mhz=tuple(
                round(freq * 1000.0, 2) for freq in entry["frequencies_ghz"]
            ),
            license_ids=tuple(entry["licenses"]),
        )
        for entry in data["links"]
    ]
    tails = [
        FiberTail(
            data_center=entry["data_center"],
            tower_id=entry["tower"],
            length_m=entry["length_km"] * 1000.0,
        )
        for entry in data["fiber_tails"]
    ]
    return HftNetwork(
        licensee=data["licensee"],
        as_of=dt.date.fromisoformat(data["as_of"]),
        towers=towers,
        links=links,
        fiber_tails=tails,
        data_centers=data_centers,
        latency_model=latency_model,
    )


def network_from_yaml(source: str | Path) -> HftNetwork:
    """Load a network from YAML text or a file path."""
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith((".yaml", ".yml"))
    ):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = source
    return network_from_dict(yaml.safe_load(text))
