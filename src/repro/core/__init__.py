"""Core library: reconstruction of HFT networks from license filings.

This subpackage is the paper's primary contribution: a tool that turns raw
FCC license records into analysable network graphs at any date in the past
(§2.3), plus the latency model and routing machinery the analyses rely on.

Typical usage goes through the engine, which caches snapshots and routes
across repeated queries (the underlying cache-free kernel,
:class:`NetworkReconstructor`, remains available for one-off use)::

    from repro.core import CorridorEngine
    from repro.synth import paper2020_scenario

    scenario = paper2020_scenario()
    engine = CorridorEngine(scenario.database, scenario.corridor)
    route = engine.route(
        "New Line Networks", datetime.date(2020, 4, 1), "CME", "NY4"
    )
    print(route.latency_ms, route.tower_count)
    print(engine.stats.describe())
"""

from repro.core.columnar import reconstruct_columnar
from repro.core.engine import CacheStats, CorridorEngine
from repro.core.latency import LatencyModel
from repro.core.network import (
    DataCenter,
    HftNetwork,
    MicrowaveLink,
    Route,
    Tower,
)
from repro.core.corridor import CorridorSpec
from repro.core.reconstruction import NetworkReconstructor, reconstruct_all
from repro.core.routing import (
    edges_within_latency_bound,
    enumerate_paths_within_bound,
)
from repro.core.timeline import (
    LicenseCountSeries,
    TimelinePoint,
    latency_timeline,
    license_count_timeline,
    yearly_snapshot_dates,
)
from repro.core.yamlio import network_from_yaml, network_to_yaml

__all__ = [
    "CacheStats",
    "CorridorEngine",
    "LatencyModel",
    "DataCenter",
    "HftNetwork",
    "MicrowaveLink",
    "Route",
    "Tower",
    "CorridorSpec",
    "NetworkReconstructor",
    "reconstruct_all",
    "reconstruct_columnar",
    "edges_within_latency_bound",
    "enumerate_paths_within_bound",
    "LicenseCountSeries",
    "TimelinePoint",
    "latency_timeline",
    "license_count_timeline",
    "yearly_snapshot_dates",
    "network_from_yaml",
    "network_to_yaml",
]
