"""Corridor specification: the data centers networks connect.

The paper's corridor runs between the CME data center in Aurora, IL and
three New Jersey data centers (Equinix NY4 in Secaucus, NYSE in Mahwah,
NASDAQ in Carteret).  The coordinates below are calibrated so the WGS84
geodesic distances match the paper's Table 2 figures (1,186 / 1,174 /
1,176 km) to within ~100 m.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geodesy import GeoPoint, geodesic_distance


@dataclass(frozen=True, slots=True)
class DataCenterSite:
    """A trading data center: name and location."""

    name: str
    point: GeoPoint

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("data center name must be non-empty")


@dataclass(frozen=True)
class CorridorSpec:
    """The set of data centers and the trading paths between them.

    ``west`` is the single western anchor (CME); ``east`` lists the
    eastern data centers.  ``paths`` enumerates the (west, east) pairs the
    analyses rank networks on.
    """

    west: DataCenterSite
    east: tuple[DataCenterSite, ...]

    def __post_init__(self) -> None:
        if not self.east:
            raise ValueError("corridor needs at least one eastern data center")
        names = [self.west.name] + [dc.name for dc in self.east]
        if len(set(names)) != len(names):
            raise ValueError("data center names must be unique")

    @property
    def data_centers(self) -> tuple[DataCenterSite, ...]:
        return (self.west,) + self.east

    @property
    def paths(self) -> tuple[tuple[str, str], ...]:
        """(west, east) data center name pairs, in declaration order."""
        return tuple((self.west.name, dc.name) for dc in self.east)

    def resolve_path(
        self, source: str | None = None, target: str | None = None
    ) -> tuple[str, str]:
        """Fill unspecified endpoints from the primary (first) path.

        Drivers default ``source``/``target`` to ``None`` and resolve
        through this, so every workload runs on any corridor without
        callers naming its data centers; the paper corridor's primary
        path is CME–NY4.
        """
        west, east = self.paths[0]
        return (
            source if source is not None else west,
            target if target is not None else east,
        )

    def site(self, name: str) -> DataCenterSite:
        for dc in self.data_centers:
            if dc.name == name:
                return dc
        raise KeyError(f"unknown data center: {name!r}")

    def geodesic_m(self, west_name: str, east_name: str) -> float:
        """Geodesic distance between two named data centers, metres."""
        return geodesic_distance(self.site(west_name).point, self.site(east_name).point)


#: CME Globex data center, Aurora, IL (western anchor).
CME = DataCenterSite("CME", GeoPoint(41.7580, -88.1801))

#: Equinix NY4, Secaucus, NJ.
NY4 = DataCenterSite("NY4", GeoPoint(40.7773, -74.0700))

#: NYSE data center, Mahwah, NJ.
NYSE = DataCenterSite("NYSE", GeoPoint(41.0887, -74.1486))

#: NASDAQ data center, Carteret, NJ.
NASDAQ = DataCenterSite("NASDAQ", GeoPoint(40.5838, -74.2370))


def chicago_nj_corridor() -> CorridorSpec:
    """The paper's Chicago–New Jersey corridor (CME ↔ NY4/NYSE/NASDAQ)."""
    return CorridorSpec(west=CME, east=(NY4, NYSE, NASDAQ))


#: Equinix LD4, Slough, UK — the western anchor of Europe's busiest HFT
#: microwave corridor.
LD4 = DataCenterSite("LD4", GeoPoint(51.5227, -0.6310))

#: Equinix FR2, Frankfurt, Germany.
FR2 = DataCenterSite("FR2", GeoPoint(50.0992, 8.6323))


def london_frankfurt_corridor() -> CorridorSpec:
    """The London–Frankfurt corridor (LD4 ↔ FR2), ~640 km including a
    Channel crossing.

    Not part of the paper's measurement (which is US-only because the
    FCC's ULS has no European counterpart with the same transparency),
    but the same tooling applies to any two-anchor corridor; this one
    exists to exercise corridor-agnosticism.
    """
    return CorridorSpec(west=LD4, east=(FR2,))


#: Equinix TY3, Tokyo (Shinagawa) — the western anchor of the long-haul
#: Asian corridor.
TY3 = DataCenterSite("TY3", GeoPoint(35.6242, 139.7410))

#: Equinix SG1, Singapore (Ayer Rajah).
SG1 = DataCenterSite("SG1", GeoPoint(1.2931, 103.7865))


def tokyo_singapore_corridor() -> CorridorSpec:
    """The Tokyo–Singapore corridor (TY3 ↔ SG1), ~5,314 km.

    An order of magnitude longer than the paper's corridor and mostly
    over water — the regime where the Fig 5 LEO-vs-microwave comparison
    flips.  Like London–Frankfurt, it exists to exercise the tooling on
    geometry far off the calibrated Chicago path.
    """
    return CorridorSpec(west=TY3, east=(SG1,))
