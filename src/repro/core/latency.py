"""The paper's speed-of-light latency model (§2.3).

One-way latency is path length divided by propagation speed: (almost) c for
microwave links through air, 2c/3 for the short fiber tails between data
centers and the nearest towers.  Per-tower repetition/regeneration overhead
is *not* part of the paper's estimates but is exposed here as an explicit
knob because §3 discusses how it could reorder the rankings (the JM-vs-NLN
crossover at 1.4 µs per tower), and the ablation bench sweeps it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import FIBER_SPEED, MICROWAVE_SPEED, SPEED_OF_LIGHT


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Propagation-speed model for end-to-end latency estimates.

    Parameters
    ----------
    microwave_speed:
        Signal speed on microwave links, m/s.  Defaults to c.
    fiber_speed:
        Signal speed in fiber, m/s.  Defaults to 2c/3.
    per_tower_overhead_s:
        Added latency per intermediate tower (signal repetition or
        regeneration).  Defaults to 0, the paper's assumption.
    """

    microwave_speed: float = MICROWAVE_SPEED
    fiber_speed: float = FIBER_SPEED
    per_tower_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.microwave_speed <= SPEED_OF_LIGHT:
            raise ValueError("microwave speed must be in (0, c]")
        if not 0.0 < self.fiber_speed <= SPEED_OF_LIGHT:
            raise ValueError("fiber speed must be in (0, c]")
        if self.per_tower_overhead_s < 0.0:
            raise ValueError("per-tower overhead cannot be negative")

    def microwave_latency_s(self, length_m: float) -> float:
        """Propagation latency of a microwave hop of ``length_m`` metres."""
        if length_m < 0.0:
            raise ValueError("length cannot be negative")
        return length_m / self.microwave_speed

    def fiber_latency_s(self, length_m: float) -> float:
        """Propagation latency of a fiber segment of ``length_m`` metres."""
        if length_m < 0.0:
            raise ValueError("length cannot be negative")
        return length_m / self.fiber_speed

    def link_latency_s(self, length_m: float, medium: str) -> float:
        """Latency of one link; ``medium`` is ``"microwave"`` or ``"fiber"``."""
        if medium == "microwave":
            return self.microwave_latency_s(length_m)
        if medium == "fiber":
            return self.fiber_latency_s(length_m)
        raise ValueError(f"unknown medium: {medium!r}")

    def geodesic_latency_s(self, distance_m: float) -> float:
        """The c-speed lower bound along a geodesic of ``distance_m``.

        This is the paper's "minimum achievable latency" reference (c in
        vacuum/air over the geodesic distance), used for the APA slack
        bound in §5.
        """
        if distance_m < 0.0:
            raise ValueError("distance cannot be negative")
        return distance_m / SPEED_OF_LIGHT

    def tower_overhead_s(self, tower_count: int) -> float:
        """Total repeater overhead of a route with ``tower_count`` towers."""
        if tower_count < 0:
            raise ValueError("tower count cannot be negative")
        return tower_count * self.per_tower_overhead_s


#: The model used throughout the paper's analysis.
PAPER_LATENCY_MODEL = LatencyModel()


def seconds_to_ms(value_s: float) -> float:
    """Seconds to milliseconds (the unit the paper's tables use)."""
    return value_s * 1e3


def seconds_to_us(value_s: float) -> float:
    """Seconds to microseconds (the unit of the paper's latency gaps)."""
    return value_s * 1e6
