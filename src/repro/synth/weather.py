"""Rain-storm simulation along the corridor (§5's reliability argument).

A :class:`Storm` is a set of Gaussian rain cells.  Applying a storm to a
reconstructed network removes every microwave link whose rain attenuation
(ITU model, at the link's *lowest* licensed frequency — radios fall back
to their most robust channel) exceeds its clear-air fade margin.  The
surviving graph shows which network still delivers low latency in bad
weather: the experiment behind "a more reliable network may be faster at
other times".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.core.network import HftNetwork
from repro.geodesy import GeoPoint, geodesic_distance, geodesic_interpolate
from repro.radio.budget import LinkBudget
from repro.radio.itu import rain_attenuation_db


@dataclass(frozen=True, slots=True)
class RainCell:
    """A circular rain cell with a Gaussian intensity profile."""

    center: GeoPoint
    radius_km: float
    peak_rate_mm_h: float

    def __post_init__(self) -> None:
        if self.radius_km <= 0.0:
            raise ValueError("cell radius must be positive")
        if self.peak_rate_mm_h < 0.0:
            raise ValueError("rain rate cannot be negative")

    def rate_at(self, point: GeoPoint) -> float:
        """Rain rate at ``point``, mm/h (Gaussian falloff, ~0 beyond 3σ)."""
        distance_km = geodesic_distance(self.center, point) / 1000.0
        return self.peak_rate_mm_h * math.exp(-((distance_km / self.radius_km) ** 2))


@dataclass(frozen=True)
class Storm:
    """A collection of rain cells."""

    cells: tuple[RainCell, ...]

    def rate_at(self, point: GeoPoint) -> float:
        """Total rain rate at a point (cells superpose)."""
        return sum(cell.rate_at(point) for cell in self.cells)

    def max_rate_over_link(
        self, a: GeoPoint, b: GeoPoint, samples: int = 9
    ) -> float:
        """The worst rain rate along the a–b hop (sampled).

        An odd default sample count keeps the hop midpoint in the sample
        set, so a cell centred mid-hop is never missed.
        """
        fractions = [i / (samples - 1) for i in range(samples)]
        points = geodesic_interpolate(a, b, fractions)
        return max(self.rate_at(point) for point in points)


def random_storm(
    seed: int,
    along: tuple[GeoPoint, GeoPoint],
    n_cells: int = 3,
    radius_km: tuple[float, float] = (15.0, 50.0),
    peak_mm_h: tuple[float, float] = (40.0, 140.0),
    lateral_km: float = 60.0,
) -> Storm:
    """A seeded storm with cells scattered along a corridor geodesic."""
    if n_cells < 1:
        raise ValueError("a storm needs at least one cell")
    rng = random.Random(seed)
    start, end = along
    cells = []
    for _ in range(n_cells):
        fraction = rng.uniform(0.05, 0.95)
        (on_path,) = geodesic_interpolate(start, end, [fraction])
        center = on_path.destination(
            rng.uniform(0.0, 360.0), rng.uniform(0.0, lateral_km * 1000.0)
        )
        cells.append(
            RainCell(
                center=center,
                radius_km=rng.uniform(*radius_km),
                peak_rate_mm_h=rng.uniform(*peak_mm_h),
            )
        )
    return Storm(cells=tuple(cells))


def apply_storm(
    network: HftNetwork,
    storm: Storm,
    budget: LinkBudget | None = None,
) -> nx.Graph:
    """The network's graph with rain-faded microwave links removed.

    Each link is evaluated at its lowest licensed frequency (the most
    rain-robust channel it may fall back to); fiber tails never fail.
    """
    budget = budget or LinkBudget()
    graph = network.graph.copy()
    dead: list[tuple] = []
    for u, v, data in graph.edges(data=True):
        if data["medium"] != "microwave":
            continue
        frequencies = data["frequencies_mhz"]
        frequency_ghz = (min(frequencies) / 1000.0) if frequencies else 11.0
        distance_km = data["length_m"] / 1000.0
        rate = storm.max_rate_over_link(
            graph.nodes[u]["point"], graph.nodes[v]["point"]
        )
        margin = budget.fade_margin_db(frequency_ghz, distance_km)
        if margin <= 0.0 or rain_attenuation_db(frequency_ghz, distance_km, rate) > margin:
            dead.append((u, v))
    graph.remove_edges_from(dead)
    return graph


def storm_latency_ms(
    network: HftNetwork,
    storm: Storm,
    source: str,
    target: str,
    budget: LinkBudget | None = None,
) -> float | None:
    """End-to-end latency under a storm, or None if disconnected."""
    graph = apply_storm(network, storm, budget)
    try:
        latency = nx.dijkstra_path_length(graph, source, target, weight="latency_s")
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None
    return latency * 1e3
