"""Deterministic smooth 1-D noise for tower placement.

Tower sites stray from the corridor geodesic in a spatially *smooth* way —
a network acquires whatever towers exist near the line, and consecutive
towers tend to deviate to the same side.  We model the lateral offset as a
seeded sum of a few sinusoids with random phases: smooth, zero-mean,
bounded, and fully deterministic for a given seed.
"""

from __future__ import annotations

import math
import random


class SmoothNoise:
    """A smooth pseudo-random function [0, 1] → [-1, 1].

    Built from ``octaves`` sinusoids with seeded phases and geometrically
    decreasing amplitudes, normalised so the theoretical peak magnitude is
    1.  The function (and hence any tower layout derived from it) is a pure
    function of the seed.
    """

    def __init__(self, seed: int, octaves: int = 4, base_cycles: float = 1.5) -> None:
        if octaves < 1:
            raise ValueError("need at least one octave")
        rng = random.Random(seed)
        self._components: list[tuple[float, float, float]] = []
        total_amplitude = 0.0
        for octave in range(octaves):
            amplitude = 0.55**octave
            cycles = base_cycles * (1.9**octave)
            phase = rng.uniform(0.0, 2.0 * math.pi)
            self._components.append((amplitude, cycles, phase))
            total_amplitude += amplitude
        self._norm = total_amplitude

    def __call__(self, t: float) -> float:
        value = sum(
            amplitude * math.sin(2.0 * math.pi * cycles * t + phase)
            for amplitude, cycles, phase in self._components
        )
        return value / self._norm

    def tapered(self, t: float) -> float:
        """The noise forced smoothly to zero at both ends of [0, 1].

        Used for lateral tower offsets: gateway towers must sit on the
        geodesic next to their data centers, so the deviation envelope is
        ``sin(πt)``-shaped.
        """
        if not 0.0 <= t <= 1.0:
            raise ValueError("t must be within [0, 1]")
        return self(t) * math.sin(math.pi * t)
