"""Specification model for synthetic HFT networks.

A :class:`NetworkSpec` captures everything the generator needs to build one
licensee's license history:

* final-era geometry: trunk hop count, branch split points, bypass
  coverage, hop-spacing profile, gateway fiber-tail lengths;
* calibration targets: the end-to-end latencies the reconstruction
  pipeline should measure on each corridor path (straight from the
  paper's Tables 1/2);
* frequency profile (trunk and alternate-path band mixes, Fig 4b);
* history: a sequence of eras with their own latency targets (Fig 1),
  license-count targets at snapshot dates (Fig 2), and an optional
  wind-down window (National Tower Company's exit).

The specs *encode design intent*; nothing here is read by the
reconstruction or analysis code, which measures everything back out of the
generated license records.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

#: Channel plans (centre frequencies, MHz) for the corridor's licensed
#: point-to-point bands.  Channel spacing mirrors the real FCC band plans
#: (59.3 MHz in L6, 40 MHz at 11 GHz, 80 MHz at 18 GHz, 50 MHz at 23 GHz).
CHANNEL_PLANS_MHZ: dict[str, tuple[float, ...]] = {
    "6GHz": (5945.2, 6004.5, 6063.8, 6123.1, 6182.4, 6241.7, 6301.0, 6360.3),
    "11GHz": (10995.0, 11035.0, 11075.0, 11115.0, 11155.0, 11245.0, 11445.0, 11485.0),
    "18GHz": (17765.0, 17845.0, 17925.0, 18005.0, 18085.0, 18165.0),
    "23GHz": (21825.0, 21875.0, 21925.0, 21975.0, 22025.0, 22075.0),
}


@dataclass(frozen=True)
class FrequencyProfile:
    """Band mix for a network's links.

    ``trunk_bands`` and ``alternate_bands`` map band names (keys of
    :data:`CHANNEL_PLANS_MHZ`) to selection weights.  ``channels_per_link``
    is how many distinct channels each link is licensed on.
    """

    trunk_bands: tuple[tuple[str, float], ...]
    alternate_bands: tuple[tuple[str, float], ...] = ()
    channels_per_link: int = 2

    def __post_init__(self) -> None:
        for bands in (self.trunk_bands, self.alternate_bands):
            for band, weight in bands:
                if band not in CHANNEL_PLANS_MHZ:
                    raise ValueError(f"unknown band {band!r}")
                if weight < 0.0:
                    raise ValueError("band weights cannot be negative")
        if not self.trunk_bands:
            raise ValueError("a frequency profile needs trunk bands")
        if self.channels_per_link < 1:
            raise ValueError("channels_per_link must be at least 1")

    @property
    def effective_alternate_bands(self) -> tuple[tuple[str, float], ...]:
        return self.alternate_bands or self.trunk_bands


@dataclass(frozen=True)
class BranchSpec:
    """A branch chain from the trunk towards a second data center.

    ``split_link`` is the number of trunk links between the western
    gateway and the branch tower (the branch leaves the trunk at trunk
    tower index ``split_link``).  ``bypass_covered`` lists the 0-based
    branch link indices that must be covered by bypass towers (for the
    per-path APA targets of Table 3).
    """

    target_dc: str
    split_link: int
    n_links: int
    latency_target_ms: float
    bypass_covered: tuple[int, ...] = ()
    gateway_km: float = 0.6

    def __post_init__(self) -> None:
        if self.split_link < 1:
            raise ValueError("branch must split after at least one trunk link")
        if self.n_links < 1:
            raise ValueError("branch needs at least one link")
        if self.latency_target_ms <= 0.0:
            raise ValueError("latency target must be positive")
        for index in self.bypass_covered:
            if not 0 <= index < self.n_links:
                raise ValueError(f"bypass index {index} out of branch range")


@dataclass(frozen=True)
class EraSpec:
    """One period of a network's history (Fig 1 / Fig 2 shape).

    ``latency_target_ms`` is the CME–NY4 latency the era's trunk should
    measure; ``None`` means the era is a partial build: only the western
    ``coverage`` fraction of trunk links exists, so there is no end-to-end
    path yet.
    """

    start: dt.date
    latency_target_ms: float | None
    n_links: int
    coverage: float = 1.0
    seed_salt: int = 0

    def __post_init__(self) -> None:
        if self.n_links < 2:
            raise ValueError("an era needs at least two links")
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        if self.latency_target_ms is None and self.coverage >= 1.0:
            raise ValueError("a disconnected era must have coverage < 1")
        if self.latency_target_ms is not None and self.coverage < 1.0:
            raise ValueError("a connected era must have full coverage")


@dataclass(frozen=True)
class NetworkSpec:
    """Complete specification of one synthetic licensee."""

    name: str
    callsign_prefix: str
    seed: int
    trunk_links: int
    ny4_target_ms: float
    frequency_profile: FrequencyProfile
    trunk_bypass_covered: tuple[int, ...] = ()
    branches: tuple[BranchSpec, ...] = ()
    eras: tuple[EraSpec, ...] = ()
    final_era_start: dt.date = dt.date(2019, 1, 15)
    gateway_west_km: float = 0.9
    gateway_east_km: float = 0.8
    spacing_profile: str = "uniform"
    spacing_short_fraction: float = 0.6
    spacing_length_ratio: float = 2.0
    links_per_license: int = 1
    license_count_targets: tuple[tuple[dt.date, int], ...] = ()
    wind_down: tuple[dt.date, dt.date] | None = None
    spur_links: int = 0

    def __post_init__(self) -> None:
        if self.trunk_links < 2:
            raise ValueError("trunk needs at least two links")
        if self.ny4_target_ms <= 0.0:
            raise ValueError("NY4 latency target must be positive")
        for index in self.trunk_bypass_covered:
            if not 0 <= index < self.trunk_links:
                raise ValueError(f"trunk bypass index {index} out of range")
        seen_targets = set()
        for branch in self.branches:
            if branch.split_link >= self.trunk_links:
                raise ValueError(
                    f"branch to {branch.target_dc} splits beyond the trunk"
                )
            if branch.target_dc in seen_targets:
                raise ValueError(f"duplicate branch target {branch.target_dc!r}")
            seen_targets.add(branch.target_dc)
        dates = [era.start for era in self.eras]
        if dates != sorted(dates):
            raise ValueError("eras must be in chronological order")
        if dates and dates[-1] >= self.final_era_start:
            raise ValueError("historic eras must precede the final era")
        if self.links_per_license not in (1, 2):
            raise ValueError("links_per_license must be 1 or 2")
        if self.wind_down is not None and self.wind_down[0] >= self.wind_down[1]:
            raise ValueError("wind-down window must have positive length")
        count_dates = [date for date, _ in self.license_count_targets]
        if count_dates != sorted(count_dates):
            raise ValueError("license count targets must be in date order")

    @property
    def tower_count_ny4(self) -> int:
        """Expected tower count on the CME–NY4 route (Table 1 column)."""
        return self.trunk_links + 1

    def era_boundaries(self) -> list[tuple[EraSpec, dt.date | None]]:
        """Each historic era with its end date (next era's start)."""
        boundaries: list[tuple[EraSpec, dt.date | None]] = []
        for index, era in enumerate(self.eras):
            end = (
                self.eras[index + 1].start
                if index + 1 < len(self.eras)
                else self.final_era_start
            )
            boundaries.append((era, end))
        return boundaries
