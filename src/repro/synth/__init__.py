"""Synthetic FCC license data for the Chicago–NJ corridor.

The paper works from real FCC ULS filings; this environment has no network
access, so this subpackage generates a *calibrated* synthetic equivalent:
license histories for every network the paper analyses, with tower
geometry tuned (by bisection against the real reconstruction pipeline)
until the reconstructed latencies, tower counts, APA values, link-length
distributions and frequency mixes match the published numbers.

The reconstruction/analysis code never sees the calibration targets — it
measures everything back out of the raw license records.

Entry point: :func:`repro.synth.scenario.paper2020_scenario`.
"""

from repro.synth.noise import SmoothNoise
from repro.synth.towers import (
    bypass_point,
    chain_points,
    spacing_fractions,
)
from repro.synth.specs import (
    BranchSpec,
    EraSpec,
    FrequencyProfile,
    NetworkSpec,
)
from repro.synth.generator import NetworkBuilder, build_network_licenses
from repro.synth.scenario import Scenario, paper2020_scenario
from repro.synth.weather import RainCell, Storm, apply_storm

__all__ = [
    "SmoothNoise",
    "bypass_point",
    "chain_points",
    "spacing_fractions",
    "BranchSpec",
    "EraSpec",
    "FrequencyProfile",
    "NetworkSpec",
    "NetworkBuilder",
    "build_network_licenses",
    "Scenario",
    "paper2020_scenario",
    "RainCell",
    "Storm",
    "apply_storm",
]
