"""License-history generation from :class:`NetworkSpec`.

The builder turns a spec into FCC-style license records:

1. **Geometry.**  The final-era trunk runs between gateway towers placed a
   short fiber-tail away from CME and NY4.  Intermediate towers follow the
   geodesic with a smooth lateral offset whose amplitude is *calibrated by
   bisection* until the end-to-end latency (computed with the paper's
   model: MW at c plus fiber tails at 2c/3) hits the spec's target.
   Branch chains towards NYSE/NASDAQ are calibrated the same way given the
   fixed trunk prefix.
2. **Redundancy.**  Bypass towers cover exactly the link indices the spec
   lists: consecutive covered pairs get a two-hop bypass around their
   shared tower; isolated links get a parallel two-hop bypass.  Bypass
   detours are strictly longer than the links they protect, so they never
   alter the shortest path but raise APA.
3. **Frequencies.**  Channels are drawn per-link from the spec's band mix
   (trunk vs alternate), seeded and deterministic.
4. **History.**  Each historic era gets its own calibrated chain whose
   licenses are granted shortly before the era starts and cancelled when
   the next era replaces it; padding licenses (extra channels on existing
   links) bring active-license counts up to the spec's Fig-2 targets; a
   wind-down window spreads cancellation dates over a network's exit.
"""

from __future__ import annotations

import datetime as dt
import math
import random
from dataclasses import dataclass, field

from repro.constants import FIBER_SPEED, SPEED_OF_LIGHT
from repro.core.corridor import CorridorSpec
from repro.geodesy import GeoPoint, geodesic_destination, geodesic_inverse
from repro.geodesy.path import polyline_length
from repro.synth.noise import SmoothNoise
from repro.synth.specs import (
    CHANNEL_PLANS_MHZ,
    BranchSpec,
    EraSpec,
    FrequencyProfile,
    NetworkSpec,
)
from repro.synth.towers import bypass_point, chain_points
from repro.uls.records import License, MicrowavePath, TowerLocation

#: Calibration convergence: stop when the chain length is within this many
#: metres of the target (5 m ≈ 17 ps of latency — far below the tightest
#: inter-network gap in Table 2, which is ~23 m / 0.08 µs).
_CALIBRATION_TOLERANCE_M = 5.0

#: Default lateral amplitude for uncalibrated (partial-era) chains.
_DEFAULT_AMPLITUDE_M = 2_000.0

#: Lateral offsets for bypass towers, metres.
_BYPASS_LATERAL_M = 4_000.0

#: How many days before an era starts its licenses are granted over.
_GRANT_STAGGER_DAYS = 60


class CalibrationError(RuntimeError):
    """Raised when no lateral amplitude can reach the latency target."""


def _along(start: GeoPoint, towards: GeoPoint, distance_m: float) -> GeoPoint:
    _, azimuth, _ = geodesic_inverse(start, towards)
    return geodesic_destination(start, azimuth, distance_m)


def _mw_length_target_m(latency_target_ms: float, fiber_tail_m: float) -> float:
    """The microwave path length that yields the target latency.

    total = L_mw / c + fiber / (2c/3)   =>   L_mw = c·total − 1.5·fiber.
    """
    target_s = latency_target_ms / 1e3
    length = SPEED_OF_LIGHT * (target_s - fiber_tail_m / FIBER_SPEED)
    if length <= 0.0:
        raise CalibrationError(
            f"latency target {latency_target_ms} ms is below the fiber tails alone"
        )
    return length


def _bisect_amplitude(
    length_of_amplitude,
    target_m: float,
    what: str,
) -> float:
    """Find the lateral amplitude whose chain length equals ``target_m``.

    Chain length is monotone non-decreasing in amplitude; we double an
    upper bracket until it exceeds the target, then bisect.
    """
    base = length_of_amplitude(0.0)
    if base > target_m + _CALIBRATION_TOLERANCE_M:
        raise CalibrationError(
            f"{what}: straight chain is already {base / 1000.0:.3f} km, "
            f"longer than the {target_m / 1000.0:.3f} km target"
        )
    if abs(base - target_m) <= _CALIBRATION_TOLERANCE_M:
        return 0.0
    high = 2_000.0
    while length_of_amplitude(high) < target_m:
        high *= 2.0
        if high > 1_000_000.0:
            raise CalibrationError(f"{what}: target unreachable even at 1000 km amplitude")
    low = 0.0
    for _ in range(80):
        mid = (low + high) / 2.0
        length = length_of_amplitude(mid)
        if abs(length - target_m) <= _CALIBRATION_TOLERANCE_M:
            return mid
        if length < target_m:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


@dataclass
class _BuiltLink:
    """One microwave link to be licensed."""

    a: GeoPoint
    b: GeoPoint
    kind: str  # "trunk" | "branch" | "bypass" | "spur"
    era_index: int  # -1 = final era
    chain: str = "trunk"  # trunk / branch target DC / spur


@dataclass
class _LicenseDraft:
    locations: list[GeoPoint]
    paths: list[tuple[int, int]]  # (tx index, rx index) into locations
    frequencies: list[tuple[float, ...]]  # per path
    grant: dt.date
    cancellation: dt.date | None
    kind: str


class NetworkBuilder:
    """Builds the full license history for one :class:`NetworkSpec`."""

    def __init__(
        self,
        spec: NetworkSpec,
        corridor: CorridorSpec,
        final_date: dt.date = dt.date(2020, 4, 1),
    ) -> None:
        self.spec = spec
        self.corridor = corridor
        self.final_date = final_date
        self._rng = random.Random(spec.seed)
        self._license_counter = 0
        self.calibration_report: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def _gateways(self) -> tuple[GeoPoint, GeoPoint]:
        # The trunk runs between the corridor's western anchor and its
        # primary (first-listed) eastern data center.
        west_dc = self.corridor.west.point
        east_dc = self.corridor.east[0].point
        west = _along(west_dc, east_dc, self.spec.gateway_west_km * 1000.0)
        east = _along(east_dc, west_dc, self.spec.gateway_east_km * 1000.0)
        return west, east

    def _trunk_chain(self, n_links: int, amplitude_m: float, salt: int) -> list[GeoPoint]:
        west, east = self._gateways()
        return chain_points(
            west,
            east,
            n_links,
            amplitude_m,
            SmoothNoise(self.spec.seed * 1000 + salt),
            profile=self.spec.spacing_profile,
            spacing_seed=self.spec.seed * 77 + salt,
            short_fraction=self.spec.spacing_short_fraction,
            length_ratio=self.spec.spacing_length_ratio,
        )

    def calibrate_trunk(self, n_links: int, target_ms: float, salt: int) -> list[GeoPoint]:
        """Trunk chain whose end-to-end CME–NY4 latency equals ``target_ms``."""
        fiber = (self.spec.gateway_west_km + self.spec.gateway_east_km) * 1000.0
        target_length = _mw_length_target_m(target_ms, fiber)
        amplitude = _bisect_amplitude(
            lambda a: polyline_length(self._trunk_chain(n_links, a, salt)),
            target_length,
            what=f"{self.spec.name} trunk (era salt {salt})",
        )
        self.calibration_report[f"trunk[{salt}]"] = amplitude
        return self._trunk_chain(n_links, amplitude, salt)

    def _branch_chain(
        self, branch: BranchSpec, trunk: list[GeoPoint], amplitude_m: float
    ) -> list[GeoPoint]:
        split_tower = trunk[branch.split_link]
        dc = self.corridor.site(branch.target_dc).point
        gateway = _along(dc, split_tower, branch.gateway_km * 1000.0)
        return chain_points(
            split_tower,
            gateway,
            branch.n_links,
            amplitude_m,
            SmoothNoise(self.spec.seed * 1000 + 500 + branch.split_link),
            profile="jittered",
            spacing_seed=self.spec.seed * 99 + branch.split_link,
        )

    def calibrate_branch(
        self, branch: BranchSpec, trunk: list[GeoPoint]
    ) -> list[GeoPoint]:
        """Branch chain calibrated so CME→branch-DC latency hits its target."""
        trunk_prefix = polyline_length(trunk[: branch.split_link + 1])
        fiber = (self.spec.gateway_west_km + branch.gateway_km) * 1000.0
        total_target = _mw_length_target_m(branch.latency_target_ms, fiber)
        branch_target = total_target - trunk_prefix
        if branch_target <= 0.0:
            raise CalibrationError(
                f"{self.spec.name}: trunk prefix alone exceeds the "
                f"{branch.target_dc} latency target"
            )
        amplitude = _bisect_amplitude(
            lambda a: polyline_length(self._branch_chain(branch, trunk, a)),
            branch_target,
            what=f"{self.spec.name} branch to {branch.target_dc}",
        )
        self.calibration_report[f"branch[{branch.target_dc}]"] = amplitude
        return self._branch_chain(branch, trunk, amplitude)

    @staticmethod
    def _double_bypass_tower(
        before: GeoPoint, middle: GeoPoint, after: GeoPoint, lateral_m: float
    ) -> GeoPoint:
        """A bypass tower around ``middle``, guaranteed to lengthen the path.

        The tower is ``middle`` displaced ``lateral_m`` perpendicular to
        the before→after chord, on *middle's own side* of the chord.
        Moving the intermediate point further from the chord strictly
        lengthens both legs, so the bypass can never undercut the trunk —
        even when the trunk's lateral jitter exceeds ``lateral_m``
        (placing the tower on the chord itself would shortcut it then).
        """
        _, chord_azimuth, _ = geodesic_inverse(before, after)
        _, to_middle_azimuth, _ = geodesic_inverse(before, middle)
        relative = (to_middle_azimuth - chord_azimuth) % 360.0
        side = 1.0 if 0.0 < relative < 180.0 else -1.0
        return geodesic_destination(
            middle, (chord_azimuth + side * 90.0) % 360.0, lateral_m
        )

    def _bypass_links(
        self, chain: list[GeoPoint], covered: tuple[int, ...], lateral_m: float
    ) -> list[tuple[GeoPoint, GeoPoint]]:
        """Bypass links covering exactly the given chain link indices.

        Consecutive covered links (j, j+1) share a two-hop bypass around
        tower j+1; isolated links get a parallel two-hop bypass.  Either
        way each covered link gains an alternate route that survives its
        removal, and every bypass detour is strictly longer than the
        links it protects.
        """
        links: list[tuple[GeoPoint, GeoPoint]] = []
        ordered = sorted(set(covered))
        index = 0
        while index < len(ordered):
            j = ordered[index]
            if index + 1 < len(ordered) and ordered[index + 1] == j + 1:
                tower = self._double_bypass_tower(
                    chain[j], chain[j + 1], chain[j + 2], lateral_m
                )
                links.append((chain[j], tower))
                links.append((tower, chain[j + 2]))
                index += 2
            else:
                tower = bypass_point(chain[j], chain[j + 1], lateral_m)
                links.append((chain[j], tower))
                links.append((tower, chain[j + 1]))
                index += 1
        return links

    def _spur_links(self, trunk: list[GeoPoint]) -> list[tuple[GeoPoint, GeoPoint]]:
        """Decorative links: a dead-end stub off the trunk plus a fully
        disconnected link south of the corridor (the paper's Fig 3 notes
        both kinds)."""
        links: list[tuple[GeoPoint, GeoPoint]] = []
        if self.spec.spur_links <= 0:
            return links
        anchor = trunk[len(trunk) // 2]
        stub1 = geodesic_destination(anchor, 160.0, 22_000.0)
        links.append((anchor, stub1))
        if self.spec.spur_links >= 2:
            stub2 = geodesic_destination(stub1, 140.0, 18_000.0)
            links.append((stub1, stub2))
        if self.spec.spur_links >= 3:
            lone_a = geodesic_destination(trunk[len(trunk) // 3], 185.0, 60_000.0)
            lone_b = geodesic_destination(lone_a, 95.0, 25_000.0)
            links.append((lone_a, lone_b))
        return links

    # ------------------------------------------------------------------
    # Frequencies
    # ------------------------------------------------------------------

    def _draw_channels(self, bands: tuple[tuple[str, float], ...]) -> tuple[float, ...]:
        names = [band for band, _ in bands]
        weights = [weight for _, weight in bands]
        band = self._rng.choices(names, weights=weights, k=1)[0]
        plan = CHANNEL_PLANS_MHZ[band]
        count = min(self.spec.frequency_profile.channels_per_link, len(plan))
        return tuple(sorted(self._rng.sample(plan, count)))

    def _link_frequencies(self, kind: str) -> tuple[float, ...]:
        profile = self.spec.frequency_profile
        if kind == "bypass":
            return self._draw_channels(profile.effective_alternate_bands)
        return self._draw_channels(profile.trunk_bands)

    # ------------------------------------------------------------------
    # License assembly
    # ------------------------------------------------------------------

    def _next_ids(self) -> tuple[str, str]:
        self._license_counter += 1
        suffix = f"{self._license_counter:05d}"
        return (
            f"L{self.spec.callsign_prefix}{suffix}",
            f"{self.spec.callsign_prefix}{suffix}",
        )

    @property
    def _contact_email(self) -> str:
        slug = self.spec.name.lower().replace(" ", "").replace(".", "")
        return f"licensing@{slug}.example.com"

    def _make_license(self, draft: _LicenseDraft) -> License:
        license_id, callsign = self._next_ids()
        locations = {
            index + 1: TowerLocation(
                location_number=index + 1,
                point=point,
                ground_elevation_m=200.0,
                structure_height_m=90.0,
            )
            for index, point in enumerate(draft.locations)
        }
        paths = [
            MicrowavePath(
                path_number=number + 1,
                tx_location_number=tx + 1,
                rx_location_number=rx + 1,
                frequencies_mhz=frequencies,
            )
            for number, ((tx, rx), frequencies) in enumerate(
                zip(draft.paths, draft.frequencies)
            )
        ]
        return License(
            license_id=license_id,
            callsign=callsign,
            licensee_name=self.spec.name,
            contact_email=self._contact_email,
            grant_date=draft.grant,
            expiration_date=draft.grant + dt.timedelta(days=3650),
            cancellation_date=draft.cancellation,
            locations=locations,
            paths=paths,
        )

    def _grant_date(self, era_start: dt.date) -> dt.date:
        offset = self._rng.randint(5, _GRANT_STAGGER_DAYS)
        return era_start - dt.timedelta(days=offset)

    def _licenses_for_links(
        self,
        links: list[tuple[GeoPoint, GeoPoint]],
        kinds: list[str],
        era_start: dt.date,
        era_end: dt.date | None,
        pair_trunk: bool,
    ) -> list[License]:
        """One license per link — or, when ``pair_trunk`` is set, one
        license per *pair* of adjacent trunk links with the shared tower as
        the transmitter (multi-receiver filings, as some licensees use)."""
        licenses: list[License] = []
        index = 0
        while index < len(links):
            a, b = links[index]
            kind = kinds[index]
            pairable = (
                pair_trunk
                and kind in ("trunk", "branch")
                and index + 1 < len(links)
                and kinds[index + 1] == kind
                and links[index + 1][0] is b
            )
            if pairable:
                _, c = links[index + 1]
                draft = _LicenseDraft(
                    locations=[b, a, c],
                    paths=[(0, 1), (0, 2)],
                    frequencies=[self._link_frequencies(kind) for _ in range(2)],
                    grant=self._grant_date(era_start),
                    cancellation=era_end,
                    kind=kind,
                )
                index += 2
            else:
                draft = _LicenseDraft(
                    locations=[a, b],
                    paths=[(0, 1)],
                    frequencies=[self._link_frequencies(kind)],
                    grant=self._grant_date(era_start),
                    cancellation=era_end,
                    kind=kind,
                )
                index += 1
            licenses.append(self._make_license(draft))
        return licenses

    # ------------------------------------------------------------------
    # Eras
    # ------------------------------------------------------------------

    def _final_era_links(self) -> tuple[list[tuple[GeoPoint, GeoPoint]], list[str]]:
        spec = self.spec
        trunk = self.calibrate_trunk(spec.trunk_links, spec.ny4_target_ms, salt=0)
        links: list[tuple[GeoPoint, GeoPoint]] = list(zip(trunk, trunk[1:]))
        kinds = ["trunk"] * len(links)

        for branch in spec.branches:
            chain = self.calibrate_branch(branch, trunk)
            branch_links = list(zip(chain, chain[1:]))
            links.extend(branch_links)
            kinds.extend(["branch"] * len(branch_links))
            for bypass in self._bypass_links(
                chain, branch.bypass_covered, _BYPASS_LATERAL_M
            ):
                links.append(bypass)
                kinds.append("bypass")

        for bypass in self._bypass_links(
            trunk, spec.trunk_bypass_covered, _BYPASS_LATERAL_M
        ):
            links.append(bypass)
            kinds.append("bypass")

        for spur in self._spur_links(trunk):
            links.append(spur)
            kinds.append("spur")
        return links, kinds

    def _era_links(
        self, era: EraSpec, salt: int
    ) -> tuple[list[tuple[GeoPoint, GeoPoint]], list[str]]:
        if era.latency_target_ms is not None:
            chain = self.calibrate_trunk(era.n_links, era.latency_target_ms, salt)
        else:
            chain = self._trunk_chain(era.n_links, _DEFAULT_AMPLITUDE_M, salt)
            keep = max(1, math.ceil(era.coverage * era.n_links))
            chain = chain[: keep + 1]
        links = list(zip(chain, chain[1:]))
        return links, ["trunk"] * len(links)

    # ------------------------------------------------------------------
    # Padding & wind-down
    # ------------------------------------------------------------------

    def _pad_to_targets(self, licenses: list[License]) -> list[License]:
        """Extra channel filings bringing active counts up to Fig-2 targets."""
        padding: list[License] = []
        wind_start = self.spec.wind_down[0] if self.spec.wind_down else None
        previous_date: dt.date | None = None
        for target_date, target_count in self.spec.license_count_targets:
            if wind_start is not None and target_date >= wind_start:
                # Counts inside the wind-down window emerge from the
                # cancellation spread, not from padding.
                continue
            current = sum(
                1 for lic in licenses + padding if lic.is_active(target_date)
            )
            deficit = target_count - current
            if deficit < 0:
                raise ValueError(
                    f"{self.spec.name}: structural licenses ({current}) already "
                    f"exceed the count target ({target_count}) at {target_date}"
                )
            donors = [
                lic
                for lic in licenses
                if lic.is_active(target_date) and lic.paths
            ]
            if deficit and not donors:
                raise ValueError(
                    f"{self.spec.name}: no active links to attach padding to "
                    f"at {target_date}"
                )
            window_start = previous_date or (target_date - dt.timedelta(days=365))
            span = max(1, (target_date - window_start).days)
            for _ in range(deficit):
                donor = self._rng.choice(donors)
                grant = window_start + dt.timedelta(days=self._rng.randint(0, span - 1))
                grant = max(grant, donor.grant_date or grant)
                draft = _LicenseDraft(
                    locations=[
                        donor.locations[number].point
                        for number in sorted(donor.locations)
                    ],
                    paths=[
                        (path.tx_location_number - 1, path.rx_location_number - 1)
                        for path in donor.paths
                    ],
                    frequencies=[
                        self._link_frequencies("trunk") for _ in donor.paths
                    ],
                    grant=grant,
                    cancellation=donor.cancellation_date,
                    kind="padding",
                )
                padding.append(self._make_license(draft))
            previous_date = target_date
        return padding

    def _apply_wind_down(self, licenses: list[License]) -> None:
        if self.spec.wind_down is None:
            return
        start, end = self.spec.wind_down
        span = (end - start).days
        for lic in licenses:
            if lic.cancellation_date is not None and lic.cancellation_date <= start:
                continue
            lic.cancellation_date = start + dt.timedelta(
                days=self._rng.randint(0, span)
            )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def build(self) -> list[License]:
        """The licensee's complete license history."""
        spec = self.spec
        licenses: list[License] = []
        for era, era_end in spec.era_boundaries():
            links, kinds = self._era_links(era, salt=100 + era.seed_salt)
            licenses.extend(
                self._licenses_for_links(
                    links,
                    kinds,
                    era.start,
                    era_end,
                    pair_trunk=spec.links_per_license == 2,
                )
            )
        final_links, final_kinds = self._final_era_links()
        licenses.extend(
            self._licenses_for_links(
                final_links,
                final_kinds,
                spec.final_era_start,
                None,
                pair_trunk=spec.links_per_license == 2,
            )
        )
        licenses.extend(self._pad_to_targets(licenses))
        self._apply_wind_down(licenses)
        return licenses


def build_network_licenses(
    spec: NetworkSpec,
    corridor: CorridorSpec,
    final_date: dt.date = dt.date(2020, 4, 1),
) -> list[License]:
    """Convenience wrapper: build one spec's license history."""
    return NetworkBuilder(spec, corridor, final_date).build()
