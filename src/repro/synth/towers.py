"""Tower-site synthesis along corridor geodesics.

A synthetic route is a chain of tower sites between two anchor points:
towers are placed at chosen fractions along the geodesic and displaced
laterally by a smooth noise function scaled by a calibration amplitude.
Larger amplitudes make longer (slower) routes; the generator bisects on
the amplitude to hit a target latency measured through the real
reconstruction pipeline.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.geodesy import GeoPoint
from repro.geodesy.path import offset_point
from repro.synth.noise import SmoothNoise


def spacing_fractions(
    n_links: int,
    profile: str = "uniform",
    seed: int = 0,
    short_fraction: float = 0.6,
    length_ratio: float = 2.0,
) -> list[float]:
    """Cumulative fractions (0 … 1) splitting a route into ``n_links`` hops.

    ``profile``:

    * ``"uniform"`` — equal hops (speed-optimised networks buy the
      best-placed towers they can; spacing comes out roughly even);
    * ``"mixed"`` — a shuffled mix of short hops and long hops
      (``short_fraction`` of hops are short; long hops are
      ``length_ratio``× longer).  Reliability-optimised networks look like
      this: mostly short hops, with a few long ones where terrain allows
      (Webline Holdings' 36 km median vs 45 km mean in Fig 4a);
    * ``"jittered"`` — uniform with ±15% seeded jitter, for generic
      networks.
    """
    if n_links < 1:
        raise ValueError("need at least one link")
    if profile == "uniform":
        weights = [1.0] * n_links
    elif profile == "mixed":
        if not 0.0 < short_fraction < 1.0:
            raise ValueError("short_fraction must be in (0, 1)")
        if length_ratio <= 1.0:
            raise ValueError("length_ratio must exceed 1")
        n_short = max(1, round(n_links * short_fraction))
        n_long = n_links - n_short
        weights = [1.0] * n_short + [length_ratio] * n_long
        random.Random(seed).shuffle(weights)
    elif profile == "jittered":
        rng = random.Random(seed)
        weights = [1.0 + rng.uniform(-0.15, 0.15) for _ in range(n_links)]
    else:
        raise ValueError(f"unknown spacing profile: {profile!r}")
    total = sum(weights)
    fractions = []
    acc = 0.0
    for weight in weights:
        acc += weight
        fractions.append(acc / total)
    fractions[-1] = 1.0  # exact endpoint despite float accumulation
    return fractions


def chain_points(
    start: GeoPoint,
    end: GeoPoint,
    n_links: int,
    amplitude_m: float,
    noise: SmoothNoise,
    profile: str = "uniform",
    spacing_seed: int = 0,
    short_fraction: float = 0.6,
    length_ratio: float = 2.0,
) -> list[GeoPoint]:
    """Tower sites for a chain of ``n_links`` hops from start to end.

    Returns ``n_links + 1`` points: the two anchors exactly, and
    intermediate towers displaced laterally by
    ``amplitude_m × noise.tapered(fraction)``.
    """
    fractions = [0.0] + spacing_fractions(
        n_links,
        profile,
        spacing_seed,
        short_fraction=short_fraction,
        length_ratio=length_ratio,
    )
    points: list[GeoPoint] = []
    for index, fraction in enumerate(fractions):
        if index == 0:
            points.append(start)
        elif index == len(fractions) - 1:
            points.append(end)
        else:
            lateral = amplitude_m * noise.tapered(fraction)
            points.append(offset_point(start, end, fraction, lateral))
    return points


def bypass_point(
    tower_a: GeoPoint,
    tower_b: GeoPoint,
    lateral_m: float,
    along_fraction: float = 0.5,
) -> GeoPoint:
    """A bypass tower beside the a→b segment.

    Placed at ``along_fraction`` of the way from a to b, offset
    ``lateral_m`` perpendicular to it — guaranteeing the detour through
    the bypass is strictly longer than the direct hop, so it never steals
    the shortest path but provides an alternate when a link fails.
    """
    if lateral_m == 0.0:
        raise ValueError("a bypass tower must be off the direct segment")
    return offset_point(tower_a, tower_b, along_fraction, lateral_m)


def gateway_point(data_center: GeoPoint, towards: GeoPoint, distance_m: float) -> GeoPoint:
    """The gateway tower: ``distance_m`` from the data center towards the
    far end of the corridor.  Its fiber tail is what §2.3's model pays at
    2c/3."""
    if distance_m <= 0.0:
        raise ValueError("gateway distance must be positive")
    return offset_point(data_center, towards, 0.0, 0.0) if distance_m == 0.0 else (
        _along(data_center, towards, distance_m)
    )


def _along(start: GeoPoint, towards: GeoPoint, distance_m: float) -> GeoPoint:
    from repro.geodesy import geodesic_inverse, geodesic_destination

    _, azimuth, _ = geodesic_inverse(start, towards)
    return geodesic_destination(start, azimuth, distance_m)


def perturb(point: GeoPoint, seed: int, max_offset_m: float = 150.0) -> GeoPoint:
    """A small seeded displacement, used to make decoy sites look organic."""
    rng = random.Random(seed)
    bearing = rng.uniform(0.0, 360.0)
    distance = rng.uniform(0.0, max_offset_m)
    from repro.geodesy import geodesic_destination

    return geodesic_destination(point, bearing, distance)


def route_lengths_km(points: Sequence[GeoPoint]) -> list[float]:
    """Per-hop lengths of a chain, km (diagnostics for tests)."""
    from repro.geodesy import geodesic_distance

    return [
        geodesic_distance(a, b) / 1000.0 for a, b in zip(points, points[1:])
    ]
