"""The ``paper2020`` scenario: the corridor as the paper measured it.

This module pins down one :class:`NetworkSpec` per licensee the paper
analyses, with calibration targets copied from the published tables:

* Table 1 — the nine connected networks's CME–NY4 latencies, APA
  percentages and shortest-path tower counts on 1 April 2020;
* Table 2 — the per-path latencies of the top-3 networks for CME–NYSE and
  CME–NASDAQ (plus §5's quoted WH lags for the WH targets);
* Table 3 — NLN vs WH per-path APA, realised through bypass coverage
  masks;
* Fig 1 / Fig 2 — era timelines and license-count trajectories, including
  National Tower Company's rise and wind-down;
* Fig 4 — hop-spacing profiles (WH's short-hop "mixed" layout) and
  frequency band mixes (WH in the 6 GHz band, NLN at 11 GHz with 6 GHz
  alternates);
* §2.2's scraping funnel — 19 partial builders (≥11 filings, no end-end
  path) and 28 small local decoy licensees (≤10 filings near CME), so the
  geographic search uncovers 57 candidates, 29 survive the filing-count
  shortlist, and 9 are connected in 2020.

Latencies not published in the paper (e.g. Pierce Broadband's CME–NYSE
time) are filled with values consistent with every published constraint
(slower than the printed top-3).
"""

from __future__ import annotations

import datetime as dt
import random
import zlib
from dataclasses import dataclass
from functools import lru_cache

from repro.core.corridor import CorridorSpec, chicago_nj_corridor
from repro.geodesy import GeoPoint, geodesic_destination
from repro.synth.generator import NetworkBuilder
from repro.synth.specs import (
    BranchSpec,
    EraSpec,
    FrequencyProfile,
    NetworkSpec,
)
from repro.synth.towers import chain_points, perturb
from repro.synth.noise import SmoothNoise
from repro.uls.database import UlsDatabase
from repro.uls.records import License, MicrowavePath, TowerLocation

#: The paper's snapshot date ("as of 1st April, 2020").
SNAPSHOT_DATE = dt.date(2020, 4, 1)

_D = dt.date  # local shorthand for the spec tables below

# ----------------------------------------------------------------------
# Frequency profiles (Fig 4b)
# ----------------------------------------------------------------------

#: NLN runs its trunk at 11 GHz and keeps lower-frequency (6 GHz)
#: channels on alternate paths (§5, Fig 4b).
_NLN_FREQS = FrequencyProfile(
    trunk_bands=(("11GHz", 1.0),),
    alternate_bands=(("6GHz", 0.30), ("11GHz", 0.70)),
)

#: WH runs almost everything in the 6 GHz band (">94% of the frequencies
#: being under 7 GHz").
_WH_FREQS = FrequencyProfile(
    trunk_bands=(("6GHz", 0.96), ("11GHz", 0.04)),
    alternate_bands=(("6GHz", 1.0),),
)

_11GHZ = FrequencyProfile(trunk_bands=(("11GHz", 1.0),))
_MIX_11_18 = FrequencyProfile(trunk_bands=(("11GHz", 0.6), ("18GHz", 0.4)))
_18GHZ = FrequencyProfile(trunk_bands=(("18GHz", 1.0),))
_SHORT_HOP = FrequencyProfile(trunk_bands=(("18GHz", 0.5), ("23GHz", 0.5)))


# ----------------------------------------------------------------------
# The nine connected networks + National Tower Company
# ----------------------------------------------------------------------

def connected_network_specs() -> tuple[NetworkSpec, ...]:
    """Specs for the nine networks of Table 1 (latencies in ms)."""
    return (
        NetworkSpec(
            name="New Line Networks",
            callsign_prefix="WQNL",
            seed=11,
            trunk_links=24,
            ny4_target_ms=3.96171,
            frequency_profile=_NLN_FREQS,
            trunk_bypass_covered=(1, 2, 4, 5, 7, 8, 10, 11, 14, 15, 17, 18, 21),
            branches=(
                BranchSpec(
                    target_dc="NYSE",
                    split_link=20,
                    n_links=6,
                    latency_target_ms=3.93209,
                    bypass_covered=(0, 1, 3),
                    gateway_km=0.7,
                ),
                BranchSpec(
                    target_dc="NASDAQ",
                    split_link=8,
                    n_links=19,
                    latency_target_ms=3.92728,
                    bypass_covered=(4, 5, 8, 9),
                    gateway_km=0.45,
                ),
            ),
            eras=(
                EraSpec(_D(2013, 2, 1), None, 24, coverage=0.3, seed_salt=1),
                EraSpec(_D(2014, 8, 1), None, 24, coverage=0.7, seed_salt=2),
                EraSpec(_D(2015, 12, 20), 3.9900, 24, seed_salt=3),
                EraSpec(_D(2016, 11, 5), 3.9790, 24, seed_salt=4),
                EraSpec(_D(2017, 10, 12), 3.9640, 24, seed_salt=5),
            ),
            final_era_start=_D(2019, 6, 15),
            license_count_targets=(
                (_D(2014, 1, 1), 10),
                (_D(2015, 1, 1), 40),
                (_D(2016, 1, 1), 95),
                (_D(2017, 1, 1), 130),
                (_D(2018, 1, 1), 150),
                (_D(2019, 1, 1), 150),
                (_D(2020, 4, 1), 148),
            ),
            spur_links=3,
        ),
        NetworkSpec(
            name="Pierce Broadband",
            callsign_prefix="WQPB",
            seed=12,
            trunk_links=28,
            ny4_target_ms=3.96209,
            frequency_profile=_11GHZ,
            trunk_bypass_covered=(13, 14),
            branches=(
                BranchSpec("NYSE", split_link=22, n_links=6,
                           latency_target_ms=3.96500, gateway_km=0.7),
                BranchSpec("NASDAQ", split_link=10, n_links=18,
                           latency_target_ms=3.94000, gateway_km=0.45),
            ),
            eras=(
                EraSpec(_D(2019, 7, 10), None, 28, coverage=0.6, seed_salt=1),
            ),
            final_era_start=_D(2020, 2, 15),
            links_per_license=2,
            license_count_targets=((_D(2020, 4, 1), 34),),
        ),
        NetworkSpec(
            name="Jefferson Microwave",
            callsign_prefix="WRJM",
            seed=13,
            trunk_links=21,
            ny4_target_ms=3.96597,
            frequency_profile=_11GHZ,
            trunk_bypass_covered=(1, 2, 4, 5, 7, 8, 10, 11, 13, 14, 16, 17, 19, 20, 18),
            branches=(
                BranchSpec("NYSE", split_link=18, n_links=5,
                           latency_target_ms=3.94021, bypass_covered=(1, 2),
                           gateway_km=0.7),
                BranchSpec("NASDAQ", split_link=6, n_links=20,
                           latency_target_ms=3.92828, bypass_covered=(8, 9),
                           gateway_km=0.45),
            ),
            eras=(
                EraSpec(_D(2014, 6, 1), None, 21, coverage=0.5, seed_salt=1),
                EraSpec(_D(2014, 12, 20), 3.9950, 21, seed_salt=2),
                EraSpec(_D(2015, 12, 10), 3.9850, 21, seed_salt=3),
                EraSpec(_D(2016, 11, 20), 3.9780, 21, seed_salt=4),
                EraSpec(_D(2017, 11, 8), 3.9720, 21, seed_salt=5),
            ),
            final_era_start=_D(2018, 12, 10),
            license_count_targets=(
                (_D(2015, 1, 1), 30),
                (_D(2016, 1, 1), 45),
                (_D(2017, 1, 1), 55),
                (_D(2018, 1, 1), 62),
                (_D(2019, 1, 1), 70),
                (_D(2020, 4, 1), 70),
            ),
        ),
        NetworkSpec(
            name="Blueline Comm",
            callsign_prefix="WQBC",
            seed=14,
            trunk_links=28,
            ny4_target_ms=3.96940,
            frequency_profile=_MIX_11_18,
            branches=(
                BranchSpec("NYSE", split_link=24, n_links=5,
                           latency_target_ms=3.95866, gateway_km=0.7),
                BranchSpec("NASDAQ", split_link=8, n_links=20,
                           latency_target_ms=3.94700, gateway_km=0.45),
            ),
            eras=(
                EraSpec(_D(2014, 3, 15), 4.0100, 28, seed_salt=1),
                EraSpec(_D(2016, 5, 10), 3.9900, 28, seed_salt=2),
            ),
            final_era_start=_D(2018, 4, 20),
            license_count_targets=(
                (_D(2015, 1, 1), 45),
                (_D(2017, 1, 1), 60),
                (_D(2020, 4, 1), 80),
            ),
        ),
        NetworkSpec(
            name="Webline Holdings",
            callsign_prefix="WQWH",
            seed=15,
            trunk_links=26,
            ny4_target_ms=3.97157,
            frequency_profile=_WH_FREQS,
            trunk_bypass_covered=(
                0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17,
                19, 21, 22, 23,
            ),
            branches=(
                BranchSpec("NYSE", split_link=21, n_links=4,
                           latency_target_ms=4.04909,
                           bypass_covered=(0, 1, 2, 3), gateway_km=0.7),
                BranchSpec("NASDAQ", split_link=4, n_links=21,
                           latency_target_ms=3.92805,
                           bypass_covered=(0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10, 11, 12, 13, 14, 15),
                           gateway_km=0.45),
            ),
            eras=(
                EraSpec(_D(2012, 7, 1), 4.0300, 26, seed_salt=1),
                EraSpec(_D(2013, 11, 10), 4.0120, 26, seed_salt=2),
                EraSpec(_D(2014, 10, 5), 3.9980, 26, seed_salt=3),
                EraSpec(_D(2015, 11, 15), 3.9870, 26, seed_salt=4),
                EraSpec(_D(2016, 10, 25), 3.9800, 26, seed_salt=5),
                EraSpec(_D(2017, 11, 5), 3.9760, 26, seed_salt=6),
            ),
            final_era_start=_D(2018, 11, 20),
            spacing_profile="mixed",
            spacing_short_fraction=0.62,
            spacing_length_ratio=1.85,
            license_count_targets=(
                (_D(2013, 1, 1), 60),
                (_D(2014, 1, 1), 75),
                (_D(2015, 1, 1), 90),
                (_D(2016, 1, 1), 105),
                (_D(2017, 1, 1), 115),
                (_D(2018, 1, 1), 125),
                (_D(2019, 1, 1), 132),
                (_D(2020, 4, 1), 140),
            ),
        ),
        NetworkSpec(
            name="AQ2AT",
            callsign_prefix="WQAQ",
            seed=16,
            trunk_links=28,
            ny4_target_ms=4.01101,
            frequency_profile=_11GHZ,
            eras=(EraSpec(_D(2016, 9, 1), 4.0250, 28, seed_salt=1),),
            final_era_start=_D(2017, 8, 10),
            license_count_targets=((_D(2018, 1, 1), 45), (_D(2020, 4, 1), 48)),
        ),
        NetworkSpec(
            name="Wireless Internetwork",
            callsign_prefix="WQWI",
            seed=17,
            trunk_links=32,
            ny4_target_ms=4.12246,
            frequency_profile=_18GHZ,
            eras=(EraSpec(_D(2012, 8, 15), 4.1400, 32, seed_salt=1),),
            final_era_start=_D(2014, 6, 1),
            license_count_targets=((_D(2015, 1, 1), 50), (_D(2020, 4, 1), 52)),
        ),
        NetworkSpec(
            name="GTT Americas",
            callsign_prefix="WQGT",
            seed=18,
            trunk_links=27,
            ny4_target_ms=4.24241,
            frequency_profile=_MIX_11_18,
            eras=(EraSpec(_D(2012, 5, 1), 4.2600, 27, seed_salt=1),),
            final_era_start=_D(2013, 9, 15),
            license_count_targets=((_D(2014, 1, 1), 42), (_D(2020, 4, 1), 45)),
        ),
        NetworkSpec(
            name="SW Networks",
            callsign_prefix="WQSW",
            seed=19,
            trunk_links=73,
            ny4_target_ms=4.44530,
            frequency_profile=_SHORT_HOP,
            eras=(EraSpec(_D(2012, 4, 1), 4.4700, 73, seed_salt=1),),
            final_era_start=_D(2013, 7, 1),
            license_count_targets=((_D(2014, 1, 1), 95), (_D(2020, 4, 1), 98)),
        ),
    )


def national_tower_company_spec() -> NetworkSpec:
    """The network that perished (§4): ramped up 2013–2015, wound down
    2016–2017, gone by 2018."""
    return NetworkSpec(
        name="National Tower Company",
        callsign_prefix="WQNT",
        seed=20,
        trunk_links=30,
        ny4_target_ms=3.9910,
        frequency_profile=_MIX_11_18,
        eras=(
            EraSpec(_D(2012, 9, 1), None, 30, coverage=0.8, seed_salt=1),
            EraSpec(_D(2012, 12, 10), 4.0020, 30, seed_salt=2),
            EraSpec(_D(2014, 3, 5), 3.9960, 30, seed_salt=3),
        ),
        final_era_start=_D(2015, 2, 10),
        license_count_targets=(
            (_D(2013, 1, 1), 120),
            (_D(2014, 1, 1), 135),
            (_D(2015, 1, 1), 160),
            (_D(2016, 1, 1), 160),
        ),
        wind_down=(_D(2016, 3, 1), _D(2017, 9, 30)),
    )


# ----------------------------------------------------------------------
# Partial builders and decoys (the §2.2 funnel)
# ----------------------------------------------------------------------

_PARTIAL_BUILDER_NAMES = (
    "Midwest Relay Partners", "Great Lakes Wave", "Prairie Wireless Transit",
    "Allegheny Microwave", "Keystone Wave Systems", "Heartland Radio Routes",
    "Fox Valley Wireless", "Illiana Tower Links", "Skyline Relay Corp",
    "Apex Route Networks", "Meridian Wave Transport", "Blue Ridge Backhaul",
    "Lakeshore Transmission", "Summit Path Wireless", "Cardinal Relay Group",
    "Pioneer Wave Holdings", "Tri-State Wave Transit", "Susquehanna Links",
    "Eastbound Wireless Ventures",
)

_DECOY_NAMES = tuple(
    f"{city} {suffix}"
    for city, suffix in (
        ("Aurora", "Utility Wireless"), ("Naperville", "Industrial Radio"),
        ("Oswego", "Pipeline Telemetry"), ("Batavia", "Grid Communications"),
        ("Montgomery", "Quarry Wireless"), ("Sugar Grove", "Farm Data Links"),
        ("Plainfield", "Water District Radio"), ("Yorkville", "Municipal Wireless"),
        ("Geneva", "Rail Telemetry"), ("St. Charles", "Logistics Radio"),
        ("Warrenville", "Freight Wireless"), ("Eola", "Substation Links"),
        ("Bristol", "Cooperative Radio"), ("Sandwich", "Elevator Telemetry"),
        ("Plano", "Gravel Wireless"), ("Big Rock", "Irrigation Radio"),
        ("Elburn", "Grain Wireless"), ("Kaneville", "Township Radio"),
        ("Lisle", "Campus Wireless"), ("Wheaton", "Hospital Links"),
        ("Winfield", "Clinic Radio"), ("Downers Grove", "Transit Wireless"),
        ("Westmont", "Depot Radio"), ("Darien", "Utility Telemetry"),
        ("Lemont", "Refinery Wireless"), ("Romeoville", "Terminal Radio"),
        ("Bolingbrook", "Distribution Links"), ("Woodridge", "Parkway Wireless"),
    )
)

_NON_MG_NAMES = (
    ("Chicagoland Broadcast Relay", "TS", "FXO"),
    ("Fox River Paging", "MG", "FB"),
    ("DuPage Public Safety Net", "PW", "FXO"),
    ("Kendall County Roads Radio", "IG", "FX1"),
    ("Aurora Studio Transmitter Link", "AS", "FXO"),
)


def _default_email(name: str) -> str:
    slug = name.lower().replace(" ", "").replace(".", "").replace("-", "")
    return f"ops@{slug}.example.net"


def simple_license(
    license_id: str,
    callsign: str,
    name: str,
    a: GeoPoint,
    b: GeoPoint,
    grant: dt.date,
    cancellation: dt.date | None,
    frequencies: tuple[float, ...],
    radio_service: str = "MG",
    station_class: str = "FXO",
    contact_email: str | None = None,
) -> License:
    return License(
        license_id=license_id,
        callsign=callsign,
        licensee_name=name,
        contact_email=contact_email if contact_email is not None else _default_email(name),
        radio_service_code=radio_service,
        station_class=station_class,
        grant_date=grant,
        expiration_date=grant + dt.timedelta(days=3650),
        cancellation_date=cancellation,
        locations={
            1: TowerLocation(1, a, 200.0, 80.0),
            2: TowerLocation(2, b, 200.0, 80.0),
        },
        paths=[MicrowavePath(1, 1, 2, frequencies)],
    )


#: The hidden single entity of §2.4: two licensees, one network.  Their
#: shared filing-contact domain is the §6 future-work signal; the two
#: halves share the boundary tower, so jointly they form an end-end path.
SPLIT_NETWORK_WEST = "Midwest Relay Partners"
SPLIT_NETWORK_EAST = "Garden State Relay Partners"
SPLIT_NETWORK_EMAIL = "fcc@tradewavegroup.example.com"
_SPLIT_TOTAL_LINKS = 30
_SPLIT_BOUNDARY = 15  # links 0..14 west, 15..29 east


def _split_network_chain(corridor: CorridorSpec) -> list:
    """The full (hidden) Tradewave chain, gateway to gateway."""
    west = corridor.west.point
    east = corridor.east[0].point
    # Gateways ~1.2 km from each data center, towers with mild jitter.
    from repro.geodesy.path import offset_point

    start = offset_point(west, east, 0.001, 0.0)
    end = offset_point(west, east, 0.999, 0.0)
    return chain_points(
        start, end, _SPLIT_TOTAL_LINKS, 16_000.0, SmoothNoise(8181)
    )


def _split_half_licenses(
    corridor: CorridorSpec, name: str, link_range: range, id_prefix: str
) -> list[License]:
    chain = _split_network_chain(corridor)
    licenses = []
    # Seed from a stable digest of the name: hash() is randomised per
    # process (PYTHONHASHSEED), which would make "deterministic" licenses
    # differ across runs.
    rng = random.Random(zlib.crc32(name.encode()) % 10_000)
    for link_index in link_range:
        a, b = chain[link_index], chain[link_index + 1]
        grant = dt.date(2017, 3, 1) + dt.timedelta(days=(link_index * 11) % 300)
        licenses.append(
            simple_license(
                license_id=f"{id_prefix}{link_index:03d}",
                callsign=f"WQ{id_prefix}{link_index:03d}",
                name=name,
                a=a,
                b=b,
                grant=grant,
                cancellation=None,
                frequencies=(10995.0, 11195.0),
                contact_email=SPLIT_NETWORK_EMAIL,
            )
        )
    return licenses


def split_network_west_licenses(corridor: CorridorSpec) -> list[License]:
    """The western half (reaches CME, so it enters the §2.2 funnel)."""
    return _split_half_licenses(
        corridor, SPLIT_NETWORK_WEST, range(0, _SPLIT_BOUNDARY), "TW"
    )


def split_network_east_licenses(corridor: CorridorSpec) -> list[License]:
    """The eastern half (no towers near CME — invisible to the funnel)."""
    return _split_half_licenses(
        corridor,
        SPLIT_NETWORK_EAST,
        range(_SPLIT_BOUNDARY, _SPLIT_TOTAL_LINKS),
        "TE",
    )


def partial_builder_licenses(corridor: CorridorSpec) -> list[License]:
    """Licensees with ≥11 filings that never completed an end-end path.

    Each builds a west-anchored chain covering 30–70% of the corridor;
    they are part of the paper's 29 shortlisted licensees but not the 9
    connected networks.  The first "partial builder" is secretly the
    western half of the split Tradewave network (§2.4's blind spot).
    """
    cme = corridor.west.point
    ny4 = corridor.east[0].point
    licenses: list[License] = list(split_network_west_licenses(corridor))
    for index, name in enumerate(_PARTIAL_BUILDER_NAMES):
        if name == SPLIT_NETWORK_WEST:
            continue
        seed = 300 + index
        rng = random.Random(seed)
        n_links = rng.randint(24, 34)
        coverage = rng.uniform(0.3, 0.7)
        keep = max(11, int(n_links * coverage))
        start = geodesic_destination(cme, 95.0, rng.uniform(800.0, 6000.0))
        chain = chain_points(
            start, ny4, n_links, rng.uniform(2000.0, 15000.0), SmoothNoise(seed)
        )[: keep + 1]
        grant_year = rng.randint(2012, 2018)
        cancelled = rng.random() < 0.35
        for link_index, (a, b) in enumerate(zip(chain, chain[1:])):
            grant = dt.date(grant_year, 1, 1) + dt.timedelta(
                days=rng.randint(0, 700)
            )
            cancellation = (
                grant + dt.timedelta(days=rng.randint(400, 1800))
                if cancelled
                else None
            )
            licenses.append(
                simple_license(
                    license_id=f"LP{index:02d}{link_index:03d}",
                    callsign=f"WQP{index:02d}{link_index:03d}",
                    name=name,
                    a=a,
                    b=b,
                    grant=grant,
                    cancellation=cancellation,
                    frequencies=(10995.0, 11195.0),
                )
            )
    return licenses


def decoy_licenses(corridor: CorridorSpec) -> list[License]:
    """Small MG/FXO licensees near the western anchor with ≤10 filings
    (not HFT networks)."""
    cme = corridor.west.point
    licenses: list[License] = []
    for index, name in enumerate(_DECOY_NAMES):
        rng = random.Random(600 + index)
        n_filings = rng.randint(1, 10)
        hub = geodesic_destination(
            cme, rng.uniform(0.0, 360.0), rng.uniform(500.0, 8000.0)
        )
        for filing in range(n_filings):
            remote = geodesic_destination(
                hub, rng.uniform(0.0, 360.0), rng.uniform(2000.0, 20000.0)
            )
            grant = dt.date(rng.randint(2008, 2019), rng.randint(1, 12), 15)
            licenses.append(
                simple_license(
                    license_id=f"LD{index:02d}{filing:02d}",
                    callsign=f"WQD{index:02d}{filing:02d}",
                    name=name,
                    a=perturb(hub, 600 + index * 31 + filing),
                    b=remote,
                    grant=grant,
                    cancellation=None,
                    frequencies=(6063.8,) if filing % 2 else (10995.0,),
                )
            )
    return licenses


def non_mg_licenses(corridor: CorridorSpec) -> list[License]:
    """Licensees near the western anchor filtered out by the MG/FXO site
    search."""
    cme = corridor.west.point
    licenses: list[License] = []
    for index, (name, service, klass) in enumerate(_NON_MG_NAMES):
        rng = random.Random(700 + index)
        hub = geodesic_destination(cme, rng.uniform(0.0, 360.0), rng.uniform(1000.0, 9000.0))
        remote = geodesic_destination(hub, rng.uniform(0.0, 360.0), 12_000.0)
        licenses.append(
            simple_license(
                license_id=f"LX{index:02d}",
                callsign=f"WQX{index:02d}",
                name=name,
                a=hub,
                b=remote,
                grant=dt.date(2015, 6, 1),
                cancellation=None,
                frequencies=(6525.0,),
                radio_service=service,
                station_class=klass,
            )
        )
    return licenses


# ----------------------------------------------------------------------
# Scenario assembly
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """A corridor plus its full synthetic ULS database.

    ``name`` identifies the scenario in the registry
    (:mod:`repro.scenarios`), CLI output paths and serve routing.
    ``featured`` / ``spotlight`` parameterise which licensees the
    timeline figures and the APA / weather / map defaults focus on; when
    unset they fall back to the connected networks (so any corridor
    works without per-scenario tuning).
    """

    corridor: CorridorSpec
    database: UlsDatabase
    snapshot_date: dt.date
    connected_names: tuple[str, ...]
    name: str = "paper2020"
    featured: tuple[str, ...] | None = None
    spotlight: tuple[str, ...] | None = None

    @property
    def featured_names(self) -> tuple[str, ...]:
        """The networks of the Fig 1 / Fig 2 timelines."""
        if self.featured is not None:
            return self.featured
        return self.connected_names

    @property
    def spotlight_names(self) -> tuple[str, ...]:
        """The licensee pair the APA / weather / map workloads default to
        (the paper's NLN-vs-WH §5 comparison for ``paper2020``)."""
        if self.spotlight is not None:
            return self.spotlight
        return self.featured_names[:2]

    @property
    def primary_path(self) -> tuple[str, str]:
        """The corridor's first (source, target) pair — the pair every
        driver ranks on when no explicit path is requested."""
        return self.corridor.paths[0]

    def engine(self, **params) -> "CorridorEngine":
        """The scenario's :class:`~repro.core.engine.CorridorEngine`.

        With no arguments, returns one shared default-parameter engine per
        scenario — every analysis driver and CLI subcommand that calls
        this reuses its snapshot/route/geodesic caches.  With parameter
        overrides (``latency_model``, ``stitch_tolerance_m``,
        ``max_fiber_tail_m``, ``fiber_mode``, ``reconstructor``), returns
        a *fresh* parameter-distinct engine: sweeps must never share cache
        entries across parameterisations.
        """
        from repro.core.engine import CorridorEngine

        if params:
            return CorridorEngine(self.database, self.corridor, **params)
        cached = self.__dict__.get("_default_engine")
        if cached is None:
            cached = CorridorEngine(self.database, self.corridor)
            object.__setattr__(self, "_default_engine", cached)
        return cached


#: The five networks of the paper's Figs 1 and 2.
PAPER_FEATURED_NAMES = (
    "National Tower Company",
    "Webline Holdings",
    "Jefferson Microwave",
    "Pierce Broadband",
    "New Line Networks",
)

#: The §5 deep-dive pair (Table 3 APA, weather, map defaults).
PAPER_SPOTLIGHT_NAMES = ("New Line Networks", "Webline Holdings")


def build_scenario(
    specs: tuple[NetworkSpec, ...] | None = None,
    include_funnel_extras: bool = True,
    corridor: CorridorSpec | None = None,
    name: str = "paper2020",
    featured: tuple[str, ...] | None = None,
    spotlight: tuple[str, ...] | None = None,
) -> Scenario:
    """Build a scenario from specs (defaults to the paper's networks).

    Passing a different ``corridor`` (e.g.
    :func:`repro.core.corridor.london_frankfurt_corridor`) with matching
    specs builds a scenario for any two-anchor corridor; the funnel
    extras (partial builders, decoys, non-MG licensees) generalise to any
    corridor — they anchor on ``corridor.west`` — but represent the §2.2
    Chicago funnel, so other corridors may disable them.
    """
    corridor = corridor or chicago_nj_corridor()
    if specs is None:
        specs = connected_network_specs() + (national_tower_company_spec(),)
        if featured is None:
            featured = PAPER_FEATURED_NAMES
        if spotlight is None:
            spotlight = PAPER_SPOTLIGHT_NAMES
    database = UlsDatabase()
    connected: list[str] = []
    for spec in specs:
        builder = NetworkBuilder(spec, corridor, SNAPSHOT_DATE)
        database.extend(builder.build())
        if spec.wind_down is None:
            connected.append(spec.name)
    if include_funnel_extras:
        database.extend(partial_builder_licenses(corridor))
        database.extend(split_network_east_licenses(corridor))
        database.extend(decoy_licenses(corridor))
        database.extend(non_mg_licenses(corridor))
    return Scenario(
        corridor=corridor,
        database=database,
        snapshot_date=SNAPSHOT_DATE,
        connected_names=tuple(connected),
        name=name,
        featured=featured,
        spotlight=spotlight,
    )


@lru_cache(maxsize=1)
def paper2020_scenario() -> Scenario:
    """The calibrated corridor scenario (cached; fully deterministic)."""
    return build_scenario()


def europe_network_specs() -> tuple[NetworkSpec, ...]:
    """Synthetic networks for the London–Frankfurt corridor.

    LD4–FR2 is ~671 km (c-bound 2.2393 ms).  The tooling is identical to
    the Chicago corridor; these specs exist to exercise
    corridor-agnosticism (no published ULS-style data exists for Europe).
    """
    return (
        NetworkSpec(
            name="Channel Wave Networks",
            callsign_prefix="GBCW",
            seed=41,
            trunk_links=13,
            ny4_target_ms=2.2460,  # target on the corridor's primary path
            frequency_profile=_11GHZ,
            trunk_bypass_covered=(2, 3, 7, 8),
            eras=(EraSpec(_D(2015, 5, 1), 2.2600, 13, seed_salt=1),),
            final_era_start=_D(2018, 3, 1),
            gateway_west_km=0.7,
            gateway_east_km=0.6,
        ),
        NetworkSpec(
            name="Rhine Crossing Comm",
            callsign_prefix="DERC",
            seed=42,
            trunk_links=16,
            ny4_target_ms=2.2488,
            frequency_profile=_WH_FREQS,
            trunk_bypass_covered=(0, 1, 4, 5, 8, 9, 12, 13),
            eras=(EraSpec(_D(2014, 9, 1), 2.2650, 16, seed_salt=1),),
            final_era_start=_D(2017, 6, 1),
            gateway_west_km=0.7,
            gateway_east_km=0.6,
            spacing_profile="mixed",
        ),
        NetworkSpec(
            name="Lowland Relay",
            callsign_prefix="NLLR",
            seed=43,
            trunk_links=15,
            ny4_target_ms=2.2710,
            frequency_profile=_18GHZ,
            eras=(EraSpec(_D(2016, 2, 1), 2.2900, 15, seed_salt=1),),
            final_era_start=_D(2019, 4, 1),
            gateway_west_km=0.7,
            gateway_east_km=0.6,
        ),
    )


@lru_cache(maxsize=1)
def europe2020_scenario() -> Scenario:
    """A London–Frankfurt scenario (cached; corridor-agnosticism demo)."""
    from repro.core.corridor import london_frankfurt_corridor

    return build_scenario(
        specs=europe_network_specs(),
        include_funnel_extras=False,
        corridor=london_frankfurt_corridor(),
        name="europe2020",
        spotlight=("Channel Wave Networks", "Rhine Crossing Comm"),
    )


def asia_network_specs() -> tuple[NetworkSpec, ...]:
    """Synthetic networks for the Tokyo–Singapore corridor.

    TY3–SG1 is ~5,314 km (c-bound 17.7243 ms) — an order of magnitude
    longer than the paper's corridor, mostly over water, in the regime
    where the Fig 5 LEO bound overtakes terrestrial microwave.  Hop
    spacing (~45–55 km) matches the other corridors; targets sit 0.3–0.7%
    above the c-bound like the paper's fastest networks.
    """
    return (
        NetworkSpec(
            name="Pacific Rim Relay",
            callsign_prefix="JPPR",
            seed=51,
            trunk_links=104,
            ny4_target_ms=17.7780,
            frequency_profile=_11GHZ,
            trunk_bypass_covered=tuple(range(2, 104, 4)),
            eras=(EraSpec(_D(2016, 3, 1), 17.9200, 104, seed_salt=1),),
            final_era_start=_D(2019, 1, 15),
            gateway_west_km=0.8,
            gateway_east_km=0.7,
        ),
        NetworkSpec(
            name="Straits Microwave",
            callsign_prefix="SGSM",
            seed=52,
            trunk_links=112,
            ny4_target_ms=17.7960,
            frequency_profile=_WH_FREQS,
            trunk_bypass_covered=tuple(range(0, 112, 2)),
            eras=(EraSpec(_D(2015, 8, 1), 17.9500, 112, seed_salt=1),),
            final_era_start=_D(2018, 6, 1),
            gateway_west_km=0.8,
            gateway_east_km=0.7,
            spacing_profile="mixed",
        ),
        NetworkSpec(
            name="Archipelago Wave",
            callsign_prefix="IDAW",
            seed=53,
            trunk_links=96,
            ny4_target_ms=17.8420,
            frequency_profile=_MIX_11_18,
            eras=(EraSpec(_D(2017, 2, 1), 17.9900, 96, seed_salt=1),),
            final_era_start=_D(2019, 9, 1),
            gateway_west_km=0.8,
            gateway_east_km=0.7,
        ),
    )


@lru_cache(maxsize=1)
def tokyo_singapore_scenario() -> Scenario:
    """A Tokyo–Singapore long-haul scenario (cached)."""
    from repro.core.corridor import tokyo_singapore_corridor

    return build_scenario(
        specs=asia_network_specs(),
        include_funnel_extras=False,
        corridor=tokyo_singapore_corridor(),
        name="tokyo-singapore",
        spotlight=("Pacific Rim Relay", "Straits Microwave"),
    )
