"""HFTNetView reproduction: HFT microwave networks from FCC ULS filings.

A from-scratch reproduction of *"A Bird's Eye View of the World's Fastest
Networks"* (IMC 2020): a tool that reconstructs licensed high-frequency-
trading microwave networks on the Chicago-New Jersey corridor from FCC
Universal Licensing System data, analyses their latency, redundancy, link
lengths and operating frequencies, and regenerates every table and figure
of the paper's evaluation.

Quickstart::

    import repro

    scenario = repro.paper2020_scenario()
    engine = repro.CorridorEngine(scenario.database, scenario.corridor)
    route = engine.route(
        "New Line Networks", scenario.snapshot_date, "CME", "NY4"
    )
    print(f"{route.latency_ms:.5f} ms over {route.tower_count} towers")

Repeated queries (timelines, rankings, sweeps) hit the engine's
snapshot/route caches; ``engine.stats`` reports hit rates.

Subpackages
-----------

``repro.geodesy``   WGS84 geodesics and FCC coordinate formats.
``repro.uls``       The FCC ULS substrate: records, database, searches,
                    dump format, portal simulator, scraper.
``repro.core``      The paper's tool: reconstruction, latency model,
                    routing, timelines, YAML export.
``repro.metrics``   APA, link-length and frequency distributions, rankings.
``repro.radio``     Microwave link engineering (ITU rain model, budgets).
``repro.synth``     Calibrated synthetic corridor data (no FCC access
                    needed) and storm simulation.
``repro.leo``       LEO constellations for the Fig 5 comparison.
``repro.viz``       SVG maps, GeoJSON, figure data files.
``repro.analysis``  One driver per paper table/figure, plus ablations.
"""

from repro.constants import (
    APA_SLACK_FACTOR,
    FIBER_SPEED,
    MAX_FIBER_TAIL_M,
    MICROWAVE_SPEED,
    SPEED_OF_LIGHT,
)
from repro.core import (
    CacheStats,
    CorridorEngine,
    CorridorSpec,
    HftNetwork,
    LatencyModel,
    NetworkReconstructor,
    Route,
    network_from_yaml,
    network_to_yaml,
    reconstruct_all,
)
from repro.core.corridor import chicago_nj_corridor
from repro.geodesy import GeoPoint, geodesic_distance
from repro.metrics import (
    alternate_path_availability,
    rank_connected_networks,
    top_networks_per_path,
)
from repro.synth.scenario import Scenario, build_scenario, paper2020_scenario
from repro.uls import UlsDatabase, UlsPortal, UlsScraper

__version__ = "1.0.0"

__all__ = [
    "APA_SLACK_FACTOR",
    "FIBER_SPEED",
    "MAX_FIBER_TAIL_M",
    "MICROWAVE_SPEED",
    "SPEED_OF_LIGHT",
    "CacheStats",
    "CorridorEngine",
    "CorridorSpec",
    "HftNetwork",
    "LatencyModel",
    "NetworkReconstructor",
    "Route",
    "network_from_yaml",
    "network_to_yaml",
    "reconstruct_all",
    "chicago_nj_corridor",
    "GeoPoint",
    "geodesic_distance",
    "alternate_path_availability",
    "rank_connected_networks",
    "top_networks_per_path",
    "Scenario",
    "build_scenario",
    "paper2020_scenario",
    "UlsDatabase",
    "UlsPortal",
    "UlsScraper",
    "__version__",
]
