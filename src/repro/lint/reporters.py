"""Finding reporters: the human text format and the stable JSON schema.

The JSON schema is versioned and covered by a schema-stability test —
downstream tooling (CI annotations, dashboards) may rely on the exact key
set, so widening it requires a version bump, and narrowing it is a breaking
change.
"""

from __future__ import annotations

import json

from repro.lint.driver import LintResult

#: Version of the JSON report schema (bump on any key change).
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """The terminal report: one ``path:line:col: rule message`` per finding."""
    lines = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: {finding.rule}: {finding.message}"
        )
    if verbose:
        for finding in result.baselined:
            lines.append(
                f"{finding.location()}: {finding.rule}: {finding.message} "
                "[baselined]"
            )
    summary = (
        f"{len(result.findings)} finding(s) in {len(result.files)} file(s)"
        f" ({len(result.baselined)} baselined,"
        f" {result.suppressed} pragma-suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine report (schema v1, key set frozen by tests)."""
    document = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding.as_dict() for finding in result.findings],
        "baselined": [finding.as_dict() for finding in result.baselined],
        "summary": {
            "files": len(result.files),
            "rules": list(result.rules),
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "ok": result.ok,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)
