"""Per-file extraction: one parse → one JSON-serialisable ModuleSummary.

A :class:`ModuleSummary` is everything the whole-program stage needs to
know about one file — imports, module-level names, classes, and for every
function its call sites, name references and *direct* effects.  Summaries
are plain dict-of-scalars values on purpose: the on-disk findings cache
(:mod:`repro.lint.flow.cache`) stores them keyed by content hash, so a
warm lint rerun rebuilds the :class:`~repro.lint.flow.graph.ProgramGraph`
from cached summaries without re-parsing unchanged files.

Direct effect kinds extracted here (the effect lattice's generators; see
:mod:`repro.lint.flow.effects` for propagation):

``global-write``
    A store to (or mutating method call on) a module-level name — of this
    module via ``global``/attribute/subscript stores, or of another module
    through an imported-module alias (``engine_mod.KERNEL_DEFAULT = ...``).
``arg-mutate``
    A store to an attribute/subscript of a parameter (including ``self``),
    or a mutating method call on one.
``rng``
    Module-level ``random.*`` usage or an unseeded ``Random()``.
``clock``
    An absolute wall-clock read (``datetime.now``, ``time.time`` ...).
``timer``
    A process-timer read (``perf_counter``/``monotonic`` families).
``io``
    Filesystem or network access (``open``, ``Path.write_text``,
    ``urlopen``, ``socket.*`` ...).
``process``
    Spawning a worker process or pool.

The leaf vocabularies are shared with the per-file determinism/obs rules
so the two layers can never drift apart.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.lint.registry import dotted_name
from repro.lint.rules.determinism import (
    MODULE_RNG_FUNCTIONS,
    PROCESS_TIMER_SUFFIXES,
    WALL_CLOCK_SUFFIXES,
)
from repro.lint.rules.obs import _TIMER_SUFFIXES as TIMER_SUFFIXES

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "extendleft", "insert", "pop", "popitem", "remove", "reverse",
        "rotate", "setdefault", "sort", "update",
    }
)

#: Trailing attribute names whose call reads/writes the filesystem.
_IO_METHODS = frozenset(
    {
        "mkdir", "read_bytes", "read_text", "rmdir", "touch", "unlink",
        "write_bytes", "write_text",
    }
)

#: Dotted prefixes whose calls talk to the OS (network, files, spawning).
_IO_PREFIXES = ("socket.", "shutil.", "urllib.")
_PROCESS_PREFIXES = ("subprocess.", "multiprocessing.")
_PROCESS_CALLS = frozenset(
    {"Pool", "Popen", "ProcessPoolExecutor", "ThreadPoolExecutor"}
)
_PROCESS_OS = frozenset(
    {"os.fork", "os.forkpty", "os.posix_spawn", "os.spawnv", "os.system"}
)

#: String constants that could name an attribute looked up via getattr().
_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]{0,60}$")

#: The pseudo-function holding a module's import-time statements.
MODULE_BODY = "<module>"


@dataclass
class FunctionSummary:
    """One function's flow-relevant facts (JSON-roundtrippable)."""

    #: Qualified name inside the module: ``fn``, ``Class.fn``, ``<module>``.
    qual: str
    line: int
    #: Whether any decorator is attached (decorated functions are treated
    #: as externally reachable by the dead-code rule).
    decorated: bool = False
    params: list[str] = field(default_factory=list)
    #: Parameter/local type hints: name → dotted class name.
    annotations: dict[str, str] = field(default_factory=dict)
    #: Direct effects: ``[kind, detail, line]`` triples.
    effects: list[list] = field(default_factory=list)
    #: Call sites: ``[kind, *payload, line]`` (see module docstring).
    calls: list[list] = field(default_factory=list)
    #: Non-call references to non-local names: ``[kind, name, line]``.
    refs: list[list] = field(default_factory=list)
    #: Identifier-like string constants (getattr-style dispatch hints).
    strings: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "qual": self.qual,
            "line": self.line,
            "decorated": self.decorated,
            "params": self.params,
            "annotations": self.annotations,
            "effects": self.effects,
            "calls": self.calls,
            "refs": self.refs,
            "strings": self.strings,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        return cls(
            qual=data["qual"],
            line=int(data["line"]),
            decorated=bool(data.get("decorated", False)),
            params=list(data.get("params", [])),
            annotations=dict(data.get("annotations", {})),
            effects=[list(e) for e in data.get("effects", [])],
            calls=[list(c) for c in data.get("calls", [])],
            refs=[list(r) for r in data.get("refs", [])],
            strings=list(data.get("strings", [])),
        )


@dataclass
class ModuleSummary:
    """Everything the program graph needs to know about one module."""

    module: str
    path: str
    is_package: bool = False
    #: Import records: ``[target_module, from_name, local_alias, line]``
    #: (``from_name`` empty for plain ``import`` statements).
    imports: list[list] = field(default_factory=list)
    #: Module-level assigned names (the module's mutable global surface).
    module_names: list[str] = field(default_factory=list)
    #: Class name → {"line", "bases": [dotted], "methods": [names]}.
    classes: dict[str, dict] = field(default_factory=dict)
    functions: list[FunctionSummary] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "is_package": self.is_package,
            "imports": self.imports,
            "module_names": self.module_names,
            "classes": self.classes,
            "functions": [fn.to_dict() for fn in self.functions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            is_package=bool(data.get("is_package", False)),
            imports=[list(i) for i in data.get("imports", [])],
            module_names=list(data.get("module_names", [])),
            classes={
                name: dict(info)
                for name, info in data.get("classes", {}).items()
            },
            functions=[
                FunctionSummary.from_dict(fn)
                for fn in data.get("functions", [])
            ],
        )


# ----------------------------------------------------------------------
# Effect classification of one call
# ----------------------------------------------------------------------

def _suffix_match(dotted: str, suffix: str) -> bool:
    return dotted == suffix or dotted.endswith("." + suffix)


def classify_call_effects(node: ast.Call) -> list[tuple[str, str]]:
    """``(kind, detail)`` effects a single call expression triggers."""
    effects: list[tuple[str, str]] = []
    func = node.func
    dotted = dotted_name(func)
    if isinstance(func, ast.Name):
        if func.id == "open":
            effects.append(("io", "open"))
        if func.id in _PROCESS_CALLS:
            effects.append(("process", func.id))
        if func.id == "Random" and not node.args and not node.keywords:
            effects.append(("rng", "unseeded Random()"))
        return effects

    if dotted is None:
        return effects

    head = dotted.split(".", 1)[0]
    tail = dotted.rsplit(".", 1)[-1]
    if head == "random" and tail in MODULE_RNG_FUNCTIONS:
        effects.append(("rng", dotted))
    elif tail == "Random" and not node.args and not node.keywords:
        effects.append(("rng", "unseeded Random()"))

    for suffix in WALL_CLOCK_SUFFIXES:
        if _suffix_match(dotted, suffix):
            kind = "timer" if suffix in PROCESS_TIMER_SUFFIXES else "clock"
            effects.append((kind, dotted))
            break
    else:
        for suffix in TIMER_SUFFIXES:
            if _suffix_match(dotted, suffix):
                effects.append(("timer", dotted))
                break

    if (
        tail in _IO_METHODS
        or tail in ("urlopen", "urlretrieve")
        or any(dotted.startswith(prefix) for prefix in _IO_PREFIXES)
    ):
        effects.append(("io", dotted))
    if (
        tail in _PROCESS_CALLS
        or dotted in _PROCESS_OS
        or any(dotted.startswith(prefix) for prefix in _PROCESS_PREFIXES)
    ):
        effects.append(("process", dotted))
    return effects


# ----------------------------------------------------------------------
# Per-function extraction
# ----------------------------------------------------------------------

class _FunctionExtractor:
    """Walks one function body (nested defs included, attributed to the
    outer function — a closure's effects are its owner's effects)."""

    def __init__(
        self,
        summary: FunctionSummary,
        module: str,
        module_names: frozenset[str],
        module_aliases: dict[str, str],
        at_module_level: bool,
    ) -> None:
        self.out = summary
        self.module = module
        self.module_names = module_names
        #: local import alias → imported module fqn (for ``mod.X = ...``).
        self.module_aliases = module_aliases
        self.at_module_level = at_module_level
        self.globals_declared: set[str] = set()
        self.locals: set[str] = set(summary.params)
        #: Function-local import aliases (``from x import y as z`` inside
        #: the body) — same classification as module-level aliases.
        self.local_aliases: dict[str, str] = {}
        self._callee_nodes: set[int] = set()

    # -- scope discovery ------------------------------------------------

    def discover_scope(self, body: list[ast.stmt]) -> None:
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                self.locals.add(node.id)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                self.locals.add(node.name)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self.locals.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.local_aliases.setdefault(local, target)
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.local_aliases.setdefault(
                        local, f"{node.module}.{alias.name}"
                    )
        self.locals -= self.globals_declared

    # -- classification helpers ----------------------------------------

    def _base_kind(self, base: str) -> str:
        """How a receiver's base name resolves in this scope."""
        if base in self.out.params:
            return "param"
        if base in self.globals_declared:
            return "global"
        if base in self.locals:
            return "local"
        if base in self.local_aliases or base in self.module_aliases:
            return "module-alias"
        if base in self.module_names:
            return "module-name"
        return "unknown"

    def _effect(self, kind: str, detail: str, node: ast.AST) -> None:
        self.out.effects.append([kind, detail, getattr(node, "lineno", 0)])

    def _record_store(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store(element, node)
            return
        if isinstance(target, ast.Starred):
            self._record_store(target.value, node)
            return
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._effect(
                    "global-write", f"{self.module}.{target.id}", node
                )
            return
        # Attribute / subscript store: walk to the base name.
        dotted = None
        base_node = target
        while isinstance(base_node, (ast.Attribute, ast.Subscript)):
            if isinstance(base_node, ast.Attribute) and dotted is None:
                dotted = dotted_name(base_node)
            base_node = base_node.value
        if not isinstance(base_node, ast.Name):
            return
        base = base_node.id
        kind = self._base_kind(base)
        if kind == "param":
            self._effect("arg-mutate", base, node)
        elif kind in ("global", "module-name"):
            self._effect("global-write", f"{self.module}.{base}", node)
        elif kind == "module-alias":
            target_module = (
                self.local_aliases.get(base) or self.module_aliases[base]
            )
            attr = (
                dotted.split(".", 1)[1]
                if dotted and "." in dotted
                else dotted or base
            )
            self._effect("global-write", f"{target_module}.{attr}", node)
        elif kind == "unknown" and self.at_module_level:
            # Module body mutating a name it did not assign: treat as a
            # write to this module's namespace (e.g. conditional setup).
            self._effect("global-write", f"{self.module}.{base}", node)

    # -- the walk -------------------------------------------------------

    def walk(self, body: list[ast.stmt]) -> None:
        self.discover_scope(body)
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(node, ast.Call):
                self._visit_call(node)
            elif isinstance(node, ast.Import):
                # Importing executes the module body (side effects count).
                for alias in node.names:
                    self.out.calls.append(["module", alias.name, node.lineno])
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    self.out.calls.append(
                        ["module", node.module, node.lineno]
                    )
                    for alias in node.names:
                        if alias.name != "*":
                            self.out.calls.append(
                                [
                                    "module",
                                    f"{node.module}.{alias.name}",
                                    node.lineno,
                                ]
                            )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    self._record_store(target, node)
                if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    hint = (
                        dotted_name(node.annotation)
                        if node.annotation is not None
                        else None
                    )
                    if hint:
                        self.out.annotations[node.target.id] = hint
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._record_store(target, node)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if (
                    id(node) not in self._callee_nodes
                    and node.id not in self.locals
                    and node.id not in self.out.params
                ):
                    self.out.refs.append(["name", node.id, node.lineno])
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                if id(node) in self._callee_nodes:
                    continue
                dotted = dotted_name(node)
                if dotted is not None:
                    base = dotted.split(".", 1)[0]
                    parts = dotted.split(".")
                    if base in ("self", "cls") and len(parts) == 2:
                        # A bound method used as a value (callback):
                        # ``on_chunk=self._absorb`` keeps ``_absorb`` live
                        # and propagates its effects to the caller.
                        self.out.refs.append(
                            [base, parts[1], node.lineno]
                        )
                    elif base not in self.locals and base not in self.out.params:
                        self.out.refs.append(["dotted", dotted, node.lineno])
                    # Suppress the base Name node of this chain: the
                    # dotted ref subsumes it.
                    inner = node
                    while isinstance(inner, ast.Attribute):
                        inner = inner.value
                    self._callee_nodes.add(id(inner))
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                if _IDENTIFIER_RE.match(node.value):
                    self.out.strings.append(node.value)

    def _visit_call(self, node: ast.Call) -> None:
        func = node.func
        line = node.lineno
        for kind, detail in classify_call_effects(node):
            self._effect(kind, detail, node)

        if isinstance(func, ast.Name):
            self._callee_nodes.add(id(func))
            target = self.local_aliases.get(func.id)
            if target is not None:
                # Function-local import binds the name into ``locals``;
                # route the call through the imported target instead.
                self.out.calls.append(["dotted", target, line])
            elif func.id not in self.locals or func.id in self.out.params:
                self.out.calls.append(["name", func.id, line])
            return
        if not isinstance(func, ast.Attribute):
            return

        # Mark the whole attribute chain consumed so the reference pass
        # does not double-record the callee.
        inner: ast.AST = func
        while isinstance(inner, ast.Attribute):
            self._callee_nodes.add(id(inner))
            inner = inner.value
        self._callee_nodes.add(id(inner))

        dotted = dotted_name(func)
        method = func.attr
        if dotted is not None:
            parts = dotted.split(".")
            base = parts[0]
            if base == "self" and len(parts) == 2:
                self.out.calls.append(["self", method, line])
            elif base == "cls" and len(parts) == 2:
                self.out.calls.append(["cls", method, line])
            elif self._base_kind(base) in ("module-alias", "module-name"):
                # Rewrite through the alias so the graph resolves the
                # call even when the import is function-local.
                target = self.local_aliases.get(base) or self.module_aliases.get(base)
                if target and target != base:
                    dotted = target + dotted[len(base):]
                self.out.calls.append(["dotted", dotted, line])
            else:
                hint = self.out.annotations.get(base, "")
                self.out.calls.append(["attr", hint, method, line])
            if method in MUTATOR_METHODS and len(parts) == 2:
                kind = self._base_kind(base)
                if kind == "param":
                    self._effect("arg-mutate", base, node)
                elif kind in ("global", "module-name"):
                    self._effect(
                        "global-write", f"{self.module}.{base}", node
                    )
        elif (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            # ``super().m()``: resolve through the enclosing class's base
            # chain only — never the every-method-named-m fallback.
            self.out.calls.append(["super", method, line])
        else:
            # Call on a computed receiver: f().g(), a[0].h() ...
            self.out.calls.append(["attr", "", method, line])


# ----------------------------------------------------------------------
# Module-level extraction
# ----------------------------------------------------------------------

def _resolve_relative(module: str, is_package: bool, level: int) -> str:
    """The absolute package a ``from ...X import`` resolves against."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    return ".".join(parts)


def _extract_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qual: str,
    module: str,
    module_names: frozenset[str],
    module_aliases: dict[str, str],
) -> FunctionSummary:
    args = node.args
    params = [
        arg.arg
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *((args.vararg,) if args.vararg else ()),
            *((args.kwarg,) if args.kwarg else ()),
        )
    ]
    summary = FunctionSummary(
        qual=qual,
        line=node.lineno,
        decorated=bool(node.decorator_list),
        params=params,
    )
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.annotation is not None:
            hint = dotted_name(arg.annotation)
            if hint:
                summary.annotations[arg.arg] = hint
    extractor = _FunctionExtractor(
        summary, module, module_names, module_aliases, at_module_level=False
    )
    extractor.walk(node.body)
    # Decorator and default expressions run at def time (module level).
    return summary


def summarize_source(
    rel_path: str, module: str, tree: ast.Module
) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed file."""
    is_package = rel_path.endswith("/__init__.py") or rel_path == "__init__.py"
    out = ModuleSummary(module=module, path=rel_path, is_package=is_package)

    # Pass 1: module-level bindings (imports, assignments, defs).
    module_aliases: dict[str, str] = {}
    module_names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                out.imports.append([alias.name, "", local, node.lineno])
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module_aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = (
                node.module
                if node.level == 0
                else ".".join(
                    part
                    for part in (
                        _resolve_relative(module, is_package, node.level),
                        node.module or "",
                    )
                    if part
                )
            )
            if base is None:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                out.imports.append([base, alias.name, local, node.lineno])
                # Optimistically treat the imported name as addressable at
                # ``base.name``: if it is a module, attribute stores on it
                # are cross-module global writes; if it is a class, they
                # are class-attribute writes — module-level state either
                # way, and dotted calls through it resolve more precisely.
                if alias.name != "*":
                    module_aliases[local] = f"{base}.{alias.name}"
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for element in ast.walk(target):
                    if isinstance(element, ast.Name) and isinstance(
                        element.ctx, ast.Store
                    ):
                        module_names.add(element.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            module_names.add(node.name)

    out.module_names = sorted(module_names)
    frozen_names = frozenset(module_names)

    # Pass 2: functions, classes, and the <module> pseudo-function.
    module_body = FunctionSummary(qual=MODULE_BODY, line=1)
    module_extractor = _FunctionExtractor(
        module_body, module, frozen_names, module_aliases, at_module_level=True
    )
    module_statements: list[ast.stmt] = []

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.functions.append(
                _extract_function(
                    node, node.name, module, frozen_names, module_aliases
                )
            )
            module_statements.extend(node.decorator_list)  # type: ignore[arg-type]
        elif isinstance(node, ast.ClassDef):
            methods = []
            class_body: list[ast.stmt] = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    out.functions.append(
                        _extract_function(
                            item,
                            f"{node.name}.{item.name}",
                            module,
                            frozen_names,
                            module_aliases,
                        )
                    )
                    class_body.extend(item.decorator_list)  # type: ignore[arg-type]
                else:
                    class_body.append(item)
            out.classes[node.name] = {
                "line": node.lineno,
                "bases": sorted(
                    filter(None, (dotted_name(base) for base in node.bases))
                ),
                "methods": sorted(methods),
            }
            module_statements.extend(class_body)
            module_statements.extend(node.decorator_list)  # type: ignore[arg-type]
        else:
            module_statements.append(node)

    # Wrap loose expressions so the extractor sees proper statements.
    wrapped = [
        stmt if isinstance(stmt, ast.stmt) else ast.Expr(value=stmt)
        for stmt in module_statements
    ]
    module_extractor.walk(wrapped)
    out.functions.append(module_body)
    out.functions.sort(key=lambda fn: (fn.line, fn.qual))
    return out
