"""The ProgramGraph: project symbols, import graph, call graph, SCCs.

Built once per lint run from per-file :class:`ModuleSummary` values (fresh
parses or cache hits — the graph cannot tell the difference).  Resolution
is best-effort static analysis, deterministic by construction:

* bare-name calls resolve through the module's symbol table (own defs,
  then ``from``-imports with re-export chasing, then imported modules);
* dotted calls walk the module/package namespace, then class methods;
* ``self.m()``/``cls.m()`` resolve through the enclosing class and its
  project base classes;
* attribute calls on annotated receivers (``engine: CorridorEngine``)
  resolve through the annotation; unannotated receivers fall back to
  *every* project method of that name (class-hierarchy-analysis by name —
  an over-approximation, which is the safe direction for effect
  propagation and liveness);
* plain references (a function passed as a callback) create edges too, so
  ``executor.map(fn, ...)`` propagates ``fn``'s effects to the caller;
* identifier-like string constants keep same-named functions alive for
  the dead-code rule (``getattr``-style dispatch), but never carry
  effects.

Every adjacency list, SCC and traversal is sorted, so the rendered graph
is byte-identical across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.flow.summary import MODULE_BODY, ModuleSummary


def _component_public(part: str) -> bool:
    """A name component counts as public API surface.

    Dunders ride along: ``CorridorEngine.__init__`` is the constructor the
    outside world calls, not an implementation detail.
    """
    return not part.startswith("_") or (
        part.startswith("__") and part.endswith("__")
    )


@dataclass
class FunctionNode:
    """One function (or ``<module>`` body) in the program graph."""

    fqn: str
    module: str
    qual: str
    line: int
    decorated: bool
    #: Direct effects: ``(kind, detail, line)`` triples, sorted.
    effects: tuple[tuple[str, str, int], ...]

    @property
    def name(self) -> str:
        return self.qual.rsplit(".", 1)[-1]

    @property
    def is_module_body(self) -> bool:
        return self.qual == MODULE_BODY

    @property
    def is_public(self) -> bool:
        if self.is_module_body:
            return False
        return all(_component_public(part) for part in self.qual.split("."))

    @property
    def is_dunder(self) -> bool:
        name = self.name
        return name.startswith("__") and name.endswith("__")


@dataclass
class ClassNode:
    fqn: str
    module: str
    name: str
    line: int
    bases: tuple[str, ...]
    #: method name → function fqn.
    methods: dict[str, str] = field(default_factory=dict)


class ProgramGraph:
    """The resolved whole-program view (see module docstring)."""

    def __init__(self, summaries: dict[str, ModuleSummary]) -> None:
        #: module name → summary, in sorted-module order.
        self.summaries: dict[str, ModuleSummary] = {
            name: summaries[name] for name in sorted(summaries)
        }
        self.module_paths: dict[str, str] = {
            name: summary.path for name, summary in self.summaries.items()
        }
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassNode] = {}
        #: module → ((imported_module, line), ...) project-internal edges.
        self.module_imports: dict[str, tuple[tuple[str, int], ...]] = {}
        #: caller fqn → (callee fqn, ...) — call + reference edges.
        self.call_edges: dict[str, tuple[str, ...]] = {}
        #: liveness-only extra edges from identifier-like strings.
        self.string_edges: dict[str, tuple[str, ...]] = {}
        #: bare method name → (fqn, ...) across every project class.
        self.method_index: dict[str, tuple[str, ...]] = {}

        self._symbols: dict[str, dict[str, tuple[str, str]]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        self._collect_definitions()
        self._resolve_module_imports()
        self._build_symbol_tables()
        self._link_base_classes()
        self._resolve_edges()

    def _collect_definitions(self) -> None:
        method_index: dict[str, list[str]] = {}
        for module, summary in self.summaries.items():
            for cls_name, info in sorted(summary.classes.items()):
                cls_fqn = f"{module}.{cls_name}"
                self.classes[cls_fqn] = ClassNode(
                    fqn=cls_fqn,
                    module=module,
                    name=cls_name,
                    line=int(info.get("line", 1)),
                    bases=tuple(info.get("bases", ())),
                )
            for fn in summary.functions:
                fqn = f"{module}.{fn.qual}"
                self.functions[fqn] = FunctionNode(
                    fqn=fqn,
                    module=module,
                    qual=fn.qual,
                    line=fn.line,
                    decorated=fn.decorated,
                    effects=tuple(
                        sorted(
                            (str(k), str(d), int(ln))
                            for k, d, ln in fn.effects
                        )
                    ),
                )
                if "." in fn.qual:
                    cls_name, method = fn.qual.split(".", 1)
                    cls_fqn = f"{module}.{cls_name}"
                    if cls_fqn in self.classes:
                        self.classes[cls_fqn].methods[method] = fqn
                    method_index.setdefault(method, []).append(fqn)
        self.functions = {
            fqn: self.functions[fqn] for fqn in sorted(self.functions)
        }
        self.method_index = {
            name: tuple(sorted(fqns))
            for name, fqns in sorted(method_index.items())
        }

    def _resolve_module_imports(self) -> None:
        for module, summary in self.summaries.items():
            seen: dict[str, int] = {}
            for target, from_name, _alias, line in summary.imports:
                resolved = None
                if from_name and f"{target}.{from_name}" in self.summaries:
                    resolved = f"{target}.{from_name}"
                elif target in self.summaries:
                    resolved = target
                if resolved is not None and resolved != module:
                    seen.setdefault(resolved, int(line))
            self.module_imports[module] = tuple(
                (dep, seen[dep]) for dep in sorted(seen)
            )

    def _build_symbol_tables(self) -> None:
        """Per-module name → ("fn"|"cls"|"mod"|"reexport", payload)."""
        for module, summary in self.summaries.items():
            table: dict[str, tuple[str, str]] = {}
            for target, from_name, alias, _line in summary.imports:
                if not from_name:
                    # ``import a.b.c [as x]``: with an alias the local name
                    # is the full module; without, only the top package.
                    local = alias
                    bound = target if alias not in ("", target.split(".")[0]) \
                        else target.split(".")[0]
                    if alias == target.split(".")[0]:
                        bound = target.split(".")[0]
                    else:
                        bound = target
                    table[local] = ("mod", bound)
                else:
                    table[alias] = ("reexport", f"{target}:{from_name}")
            for cls_name in summary.classes:
                table[cls_name] = ("cls", f"{module}.{cls_name}")
            for fn in summary.functions:
                if "." not in fn.qual and fn.qual != MODULE_BODY:
                    table[fn.qual] = ("fn", f"{module}.{fn.qual}")
            self._symbols[module] = table

    def _link_base_classes(self) -> None:
        """Resolve class bases to project classes where possible."""
        self._class_bases: dict[str, tuple[str, ...]] = {}
        external: set[str] = set()
        for cls_fqn, cls in sorted(self.classes.items()):
            resolved = []
            for base in cls.bases:
                symbol = self._resolve_dotted_symbol(cls.module, base)
                if symbol is not None and symbol[0] == "cls":
                    resolved.append(symbol[1])
                else:
                    # An external base (HTMLParser, NamedTuple ...) may
                    # call overridden methods from outside the project.
                    external.add(cls_fqn)
            self._class_bases[cls_fqn] = tuple(resolved)
        #: Classes deriving from at least one non-project base.
        self.externally_derived: frozenset[str] = frozenset(external)

    # -- symbol resolution ---------------------------------------------

    def resolve_symbol(
        self, module: str, name: str, _seen: frozenset = frozenset()
    ) -> tuple[str, str] | None:
        """Resolve ``name`` in ``module`` to ("fn"|"cls"|"mod", fqn)."""
        if f"{module}.{name}" in self.summaries:
            # Importing a package binds its submodules as attributes.
            return ("mod", f"{module}.{name}")
        table = self._symbols.get(module)
        if table is None:
            return None
        entry = table.get(name)
        if entry is None:
            return None
        kind, payload = entry
        if kind != "reexport":
            return (kind, payload)
        target, attr = payload.split(":", 1)
        if f"{target}.{attr}" in self.summaries:
            return ("mod", f"{target}.{attr}")
        key = f"{target}:{attr}"
        if key in _seen:
            return None
        if target in self.summaries:
            return self.resolve_symbol(target, attr, _seen | {key})
        return None

    def _resolve_dotted_symbol(
        self, module: str, dotted: str
    ) -> tuple[str, str] | None:
        parts = dotted.split(".")
        symbol = self.resolve_symbol(module, parts[0])
        if symbol is None:
            # Absolute fallback: the summary layer rewrites calls through
            # import aliases to absolute dotted names (repro.core.engine.X),
            # which need no local binding — match the longest module prefix.
            for i in range(len(parts), 0, -1):
                prefix = ".".join(parts[:i])
                if prefix in self.summaries:
                    symbol = ("mod", prefix)
                    parts = parts[i - 1 :]  # loop below consumes parts[1:]
                    break
            else:
                return None
        for part in parts[1:]:
            if symbol is None:
                return None
            kind, payload = symbol
            if kind == "mod":
                symbol = self.resolve_symbol(payload, part)
            elif kind == "cls":
                method = self.classes[payload].methods.get(part)
                symbol = ("fn", method) if method else None
            else:
                return None
        return symbol

    def _lookup_method(self, cls_fqn: str, method: str) -> str | None:
        """Find ``method`` on ``cls_fqn`` or its project base chain."""
        seen: set[str] = set()
        stack = [cls_fqn]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            stack.extend(self._class_bases.get(current, ()))
        return None

    def _class_of(self, caller_fqn: str) -> str | None:
        node = self.functions[caller_fqn]
        if "." not in node.qual:
            return None
        return f"{node.module}.{node.qual.rsplit('.', 1)[0]}"

    def _symbol_targets(self, symbol: tuple[str, str] | None) -> list[str]:
        """Call targets a resolved symbol contributes."""
        if symbol is None:
            return []
        kind, payload = symbol
        if kind == "fn":
            return [payload] if payload in self.functions else []
        if kind == "cls":
            init = self.classes[payload].methods.get("__init__")
            if init is None:
                init = self._lookup_method(payload, "__init__")
            return [init] if init else []
        if kind == "mod":
            # Calling (or referencing) a module executes its body.
            body = f"{payload}.{MODULE_BODY}"
            return [body] if body in self.functions else []
        return []

    # -- edge resolution ------------------------------------------------

    def _resolve_edges(self) -> None:
        for module, summary in self.summaries.items():
            for fn in summary.functions:
                caller = f"{module}.{fn.qual}"
                targets: set[str] = set()
                strings: set[str] = set()

                for call in fn.calls:
                    kind = call[0]
                    if kind == "name":
                        symbol = self.resolve_symbol(module, call[1])
                        targets.update(self._symbol_targets(symbol))
                    elif kind == "dotted":
                        symbol = self._resolve_dotted_symbol(module, call[1])
                        targets.update(self._symbol_targets(symbol))
                    elif kind == "module":
                        body = f"{call[1]}.{MODULE_BODY}"
                        if body in self.functions:
                            targets.add(body)
                    elif kind == "super":
                        cls_fqn = self._class_of(caller)
                        resolved = None
                        if cls_fqn is not None:
                            for base in self._class_bases.get(cls_fqn, ()):
                                resolved = self._lookup_method(base, call[1])
                                if resolved is not None:
                                    break
                        if resolved is not None:
                            targets.add(resolved)
                    elif kind in ("self", "cls"):
                        cls_fqn = self._class_of(caller)
                        method = call[1]
                        resolved = (
                            self._lookup_method(cls_fqn, method)
                            if cls_fqn
                            else None
                        )
                        if resolved is not None:
                            targets.add(resolved)
                        else:
                            targets.update(self.method_index.get(method, ()))
                    elif kind == "attr":
                        hint, method = call[1], call[2]
                        resolved = None
                        if hint:
                            symbol = self._resolve_dotted_symbol(module, hint)
                            if symbol is not None and symbol[0] == "cls":
                                resolved = self._lookup_method(
                                    symbol[1], method
                                )
                        if resolved is not None:
                            targets.add(resolved)
                        else:
                            targets.update(self.method_index.get(method, ()))

                for ref in fn.refs:
                    if ref[0] in ("self", "cls"):
                        cls_fqn = self._class_of(caller)
                        resolved = (
                            self._lookup_method(cls_fqn, ref[1])
                            if cls_fqn
                            else None
                        )
                        if resolved is not None:
                            targets.add(resolved)
                        else:
                            targets.update(self.method_index.get(ref[1], ()))
                        continue
                    if ref[0] == "name":
                        symbol = self.resolve_symbol(module, ref[1])
                    else:
                        symbol = self._resolve_dotted_symbol(module, ref[1])
                    # Module references (import aliases in expressions) do
                    # not execute module bodies — only fn/cls refs count.
                    if symbol is not None and symbol[0] != "mod":
                        targets.update(self._symbol_targets(symbol))

                for text in fn.strings:
                    strings.update(self.method_index.get(text, ()))
                    symbol = self.resolve_symbol(module, text)
                    if symbol is not None and symbol[0] == "fn":
                        strings.update(self._symbol_targets(symbol))

                # A module body "calls" every module it imports (import
                # side effects run at import time).
                if fn.qual == MODULE_BODY:
                    for dep, _line in self.module_imports[module]:
                        body = f"{dep}.{MODULE_BODY}"
                        if body in self.functions:
                            targets.add(body)

                targets.discard(caller)
                self.call_edges[caller] = tuple(sorted(targets))
                self.string_edges[caller] = tuple(
                    sorted(strings - targets - {caller})
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def strongly_connected_components(self) -> list[tuple[str, ...]]:
        """Tarjan SCCs of the call graph, deterministically ordered."""
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[tuple[str, ...]] = []
        counter = [0]

        for root in self.functions:
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_i = work[-1]
                if edge_i == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                edges = self.call_edges.get(node, ())
                advanced = False
                for next_i in range(edge_i, len(edges)):
                    succ = edges[next_i]
                    if succ not in index:
                        work[-1] = (node, next_i + 1)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(tuple(sorted(component)))
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return sorted(components)

    def import_cycles(self) -> list[tuple[str, ...]]:
        """Module-level import cycles (SCCs of size > 1, or self-loops)."""
        edges = {
            module: tuple(dep for dep, _line in deps)
            for module, deps in self.module_imports.items()
        }
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        cycles: list[tuple[str, ...]] = []
        counter = [0]

        for root in sorted(edges):
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_i = work[-1]
                if edge_i == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                successors = edges.get(node, ())
                advanced = False
                for next_i in range(edge_i, len(successors)):
                    succ = successors[next_i]
                    if succ not in edges:
                        continue
                    if succ not in index:
                        work[-1] = (node, next_i + 1)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in edges.get(node, ()):
                        cycles.append(tuple(sorted(component)))
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return sorted(cycles)

    def reachable(
        self, roots: list[str], *, with_strings: bool = False
    ) -> set[str]:
        """Functions reachable from ``roots`` over call/ref edges."""
        seen: set[str] = set()
        queue = sorted(set(roots) & set(self.functions))
        while queue:
            node = queue.pop(0)
            if node in seen:
                continue
            seen.add(node)
            successors = list(self.call_edges.get(node, ()))
            if with_strings:
                successors.extend(self.string_edges.get(node, ()))
            for succ in successors:
                if succ not in seen:
                    queue.append(succ)
        return seen

    def shortest_chain(
        self, roots: list[str], target: str
    ) -> list[str] | None:
        """A shortest root → target call chain (BFS, deterministic)."""
        roots = sorted(set(roots) & set(self.functions))
        if target in roots:
            return [target]
        parent: dict[str, str] = {root: "" for root in roots}
        queue = list(roots)
        while queue:
            node = queue.pop(0)
            for succ in self.call_edges.get(node, ()):
                if succ in parent:
                    continue
                parent[succ] = node
                if succ == target:
                    chain = [succ]
                    while parent[chain[-1]]:
                        chain.append(parent[chain[-1]])
                    return list(reversed(chain))
                queue.append(succ)
        return None
