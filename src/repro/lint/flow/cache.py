"""The on-disk lint cache: content-hash keyed, JSON, atomic.

Warm ``hftnetview lint`` reruns should not re-parse a 100-file tree that
did not change.  The cache stores, per file and keyed by the sha256 of its
bytes:

* the raw (pre-suppression) per-file findings under the active
  rule/config fingerprint,
* the parsed pragma table (so suppression replays without tokenizing),
* the flow :class:`~repro.lint.flow.summary.ModuleSummary` (so the
  program graph rebuilds without re-parsing),
* for dead-code reference files, the identifier set.

Plus one whole-tree entry: the program-stage findings keyed by a
fingerprint over every flow/reference file digest, so a fully-warm run
skips the graph build outright.

Invalidation is pure content hashing — no mtimes, no clocks — so the
cache file itself is deterministic and the warm path returns byte-for-
byte the findings the cold path would compute.  A missing, corrupt or
version-skewed cache file degrades to a cold run, never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.flow.summary import ModuleSummary

#: Bump when the cached shapes change; skewed files are discarded whole.
CACHE_VERSION = 3


def digest_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def config_fingerprint(rule_names: list[str], config) -> str:
    """A stable key over everything that can change findings."""
    payload = {
        "rules": sorted(rule_names),
        "options": config.rule_options,
        "flow_roots": list(config.flow_roots()),
        "version": CACHE_VERSION,
    }
    return digest_text(json.dumps(payload, sort_keys=True, default=str))


def _finding_to_list(finding: Finding) -> list:
    return [
        finding.path, finding.line, finding.column,
        finding.rule, finding.message,
    ]


def _finding_from_list(raw: list) -> Finding:
    return Finding(
        path=str(raw[0]),
        line=int(raw[1]),
        column=int(raw[2]),
        rule=str(raw[3]),
        message=str(raw[4]),
    )


class FlowCache:
    """Load-once / save-once view of the cache file (see module docstring)."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._files: dict[str, dict] = {}
        self._program: dict = {}
        self._dirty = False
        self._load()

    # -- persistence ----------------------------------------------------

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("version") != CACHE_VERSION:
            return
        files = raw.get("files")
        program = raw.get("program")
        if isinstance(files, dict):
            self._files = files
        if isinstance(program, dict):
            self._program = program

    def save(self) -> None:
        """Atomically write the cache if anything changed."""
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "files": self._files,
            "program": self._program,
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            # A read-only tree is not a lint failure.
            try:
                tmp.unlink()
            except OSError:
                pass
        self._dirty = False

    def _entry(self, rel_path: str, digest: str) -> dict | None:
        entry = self._files.get(rel_path)
        if isinstance(entry, dict) and entry.get("digest") == digest:
            return entry
        return None

    def _fresh_entry(self, rel_path: str, digest: str) -> dict:
        entry = self._files.get(rel_path)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            entry = {"digest": digest}
            self._files[rel_path] = entry
        return entry

    # -- per-file findings + pragmas -------------------------------------

    def get_file_results(
        self, rel_path: str, digest: str, key: str
    ) -> tuple[list[Finding], dict[int, frozenset[str]]] | None:
        """Cached (raw findings, pragmas) or None on any mismatch."""
        entry = self._entry(rel_path, digest)
        if entry is None:
            return None
        findings = entry.get("findings", {}).get(key)
        pragmas = entry.get("pragmas")
        if findings is None or pragmas is None:
            return None
        try:
            return (
                [_finding_from_list(raw) for raw in findings],
                {
                    int(line): frozenset(rules)
                    for line, rules in pragmas.items()
                },
            )
        except (TypeError, ValueError, KeyError, IndexError):
            return None

    def put_file_results(
        self,
        rel_path: str,
        digest: str,
        key: str,
        findings: list[Finding],
        pragmas: dict[int, frozenset[str]],
    ) -> None:
        entry = self._fresh_entry(rel_path, digest)
        # One findings list per fingerprint would grow unboundedly as the
        # config evolves; keep only the active key.
        entry["findings"] = {
            key: [_finding_to_list(finding) for finding in findings]
        }
        entry["pragmas"] = {
            str(line): sorted(rules) for line, rules in pragmas.items()
        }
        self._dirty = True

    # -- flow summaries ---------------------------------------------------

    def get_summary(self, rel_path: str, digest: str) -> ModuleSummary | None:
        entry = self._entry(rel_path, digest)
        if entry is None or "summary" not in entry:
            return None
        try:
            return ModuleSummary.from_dict(entry["summary"])
        except (TypeError, ValueError, KeyError):
            return None

    def put_summary(
        self, rel_path: str, digest: str, summary: ModuleSummary
    ) -> None:
        entry = self._fresh_entry(rel_path, digest)
        entry["summary"] = summary.to_dict()
        self._dirty = True

    # -- dead-code reference identifiers ---------------------------------

    def get_identifiers(self, rel_path: str, digest: str) -> list[str] | None:
        entry = self._entry(rel_path, digest)
        if entry is None or "idents" not in entry:
            return None
        idents = entry["idents"]
        if isinstance(idents, list):
            return [str(name) for name in idents]
        return None

    def put_identifiers(
        self, rel_path: str, digest: str, names: list[str]
    ) -> None:
        entry = self._fresh_entry(rel_path, digest)
        entry["idents"] = sorted(set(names))
        self._dirty = True

    # -- whole-tree program findings --------------------------------------

    def get_program_findings(self, fingerprint: str) -> list[Finding] | None:
        if self._program.get("fingerprint") != fingerprint:
            return None
        findings = self._program.get("findings")
        if not isinstance(findings, list):
            return None
        try:
            return [_finding_from_list(raw) for raw in findings]
        except (TypeError, ValueError, IndexError):
            return None

    def put_program_findings(
        self, fingerprint: str, findings: list[Finding]
    ) -> None:
        self._program = {
            "fingerprint": fingerprint,
            "findings": [_finding_to_list(finding) for finding in findings],
        }
        self._dirty = True
