"""Transitive effect propagation over the condensed call graph.

Each function starts with the *direct* effects its body exhibits (the
generators extracted by :mod:`repro.lint.flow.summary`).  This module
closes them over the call graph: a function has an effect transitively if
any function it (transitively) calls or references has it directly.

The effect domain is a powerset lattice over ``EFFECT_KINDS`` origins, so
the fixpoint is a single reverse-topological union pass over the SCC
condensation — mutual recursion collapses into one component that shares
one effect set, and every component is visited exactly once after all its
callees.  All orders are sorted; the result is independent of hash
seeding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.flow.graph import ProgramGraph

#: The full effect vocabulary, sorted (see summary.py for definitions).
EFFECT_KINDS = (
    "arg-mutate",
    "clock",
    "global-write",
    "io",
    "process",
    "rng",
    "timer",
)

#: One effect origin: (leaf function fqn, detail, line in the leaf file).
Origin = tuple[str, str, int]


@dataclass
class EffectSummary:
    """Closed (direct + transitive) effects of one function."""

    fqn: str
    #: Effects this function's own body exhibits: (kind, detail, line).
    direct: tuple[tuple[str, str, int], ...] = ()
    #: kind → sorted origins across everything reachable (self included).
    transitive: dict[str, tuple[Origin, ...]] = field(default_factory=dict)

    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted(self.transitive))

    def direct_kinds(self) -> frozenset[str]:
        return frozenset(kind for kind, _detail, _line in self.direct)

    def origins(self, kind: str) -> tuple[Origin, ...]:
        return self.transitive.get(kind, ())

    def to_dict(self) -> dict:
        return {
            "direct": [list(effect) for effect in self.direct],
            "transitive": {
                kind: [list(origin) for origin in origins]
                for kind, origins in sorted(self.transitive.items())
            },
        }


def propagate_effects(graph: ProgramGraph) -> dict[str, EffectSummary]:
    """Fixpoint effect summaries for every function in ``graph``."""
    components = graph.strongly_connected_components()
    comp_of: dict[str, int] = {}
    for i, component in enumerate(components):
        for member in component:
            comp_of[member] = i

    successors: list[tuple[int, ...]] = []
    for i, component in enumerate(components):
        succ = {
            comp_of[callee]
            for member in component
            for callee in graph.call_edges.get(member, ())
        }
        succ.discard(i)
        successors.append(tuple(sorted(succ)))

    # Reverse-topological order of the condensation via iterative DFS
    # postorder (callees strictly before callers).
    order: list[int] = []
    visited = [False] * len(components)
    for start in range(len(components)):
        if visited[start]:
            continue
        stack: list[tuple[int, int]] = [(start, 0)]
        visited[start] = True
        while stack:
            comp, next_i = stack[-1]
            advanced = False
            for j in range(next_i, len(successors[comp])):
                succ = successors[comp][j]
                if not visited[succ]:
                    stack[-1] = (comp, j + 1)
                    stack.append((succ, 0))
                    visited[succ] = True
                    advanced = True
                    break
            if not advanced:
                order.append(comp)
                stack.pop()

    comp_effects: list[dict[str, frozenset[Origin]]] = [
        {} for _ in components
    ]
    for comp in order:
        merged: dict[str, set[Origin]] = {}
        for member in components[comp]:
            for kind, detail, line in graph.functions[member].effects:
                merged.setdefault(kind, set()).add((member, detail, line))
        for succ in successors[comp]:
            for kind, origins in comp_effects[succ].items():
                merged.setdefault(kind, set()).update(origins)
        comp_effects[comp] = {
            kind: frozenset(origins) for kind, origins in merged.items()
        }

    summaries: dict[str, EffectSummary] = {}
    for fqn, node in graph.functions.items():
        closed = comp_effects[comp_of[fqn]]
        summaries[fqn] = EffectSummary(
            fqn=fqn,
            direct=node.effects,
            transitive={
                kind: tuple(sorted(origins))
                for kind, origins in sorted(closed.items())
            },
        )
    return summaries
