"""The whole-program lint rules powered by the flow analysis.

Four rules, all :class:`~repro.lint.registry.ProgramRule` subclasses fed
one shared :class:`~repro.lint.flow.program.ProgramAnalysis` per run:

``shared-state``
    Functions reachable from a parallel worker entry or a CLI subcommand
    main must not write module-level state: workers run in forked/spawned
    children whose globals never flow back, and subcommands must compose
    in one process.  Deliberate globals (the obs session accumulator, the
    engine mode toggles) are allowlisted in configuration.
``transitive-determinism``
    A wall-clock read or unseeded RNG anywhere below a public function
    makes that function non-reproducible even though its own body is
    clean.  Flagged once, at the *minimal* public boundary — the per-file
    determinism rules already flag the leaf itself.
``layering``
    The import DAG must respect the architecture's tiers
    (constants/obs → geodesy → uls → core → … → cli) and contain no
    cycles.
``dead-code``
    Private functions unreachable from any public symbol, module body,
    decorated function, CLI entry, or test/benchmark reference are dead.

All traversals use the graph's sorted orders; findings come out sorted,
independent of hash seeding.
"""

from __future__ import annotations

import fnmatch

from repro.lint.findings import Finding
from repro.lint.flow.program import ProgramAnalysis
from repro.lint.registry import ProgramRule, register


def _matches_any(fqn: str, patterns: tuple[str, ...]) -> bool:
    return any(fnmatch.fnmatchcase(fqn, pattern) for pattern in patterns)


def shared_state_entry_points(analysis: ProgramAnalysis) -> list[str]:
    """Function fqns matching the configured worker/CLI root patterns."""
    patterns = analysis.config.shared_state_roots()
    return sorted(
        fqn
        for fqn in analysis.graph.functions
        if _matches_any(fqn, patterns)
    )


@register
class SharedStateRule(ProgramRule):
    """No module-global writes reachable from worker/CLI entry points."""

    name = "shared-state"
    description = (
        "module-global write reachable from a parallel worker or CLI "
        "entry: hidden cross-call state breaks worker isolation and "
        "subcommand composition; pass state explicitly"
    )

    def check_program(self, analysis: ProgramAnalysis) -> list[Finding]:
        graph = analysis.graph
        roots = shared_state_entry_points(analysis)
        if not roots:
            return []
        allowed = set(analysis.config.shared_state_allowed())
        reachable = graph.reachable(roots)
        findings: list[Finding] = []
        for fqn in sorted(reachable):
            node = graph.functions[fqn]
            if node.is_module_body:
                # Import-time initialisation defines globals; the rule
                # polices post-import mutation.
                continue
            for kind, detail, line in node.effects:
                if kind != "global-write" or detail in allowed:
                    continue
                chain = graph.shortest_chain(roots, fqn)
                entry = chain[0] if chain else roots[0]
                findings.append(
                    Finding(
                        path=analysis.rel_path_of(fqn),
                        line=line,
                        column=1,
                        rule=self.name,
                        message=(
                            f"{node.qual} writes module global "
                            f"'{detail}' and is reachable from entry "
                            f"point '{entry}'; pass the state explicitly "
                            "or allowlist it under "
                            "[tool.repro.lint.shared-state]"
                        ),
                    )
                )
        return sorted(findings)


#: Transitive effect kinds the determinism boundary rule polices (process
#: timers are the obs layer's business, filesystem IO the cache rules').
_DETERMINISM_KINDS = ("clock", "rng")

_KIND_VERB = {
    "clock": "reads the wall clock",
    "rng": "draws from an unseeded RNG",
}


@register
class TransitiveDeterminismRule(ProgramRule):
    """Clock/RNG effects surface at the public API boundary."""

    name = "transitive-determinism"
    description = (
        "public function transitively reads the wall clock or an "
        "unseeded RNG: callers cannot reproduce its output; thread the "
        "date/seed through parameters"
    )

    def check_program(self, analysis: ProgramAnalysis) -> list[Finding]:
        graph = analysis.graph
        effects = analysis.effects
        findings: list[Finding] = []
        for fqn, node in graph.functions.items():
            if not node.is_public:
                continue
            summary = effects[fqn]
            direct = summary.direct_kinds()
            for kind in _DETERMINISM_KINDS:
                origins = summary.origins(kind)
                if not origins or kind in direct:
                    # Leaf effects are the per-file rules' findings.
                    continue
                # Flag only the minimal public boundary: if a public
                # callee already carries the effect, it owns the finding.
                if any(
                    graph.functions[callee].is_public
                    and kind in effects[callee].transitive
                    for callee in graph.call_edges.get(fqn, ())
                ):
                    continue
                leaf, detail, _line = origins[0]
                more = len(origins) - 1
                via = f"via {leaf} ({detail})" + (
                    f" and {more} more site(s)" if more else ""
                )
                findings.append(
                    Finding(
                        path=analysis.rel_path_of(fqn),
                        line=node.line,
                        column=1,
                        rule=self.name,
                        message=(
                            f"public function {node.qual} transitively "
                            f"{_KIND_VERB[kind]} {via}; thread it through "
                            "parameters (chain: hftnetview lint graph "
                            f"--why {fqn})"
                        ),
                    )
                )
        return sorted(findings)


@register
class LayeringRule(ProgramRule):
    """The module import graph respects the tier order and is acyclic."""

    name = "layering"
    description = (
        "import against the layering (constants/obs -> geodesy -> uls -> "
        "core -> analyses -> cli) or an import cycle: lower tiers must "
        "not know about higher ones"
    )

    def _tier_of(
        self, module: str, layers: tuple[tuple[str, ...], ...]
    ) -> tuple[int, str] | None:
        best: tuple[int, str] | None = None
        for tier, entries in enumerate(layers):
            for entry in entries:
                if module == entry or module.startswith(entry + "."):
                    if best is None or len(entry) > len(best[1]):
                        best = (tier, entry)
        return best

    def check_program(self, analysis: ProgramAnalysis) -> list[Finding]:
        graph = analysis.graph
        layers = analysis.config.layering_layers()
        findings: list[Finding] = []
        for module in sorted(graph.module_imports):
            importer = self._tier_of(module, layers)
            if importer is None:
                continue
            for dep, line in graph.module_imports[module]:
                imported = self._tier_of(dep, layers)
                if imported is None:
                    continue
                if imported[0] > importer[0]:
                    findings.append(
                        Finding(
                            path=graph.module_paths.get(module, ""),
                            line=line,
                            column=1,
                            rule=self.name,
                            message=(
                                f"layering violation: {module} (tier "
                                f"{importer[0]}, {importer[1]}) imports "
                                f"{dep} (tier {imported[0]}, "
                                f"{imported[1]}); dependencies must "
                                "point at the same or a lower tier"
                            ),
                        )
                    )
        for cycle in graph.import_cycles():
            findings.append(
                Finding(
                    path=graph.module_paths.get(cycle[0], ""),
                    line=1,
                    column=1,
                    rule=self.name,
                    message=(
                        "import cycle: " + " -> ".join(cycle)
                        + " -> " + cycle[0]
                    ),
                )
            )
        return sorted(findings)


@register
class DeadCodeRule(ProgramRule):
    """Private functions must be reachable from something that runs."""

    name = "dead-code"
    description = (
        "private function unreachable from any public symbol, CLI entry, "
        "decorated function or test reference: dead code rots and hides "
        "behind coverage numbers"
    )

    def check_program(self, analysis: ProgramAnalysis) -> list[Finding]:
        graph = analysis.graph
        entry_patterns = analysis.config.shared_state_roots()
        roots: list[str] = []
        for fqn, node in graph.functions.items():
            if "." in node.qual and not node.is_module_body:
                cls_fqn = f"{node.module}.{node.qual.rsplit('.', 1)[0]}"
                # Overriding a method of an external base (HTMLParser's
                # handle_data ...) means the framework calls it.
                if cls_fqn in graph.externally_derived:
                    roots.append(fqn)
                    continue
            if (
                node.is_public
                or node.is_module_body
                or node.is_dunder
                or node.decorated
                or _matches_any(fqn, entry_patterns)
                or node.name in analysis.external_names
            ):
                roots.append(fqn)
        reachable = graph.reachable(roots, with_strings=True)
        findings: list[Finding] = []
        for fqn, node in graph.functions.items():
            if fqn in reachable:
                continue
            findings.append(
                Finding(
                    path=analysis.rel_path_of(fqn),
                    line=node.line,
                    column=1,
                    rule=self.name,
                    message=(
                        f"private function {node.qual} is unreachable "
                        "from any public symbol, CLI entry or test; "
                        "delete it or wire it in"
                    ),
                )
            )
        return sorted(findings)
