"""``repro.lint.flow`` — whole-program flow analysis under the linter.

The per-file rules of :mod:`repro.lint.rules` see one AST at a time; they
cannot know that ``analysis.funnel`` calls ``core.routing`` calls a
function that writes a module global.  This subpackage builds that missing
global view once per lint run:

* :mod:`~repro.lint.flow.summary` — a per-file, JSON-serialisable
  :class:`ModuleSummary`: imports, symbols, per-function call sites and
  *direct* effects (module-global writes, argument mutation, unseeded RNG,
  wall-clock/timer reads, filesystem/network IO, process spawns);
* :mod:`~repro.lint.flow.graph` — the :class:`ProgramGraph`: project
  symbol table, module import graph, function-level call graph, SCC
  condensation, reachability and chain explanation — all deterministically
  ordered so two runs (any ``PYTHONHASHSEED``) render byte-identically;
* :mod:`~repro.lint.flow.effects` — transitive effect propagation to a
  fixpoint over the condensed call graph, giving every function a closed
  effect summary;
* :mod:`~repro.lint.flow.rules` — the graph-powered lint rules
  (``shared-state``, ``transitive-determinism``, ``layering``,
  ``dead-code``) registered in the ordinary rule registry;
* :mod:`~repro.lint.flow.cache` — the content-hash keyed on-disk findings
  cache that lets warm ``hftnetview lint`` reruns skip unchanged files;
* :mod:`~repro.lint.flow.report` — the ``hftnetview lint graph`` renderers
  (text summary, stable JSON, ``--why`` reachability chains).

Entry point: :func:`build_program_analysis` (used by the lint driver's
program stage and the ``lint graph`` CLI).
"""

from repro.lint.flow.cache import FlowCache
from repro.lint.flow.effects import (
    EFFECT_KINDS,
    EffectSummary,
    propagate_effects,
)
from repro.lint.flow.graph import ProgramGraph
from repro.lint.flow.program import ProgramAnalysis, build_program_analysis
from repro.lint.flow.summary import ModuleSummary, summarize_source

__all__ = [
    "EFFECT_KINDS",
    "EffectSummary",
    "FlowCache",
    "ModuleSummary",
    "ProgramAnalysis",
    "ProgramGraph",
    "build_program_analysis",
    "propagate_effects",
    "summarize_source",
]
