"""Assemble the whole-program analysis one lint run (or CLI query) uses.

:func:`build_program_analysis` walks the configured flow roots, obtains a
:class:`ModuleSummary` per file (from the cache when content hashes match,
from a fresh parse otherwise, or handed in pre-built by the lint driver so
a cold ``lint`` run still parses each file exactly once), builds the
:class:`ProgramGraph`, closes effects over it, and scans the dead-code
reference paths (tests, benchmarks, scripts) for identifiers that keep
private functions alive.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.flow.cache import FlowCache, digest_text
from repro.lint.flow.effects import EffectSummary, propagate_effects
from repro.lint.flow.graph import ProgramGraph
from repro.lint.flow.summary import ModuleSummary, summarize_source

#: Tokens harvested from reference files (tests reach into internals by
#: name: ``from repro.core.engine import _collect``, ``getattr(m, "_fn")``).
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def module_name_for(root: str, rel_path: str) -> str | None:
    """Dotted module name of ``rel_path`` under flow root ``root``.

    The root must be a package directory; modules are named relative to
    its parent: ``src/repro`` + ``src/repro/core/engine.py`` →
    ``repro.core.engine``.
    """
    root = root.strip("/")
    prefix = root.rsplit("/", 1)[0]
    if not (rel_path == root + ".py" or rel_path.startswith(root + "/")):
        return None
    trimmed = rel_path[len(prefix) + 1 :] if prefix else rel_path
    if trimmed.endswith("/__init__.py"):
        trimmed = trimmed[: -len("/__init__.py")]
    elif trimmed.endswith(".py"):
        trimmed = trimmed[: -len(".py")]
    else:
        return None
    return trimmed.replace("/", ".")


def flow_files(config: LintConfig) -> list[tuple[Path, str, str]]:
    """Sorted ``(abs_path, rel_path, module)`` for every flow-root file."""
    out: list[tuple[Path, str, str]] = []
    seen: set[str] = set()
    for root in config.flow_roots():
        base = config.root / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(config.root).as_posix()
            module = module_name_for(root, rel)
            if module is None or rel in seen:
                continue
            seen.add(rel)
            out.append((path, rel, module))
    out.sort(key=lambda item: item[1])
    return out


def reference_files(config: LintConfig) -> list[tuple[Path, str]]:
    """Sorted ``(abs_path, rel_path)`` dead-code reference files."""
    out: list[tuple[Path, str]] = []
    for ref in config.dead_code_reference_paths():
        base = config.root / ref
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            continue
        for path in candidates:
            out.append((path, path.relative_to(config.root).as_posix()))
    out.sort(key=lambda item: item[1])
    return out


@dataclass
class ProgramAnalysis:
    """The whole-program view the graph rules and the CLI consume."""

    config: LintConfig
    graph: ProgramGraph
    #: fqn → closed effect summary.
    effects: dict[str, EffectSummary]
    #: Identifiers appearing in tests/benchmarks/scripts.
    external_names: frozenset[str] = frozenset()
    #: (rel_path, digest) per analysed file, for fingerprinting.
    file_digests: tuple[tuple[str, str], ...] = ()
    #: Files that failed to parse (rel paths) — analysed best-effort.
    unparsed: tuple[str, ...] = field(default_factory=tuple)

    def rel_path_of(self, fqn: str) -> str:
        node = self.graph.functions.get(fqn)
        if node is not None:
            return self.graph.module_paths.get(node.module, "")
        return self.graph.module_paths.get(fqn, "")

    def line_of(self, fqn: str) -> int:
        node = self.graph.functions.get(fqn)
        return node.line if node is not None else 1


def _summary_for(
    path: Path,
    rel: str,
    module: str,
    source: str,
    digest: str,
    cache: FlowCache | None,
) -> ModuleSummary | None:
    if cache is not None:
        cached = cache.get_summary(rel, digest)
        if cached is not None and cached.module == module:
            return cached
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    summary = summarize_source(rel, module, tree)
    if cache is not None:
        cache.put_summary(rel, digest, summary)
    return summary


def build_program_analysis(
    config: LintConfig,
    cache: FlowCache | None = None,
    summaries: dict[str, tuple[str, ModuleSummary]] | None = None,
) -> ProgramAnalysis:
    """Build the analysis for ``config``'s flow roots.

    ``summaries`` maps rel_path → (digest, summary) for files the caller
    already parsed this run (the lint driver's per-file stage); they are
    trusted as-is and recorded into the cache.
    """
    collected: dict[str, ModuleSummary] = {}
    digests: list[tuple[str, str]] = []
    unparsed: list[str] = []

    for path, rel, module in flow_files(config):
        prebuilt = summaries.get(rel) if summaries else None
        if prebuilt is not None:
            digest, summary = prebuilt
            if cache is not None and cache.get_summary(rel, digest) is None:
                cache.put_summary(rel, digest, summary)
        else:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError:
                continue
            digest = digest_text(source)
            summary = _summary_for(path, rel, module, source, digest, cache)
        digests.append((rel, digest))
        if summary is None:
            unparsed.append(rel)
            continue
        collected[module] = summary

    names: set[str] = set()
    for path, rel in reference_files(config):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            continue
        digest = digest_text(source)
        digests.append((rel, digest))
        cached = cache.get_identifiers(rel, digest) if cache else None
        if cached is not None:
            names.update(cached)
            continue
        found = sorted(set(_IDENT_RE.findall(source)))
        if cache is not None:
            cache.put_identifiers(rel, digest, found)
        names.update(found)

    graph = ProgramGraph(collected)
    effects = propagate_effects(graph)
    return ProgramAnalysis(
        config=config,
        graph=graph,
        effects=effects,
        external_names=frozenset(names),
        file_digests=tuple(sorted(digests)),
        unparsed=tuple(sorted(unparsed)),
    )


def tree_fingerprint(config: LintConfig, key: str) -> str:
    """Whole-tree fingerprint for the program-findings fast path.

    Hashes every flow-root and reference file's content digest together
    with the rule/config fingerprint ``key`` — computable by reading (not
    parsing) the tree, so a fully-warm run can skip the graph build.
    """
    digests: list[list[str]] = []
    for path, rel, _module in flow_files(config):
        try:
            digests.append([rel, digest_text(path.read_text(encoding="utf-8"))])
        except OSError:
            continue
    for path, rel in reference_files(config):
        try:
            digests.append([rel, digest_text(path.read_text(encoding="utf-8"))])
        except OSError:
            continue
    return digest_text(json.dumps([key, sorted(digests)], sort_keys=True))
