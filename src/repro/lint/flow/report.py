"""Renderers for ``hftnetview lint graph``.

Three views over one :class:`~repro.lint.flow.program.ProgramAnalysis`:

* a text summary (module/function/edge counts, layering cycles);
* a stable JSON document (``--format json``), byte-identical across runs
  and ``PYTHONHASHSEED`` values — the graph is already fully sorted, and
  rendering adds ``sort_keys`` on top;
* a ``--why MODULE.FN`` explanation: where the function is, what it does
  directly, what reaches it from the worker/CLI entry points, and how its
  transitive effects flow in.
"""

from __future__ import annotations

import json

from repro.lint.flow.program import ProgramAnalysis
from repro.lint.flow.rules import shared_state_entry_points

#: Bump when the JSON document shape changes.
GRAPH_SCHEMA_VERSION = 1


def graph_document(
    analysis: ProgramAnalysis, *, include_effects: bool = False
) -> dict:
    """The plain-dict form of the graph (sorted, JSON-ready)."""
    graph = analysis.graph
    modules = {
        module: {
            "path": graph.module_paths.get(module, ""),
            "imports": [
                [dep, line] for dep, line in graph.module_imports[module]
            ],
        }
        for module in graph.summaries
    }
    functions = {}
    for fqn, node in graph.functions.items():
        entry: dict = {
            "line": node.line,
            "public": node.is_public,
            "calls": list(graph.call_edges.get(fqn, ())),
        }
        if include_effects:
            entry["effects"] = analysis.effects[fqn].to_dict()
        functions[fqn] = entry
    sccs = [
        list(component)
        for component in graph.strongly_connected_components()
        if len(component) > 1
    ]
    document = {
        "schema": GRAPH_SCHEMA_VERSION,
        "counts": {
            "modules": len(modules),
            "functions": len(functions),
            "call_edges": sum(
                len(edges) for edges in graph.call_edges.values()
            ),
            "import_edges": sum(
                len(deps) for deps in graph.module_imports.values()
            ),
        },
        "modules": modules,
        "functions": functions,
        "recursive_components": sccs,
        "import_cycles": [list(cycle) for cycle in graph.import_cycles()],
    }
    if analysis.unparsed:
        document["unparsed"] = list(analysis.unparsed)
    return document


def render_graph_json(
    analysis: ProgramAnalysis, *, include_effects: bool = False
) -> str:
    return json.dumps(
        graph_document(analysis, include_effects=include_effects),
        indent=2,
        sort_keys=True,
    )


def render_graph_text(analysis: ProgramAnalysis) -> str:
    document = graph_document(analysis)
    counts = document["counts"]
    lines = [
        "program graph:",
        f"  modules:       {counts['modules']}",
        f"  functions:     {counts['functions']}",
        f"  call edges:    {counts['call_edges']}",
        f"  import edges:  {counts['import_edges']}",
        f"  recursive components: {len(document['recursive_components'])}",
    ]
    cycles = document["import_cycles"]
    if cycles:
        lines.append(f"  import cycles: {len(cycles)}")
        for cycle in cycles:
            lines.append("    " + " -> ".join([*cycle, cycle[0]]))
    else:
        lines.append("  import cycles: 0")
    if analysis.unparsed:
        lines.append(f"  unparsed files: {len(analysis.unparsed)}")
        for rel in analysis.unparsed:
            lines.append(f"    {rel}")
    return "\n".join(lines)


def resolve_function(analysis: ProgramAnalysis, name: str) -> str | None:
    """Resolve a (possibly partial) function name to a graph fqn."""
    functions = analysis.graph.functions
    if name in functions:
        return name
    suffix = [
        fqn
        for fqn in functions
        if fqn.endswith("." + name)
    ]
    if len(suffix) == 1:
        return suffix[0]
    return None


def render_why(analysis: ProgramAnalysis, name: str) -> str:
    """Explain one function: location, effects, and how they arrive."""
    fqn = resolve_function(analysis, name)
    if fqn is None:
        candidates = [
            other
            for other in analysis.graph.functions
            if name in other
        ]
        lines = [f"unknown function: {name}"]
        for candidate in candidates[:10]:
            lines.append(f"  did you mean {candidate}?")
        return "\n".join(lines)

    graph = analysis.graph
    node = graph.functions[fqn]
    summary = analysis.effects[fqn]
    lines = [
        f"{fqn}",
        f"  defined:  {analysis.rel_path_of(fqn)}:{node.line}",
        f"  public:   {'yes' if node.is_public else 'no'}",
    ]

    if summary.direct:
        lines.append("  direct effects:")
        for kind, detail, line in summary.direct:
            lines.append(f"    {kind}: {detail} (line {line})")
    else:
        lines.append("  direct effects: none")

    transitive_only = {
        kind: origins
        for kind, origins in summary.transitive.items()
        if kind not in summary.direct_kinds()
    }
    if transitive_only:
        lines.append("  transitive effects:")
        for kind in sorted(transitive_only):
            for leaf, detail, line in transitive_only[kind][:3]:
                chain = graph.shortest_chain([fqn], leaf)
                shown = " -> ".join(chain) if chain else f"{fqn} -> {leaf}"
                lines.append(f"    {kind}: {detail} (line {line})")
                lines.append(f"      {shown}")
            extra = len(transitive_only[kind]) - 3
            if extra > 0:
                lines.append(f"      ... and {extra} more {kind} origin(s)")
    else:
        lines.append("  transitive effects: none beyond direct")

    entries = shared_state_entry_points(analysis)
    chain = graph.shortest_chain(entries, fqn)
    if chain:
        lines.append("  reachable from entry point:")
        lines.append("    " + " -> ".join(chain))
    else:
        lines.append("  not reachable from any worker/CLI entry point")
    return "\n".join(lines)
