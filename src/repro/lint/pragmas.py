"""Inline suppression pragmas: ``# lint: disable=rule-a,rule-b``.

A pragma suppresses findings of the named rules **on its own line**; a
pragma in a comment-only line (optionally continued by further comment
lines of justification) covers the comment block **and the first code line
after it**.  ``all`` suppresses every rule.  Trailing prose after the rule
list is encouraged as justification::

    if direct == 0.0:  # lint: disable=float-eq (exact sentinel)

    # lint: disable=float-eq (geodesic_inverse returns exactly 0.0 for
    # coincident endpoints; a sentinel, not a computed distance)
    if direct == 0.0:

Pragmas are parsed with :mod:`tokenize` so strings that merely *contain*
pragma-looking text never suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize

#: Rule-name tokens are kebab-case identifiers; anything after the first
#: non-name character of a comma-part is justification prose.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=(?P<rules>[^#]*)")
_NAME_RE = re.compile(r"[A-Za-z0-9_\-]+")


class PragmaError(ValueError):
    """A malformed pragma (empty rule list)."""


def _parse_rule_list(raw: str) -> frozenset[str]:
    names = []
    for part in raw.split(","):
        match = _NAME_RE.match(part.strip())
        if match:
            names.append(match.group(0).lower())
    if not names:
        raise PragmaError("pragma has an empty rule list")
    return frozenset(names)


def parse_pragmas(source: str) -> dict[int, frozenset[str]]:
    """Line number → suppressed rule names for one file's source.

    Comment-only lines apply to the next line as well, so a pragma can sit
    above the statement it suppresses.  Unreadable sources (tokenize
    errors) yield no pragmas — the driver will surface the syntax error.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}

    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        rules = _parse_rule_list(match.group("rules"))
        line = token.start[0]
        suppressions.setdefault(line, set()).update(rules)
        prefix = lines[line - 1][: token.start[1]]
        if prefix.strip() != "":
            continue  # trailing comment: same-line suppression only
        # A comment-only pragma (plus any continuation comment lines)
        # covers the whole block and the first code line after it.
        cursor = line + 1
        while cursor <= len(lines) and lines[cursor - 1].strip().startswith("#"):
            suppressions.setdefault(cursor, set()).update(rules)
            cursor += 1
        if cursor <= len(lines):
            suppressions.setdefault(cursor, set()).update(rules)

    return {line: frozenset(rules) for line, rules in suppressions.items()}


def is_suppressed(
    rule: str, line: int, pragmas: dict[int, frozenset[str]]
) -> bool:
    """Whether ``rule`` is pragma-suppressed at ``line``."""
    rules = pragmas.get(line)
    if not rules:
        return False
    return "all" in rules or rule in rules
