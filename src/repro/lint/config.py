"""Lint configuration: defaults, and the ``[tool.repro.lint]`` overlay.

The linter is usable with zero configuration — every default below matches
this repository's layout — but each knob is overridable from
``pyproject.toml`` so the tool survives refactors without code changes::

    [tool.repro.lint]
    enable = ["determinism-hash-seed", ...]   # default: all registered
    baseline = "lint-baseline.json"
    default_paths = ["src/repro"]

    [tool.repro.lint.float-eq]
    paths = ["src/repro/geodesy/", "src/repro/core/latency.py"]

    [tool.repro.lint.cache-discipline]
    allowed = ["src/repro/core/engine.py"]

    [tool.repro.lint.unit-suffix]
    groups = [["_m", "_km"], ["_s", "_ms", "_us"]]

Rule sections are keyed by rule name; unknown keys raise so typos cannot
silently disable enforcement.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

#: Paths linted when the CLI is given none.
DEFAULT_PATHS = ("src/repro",)

#: Default committed-baseline location, relative to the project root.
DEFAULT_BASELINE = "lint-baseline.json"

#: Where the float-eq rule applies (project-root-relative prefixes).
DEFAULT_FLOAT_EQ_PATHS = (
    "src/repro/geodesy/",
    "src/repro/core/latency.py",
    "src/repro/metrics/",
)

#: Files allowed to construct the cache-free reconstruction kernel.
DEFAULT_CACHE_ALLOWED = (
    "src/repro/core/engine.py",
    "src/repro/core/reconstruction.py",
)

#: Path prefixes allowed to touch the persistent store's on-disk layout
#: directly (:mod:`repro.store.layout`'s entry read/write/quarantine
#: functions).  Everything else goes through ``CacheStore`` — a second
#: code path reading or writing entry files would bypass the atomic
#: publication and quarantine discipline.
DEFAULT_STORE_ALLOWED = (
    "src/repro/store/",
)

#: Path prefixes allowed to call ``UlsDatabase.active_on`` (a linear scan
#: that materialises the license list); everything else resolves active
#: sets through the temporal index or the engine.
DEFAULT_ACTIVE_ON_ALLOWED = (
    "src/repro/uls/",
    "src/repro/core/engine.py",
)

#: Path prefixes allowed to construct a ``ColumnarLicenseStore`` directly.
#: Stores are per-database-generation derived state; building one anywhere
#: else risks stale columns after a mutation — everything outside the uls
#: layer obtains the cached store via ``UlsDatabase.columnar_store()``
#: (the engine constructs ephemeral stores for explicit license sets).
DEFAULT_COLUMNAR_ALLOWED = (
    "src/repro/uls/",
    "src/repro/core/engine.py",
)

#: Unit-suffix vocabulary: suffixes within one group share a dimension and
#: must not be mixed in a single additive expression or comparison.
DEFAULT_UNIT_GROUPS = (
    ("_m", "_km"),
    ("_s", "_ms", "_us"),
)

#: Path prefixes allowed to read process timers directly; everything else
#: must time through ``repro.obs`` spans.  The load generator measures
#: client-observed latency — wall time is its product, like benchmarks.
DEFAULT_OBS_ALLOWED = (
    "src/repro/obs/",
    "benchmarks/",
    "src/repro/serve/loadgen.py",
)

#: Path prefixes allowed to construct pools/processes directly; everything
#: else must fan out through ``repro.parallel``.
DEFAULT_PARALLEL_ALLOWED = (
    "src/repro/parallel/",
)

#: Source roots the whole-program flow analysis parses.  Modules are named
#: by their path relative to each root's *parent* (``src/repro/core``
#: → ``repro.core``), so roots must be package directories.
DEFAULT_FLOW_ROOTS = ("src/repro",)

#: On-disk findings/summary cache written by the CLI (root-relative).
DEFAULT_FLOW_CACHE = ".lint-cache.json"

#: fnmatch patterns (over function fqns) naming the entry points whose
#: reachable set must not mutate module-level state: the parallel worker
#: entries (each runs in a forked/spawned child whose module globals are
#: invisible to the parent and to sibling workers) and the CLI subcommand
#: mains (each must be runnable in any order, in one process).
DEFAULT_SHARED_STATE_ROOTS = (
    "repro.parallel.executor._worker_init",
    "repro.parallel.executor._run_chunk_in_worker",
    "repro.parallel.grid._grid_task",
    "repro.parallel.grid._build_worker_state",
    "repro.parallel.grid._install_seeds",
    "repro.cli.main",
    "repro.cli._cmd_*",
)

#: Module globals whose mutation is deliberate and worker-safe:
#: the obs session accumulator (reset per process, reduced explicitly),
#: the engine's process-wide mode toggles (written only by CLI flag
#: handling before any work runs), the geodesy memo scope handle and the
#: per-worker context slot (written once in the worker initializer).
DEFAULT_SHARED_STATE_ALLOWED = (
    "repro.core.engine.INCREMENTAL_DEFAULT",
    "repro.core.engine.KERNEL_DEFAULT",
    "repro.core.engine.STORE_DEFAULT",
    "repro.geodesy.memo._active_memo",
    "repro.lint.registry._REGISTRY",
    "repro.obs.spans._STATE",
    "repro.parallel.executor._WORKER_CONTEXT",
    "repro.scenarios.registry._REGISTRY",
    "repro.serve.server._ACTIVE_SERVER",
)

#: The import layering, lowest tier first.  A module may import same-tier
#: or lower-tier modules; importing upward is a finding.  Modules matching
#: no entry (``repro.parallel``, ``repro.lint``, the ``repro`` package
#: itself) are untiered: they may be imported from anywhere and the rule
#: stays silent about their own imports.
DEFAULT_LAYERS = (
    ("repro.constants", "repro.obs"),
    ("repro.geodesy",),
    ("repro.uls",),
    ("repro.core",),
    ("repro.store",),
    ("repro.leo", "repro.radio", "repro.synth"),
    ("repro.scenarios",),
    ("repro.metrics",),
    ("repro.viz",),
    ("repro.analysis", "repro.design"),
    ("repro.serve",),
    ("repro.cli", "repro.__main__"),
)

#: Root-relative paths scanned for identifiers that keep private
#: functions alive (tests and benchmarks reach into internals by name).
DEFAULT_DEAD_CODE_REFERENCES = ("tests", "benchmarks", "scripts")

_KNOWN_TOP_KEYS = {"enable", "baseline", "default_paths"}


class LintConfigError(ValueError):
    """Raised for malformed ``[tool.repro.lint]`` sections."""


@dataclass(frozen=True)
class LintConfig:
    """The resolved configuration one lint run operates under."""

    #: Project root every relative path (findings, baseline) hangs off.
    root: Path
    #: Rule names to run (None = every registered rule).
    enabled: tuple[str, ...] | None = None
    #: Baseline file path, relative to ``root``.
    baseline_path: str = DEFAULT_BASELINE
    #: Paths linted when the caller passes none.
    default_paths: tuple[str, ...] = DEFAULT_PATHS
    #: Per-rule option tables (rule name → options dict).
    rule_options: dict = field(default_factory=dict)

    def options_for(self, rule_name: str) -> dict:
        return self.rule_options.get(rule_name, {})

    def float_eq_paths(self) -> tuple[str, ...]:
        paths = self.options_for("float-eq").get("paths")
        return tuple(paths) if paths is not None else DEFAULT_FLOAT_EQ_PATHS

    def cache_allowed_files(self) -> tuple[str, ...]:
        allowed = self.options_for("cache-discipline").get("allowed")
        return tuple(allowed) if allowed is not None else DEFAULT_CACHE_ALLOWED

    def active_on_allowed_paths(self) -> tuple[str, ...]:
        allowed = self.options_for("cache-discipline").get("active_on_allowed")
        return tuple(allowed) if allowed is not None else DEFAULT_ACTIVE_ON_ALLOWED

    def columnar_allowed_paths(self) -> tuple[str, ...]:
        allowed = self.options_for("cache-discipline").get("columnar_allowed")
        return tuple(allowed) if allowed is not None else DEFAULT_COLUMNAR_ALLOWED

    def store_allowed_paths(self) -> tuple[str, ...]:
        allowed = self.options_for("cache-discipline").get("store_allowed")
        return tuple(allowed) if allowed is not None else DEFAULT_STORE_ALLOWED

    def unit_groups(self) -> tuple[tuple[str, ...], ...]:
        groups = self.options_for("unit-suffix").get("groups")
        if groups is None:
            return DEFAULT_UNIT_GROUPS
        return tuple(tuple(group) for group in groups)

    def obs_allowed_paths(self) -> tuple[str, ...]:
        allowed = self.options_for("obs-discipline").get("allowed")
        return tuple(allowed) if allowed is not None else DEFAULT_OBS_ALLOWED

    def parallel_allowed_paths(self) -> tuple[str, ...]:
        allowed = self.options_for("parallel-discipline").get("allowed")
        return tuple(allowed) if allowed is not None else DEFAULT_PARALLEL_ALLOWED

    def flow_roots(self) -> tuple[str, ...]:
        roots = self.options_for("flow").get("roots")
        return tuple(roots) if roots is not None else DEFAULT_FLOW_ROOTS

    def flow_cache_path(self) -> str:
        path = self.options_for("flow").get("cache")
        return str(path) if path is not None else DEFAULT_FLOW_CACHE

    def shared_state_roots(self) -> tuple[str, ...]:
        roots = self.options_for("shared-state").get("roots")
        return tuple(roots) if roots is not None else DEFAULT_SHARED_STATE_ROOTS

    def shared_state_allowed(self) -> tuple[str, ...]:
        allowed = self.options_for("shared-state").get("allowed")
        return (
            tuple(allowed) if allowed is not None else DEFAULT_SHARED_STATE_ALLOWED
        )

    def layering_layers(self) -> tuple[tuple[str, ...], ...]:
        layers = self.options_for("layering").get("layers")
        if layers is None:
            return DEFAULT_LAYERS
        return tuple(tuple(layer) for layer in layers)

    def dead_code_reference_paths(self) -> tuple[str, ...]:
        paths = self.options_for("dead-code").get("references")
        return (
            tuple(paths) if paths is not None else DEFAULT_DEAD_CODE_REFERENCES
        )


def find_project_root(start: Path | None = None) -> Path:
    """The nearest ancestor of ``start`` holding a pyproject.toml (or .git).

    Falls back to ``start`` itself so the linter still runs on loose trees.
    """
    current = (start or Path.cwd()).resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file() or (candidate / ".git").exists():
            return candidate
    return current


def load_config(
    root: Path | None = None, pyproject: Path | None = None
) -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.repro.lint]`` (if present).

    ``pyproject`` overrides the file location (for tests); by default the
    root's ``pyproject.toml`` is consulted and an absent file or section
    yields the pure-default configuration.
    """
    root = (root or find_project_root()).resolve()
    source = pyproject if pyproject is not None else root / "pyproject.toml"
    table: dict = {}
    if source.is_file():
        with open(source, "rb") as handle:
            document = tomllib.load(handle)
        table = document.get("tool", {}).get("repro", {}).get("lint", {})
        if not isinstance(table, dict):
            raise LintConfigError("[tool.repro.lint] must be a table")

    enabled = table.get("enable")
    if enabled is not None:
        if not isinstance(enabled, list) or not all(
            isinstance(name, str) for name in enabled
        ):
            raise LintConfigError("[tool.repro.lint] enable must be a string list")
        enabled = tuple(enabled)

    baseline = table.get("baseline", DEFAULT_BASELINE)
    if not isinstance(baseline, str):
        raise LintConfigError("[tool.repro.lint] baseline must be a string")

    default_paths = table.get("default_paths")
    if default_paths is None:
        default_paths = DEFAULT_PATHS
    elif isinstance(default_paths, list) and all(
        isinstance(path, str) for path in default_paths
    ):
        default_paths = tuple(default_paths)
    else:
        raise LintConfigError(
            "[tool.repro.lint] default_paths must be a string list"
        )

    rule_options = {
        key: value
        for key, value in table.items()
        if key not in _KNOWN_TOP_KEYS and isinstance(value, dict)
    }
    unknown = {
        key
        for key, value in table.items()
        if key not in _KNOWN_TOP_KEYS and not isinstance(value, dict)
    }
    if unknown:
        raise LintConfigError(
            f"unknown [tool.repro.lint] keys: {sorted(unknown)}"
        )

    return LintConfig(
        root=root,
        enabled=enabled,
        baseline_path=baseline,
        default_paths=tuple(default_paths),
        rule_options=rule_options,
    )
