"""The per-file visitor driver: parse once, walk once, dispatch to rules.

``lint_paths`` is the subsystem's single entry point: it expands files and
directories, runs every enabled rule over each file's AST in one walk,
applies inline pragmas and the committed baseline, and returns a
:class:`LintResult` the reporters and the CLI consume.

Unparseable files are themselves findings (rule ``syntax-error``) rather
than crashes: a linter that dies on the file it should be flagging is
useless in CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.baseline import Baseline, load_baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.findings import Finding
from repro.lint.pragmas import is_suppressed, parse_pragmas
from repro.lint.registry import FileContext, Rule, instantiate

#: The pseudo-rule name attached to unparseable files.  Not suppressible
#: via pragmas (a broken file cannot be trusted to parse its own pragmas).
SYNTAX_RULE = "syntax-error"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: Findings not covered by pragma or baseline — these fail the run.
    findings: list[Finding]
    #: Findings matched by the committed baseline (reported, non-fatal).
    baselined: list[Finding]
    #: Count of pragma-suppressed findings (for the summary line).
    suppressed: int
    #: Files actually linted (root-relative).
    files: list[str] = field(default_factory=list)
    #: Rule names that ran.
    rules: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into an ordered, de-duplicated .py list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = (path,)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(resolved)
    return ordered


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def _raw_findings(
    path: Path,
    rel: str,
    source: str,
    rules: Sequence[Rule],
    config: LintConfig,
) -> list[Finding]:
    """Pre-suppression findings for one file (one parse, one walk)."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [
            Finding(
                path=rel,
                line=error.lineno or 1,
                column=error.offset or 1,
                rule=SYNTAX_RULE,
                message=f"file does not parse: {error.msg}",
            )
        ]

    active = [rule for rule in rules if rule.applies_to(rel, config)]
    if not active:
        return []
    ctx = FileContext(
        rel_path=rel,
        abs_path=path,
        source_lines=source.splitlines(),
        config=config,
    )
    dispatch: dict[type, list[Rule]] = {}
    for rule in active:
        rule.begin_file(ctx)
        for node_type in rule.interests:
            dispatch.setdefault(node_type, []).append(rule)
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            rule.visit(node, ctx)
    for rule in active:
        rule.end_file(ctx)
    return sorted(ctx.findings)


def lint_file(
    path: Path, rules: Sequence[Rule], config: LintConfig
) -> list[Finding]:
    """Findings for one file after pragma suppression (no baseline)."""
    path = Path(path)
    rel = _rel_path(path, config.root)
    source = path.read_text(encoding="utf-8")
    pragmas = parse_pragmas(source)
    return [
        finding
        for finding in _raw_findings(path, rel, source, rules, config)
        if finding.rule == SYNTAX_RULE
        or not is_suppressed(finding.rule, finding.line, pragmas)
    ]


def lint_paths(
    paths: Sequence[Path | str] | None = None,
    *,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
    use_baseline: bool = True,
) -> LintResult:
    """Lint ``paths`` (default: the configured default paths).

    ``baseline=None`` with ``use_baseline=True`` loads the configured
    baseline file; pass ``use_baseline=False`` to see every finding
    (the CLI's ``--no-baseline``).
    """
    config = config or load_config()
    if paths is None:
        paths = [config.root / p for p in config.default_paths]
    files = iter_python_files([Path(p) for p in paths])
    rules = instantiate(config.enabled)

    all_findings: list[Finding] = []
    suppressed = 0
    for path in files:
        rel = _rel_path(path, config.root)
        source = path.read_text(encoding="utf-8")
        pragmas = parse_pragmas(source)
        for finding in _raw_findings(path, rel, source, rules, config):
            if finding.rule != SYNTAX_RULE and is_suppressed(
                finding.rule, finding.line, pragmas
            ):
                suppressed += 1
            else:
                all_findings.append(finding)

    if baseline is None:
        baseline = (
            load_baseline(config.root / config.baseline_path)
            if use_baseline
            else Baseline.empty()
        )
    fresh, grandfathered = baseline.split(sorted(all_findings))
    return LintResult(
        findings=fresh,
        baselined=grandfathered,
        suppressed=suppressed,
        files=[_rel_path(path, config.root) for path in files],
        rules=[rule.name for rule in rules],
    )
