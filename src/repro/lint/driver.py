"""The lint driver: parse once, walk once, dispatch to rules.

``lint_paths`` is the subsystem's single entry point: it expands files and
directories, runs every enabled per-file rule over each file's AST in one
walk, runs the whole-program rules over one shared
:class:`~repro.lint.flow.program.ProgramAnalysis`, applies inline pragmas
and the committed baseline, and returns a :class:`LintResult` the
reporters and the CLI consume.

Two performance properties are load-bearing:

* each file is parsed **once** per cold run — the same AST feeds the
  per-file rule walk and the flow-summary extraction;
* with a :class:`~repro.lint.flow.cache.FlowCache` attached (the CLI
  default), a warm rerun of an unchanged tree replays cached per-file
  findings and program findings from content hashes without parsing
  anything.  The library default is cache-less: ``lint_paths`` has no
  filesystem side effects unless the caller opts in.

Unparseable files are themselves findings (rule ``syntax-error``) rather
than crashes: a linter that dies on the file it should be flagging is
useless in CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.baseline import Baseline, load_baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.findings import Finding
from repro.lint.flow.cache import FlowCache, config_fingerprint, digest_text
from repro.lint.flow.program import (
    build_program_analysis,
    flow_files,
    tree_fingerprint,
)
from repro.lint.flow.summary import ModuleSummary, summarize_source
from repro.lint.pragmas import is_suppressed, parse_pragmas
from repro.lint.registry import FileContext, ProgramRule, Rule, instantiate

#: The pseudo-rule name attached to unparseable files.  Not suppressible
#: via pragmas (a broken file cannot be trusted to parse its own pragmas).
SYNTAX_RULE = "syntax-error"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: Findings not covered by pragma or baseline — these fail the run.
    findings: list[Finding]
    #: Findings matched by the committed baseline (reported, non-fatal).
    baselined: list[Finding]
    #: Count of pragma-suppressed findings (for the summary line).
    suppressed: int
    #: Files actually linted (root-relative).
    files: list[str] = field(default_factory=list)
    #: Rule names that ran.
    rules: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into an ordered, de-duplicated .py list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = (path,)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(resolved)
    return ordered


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def _parse(path: Path, rel: str, source: str) -> tuple[ast.Module | None, list[Finding]]:
    """Parse one file; a SyntaxError becomes the file's only finding."""
    try:
        return ast.parse(source, filename=str(path)), []
    except SyntaxError as error:
        return None, [
            Finding(
                path=rel,
                line=error.lineno or 1,
                column=error.offset or 1,
                rule=SYNTAX_RULE,
                message=f"file does not parse: {error.msg}",
            )
        ]


def _walk_findings(
    tree: ast.Module,
    path: Path,
    rel: str,
    source: str,
    rules: Sequence[Rule],
    config: LintConfig,
) -> list[Finding]:
    """Pre-suppression findings for one parsed file (one walk)."""
    active = [rule for rule in rules if rule.applies_to(rel, config)]
    if not active:
        return []
    ctx = FileContext(
        rel_path=rel,
        abs_path=path,
        source_lines=source.splitlines(),
        config=config,
    )
    dispatch: dict[type, list[Rule]] = {}
    for rule in active:
        rule.begin_file(ctx)
        for node_type in rule.interests:
            dispatch.setdefault(node_type, []).append(rule)
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            rule.visit(node, ctx)
    for rule in active:
        rule.end_file(ctx)
    return sorted(ctx.findings)


def _raw_findings(
    path: Path,
    rel: str,
    source: str,
    rules: Sequence[Rule],
    config: LintConfig,
) -> list[Finding]:
    """Pre-suppression findings for one file (one parse, one walk)."""
    tree, syntax = _parse(path, rel, source)
    if tree is None:
        return syntax
    return _walk_findings(tree, path, rel, source, rules, config)


def lint_file(
    path: Path, rules: Sequence[Rule], config: LintConfig
) -> list[Finding]:
    """Findings for one file after pragma suppression (no baseline).

    Per-file rules only — whole-program rules need the whole program and
    run from :func:`lint_paths`.
    """
    path = Path(path)
    rel = _rel_path(path, config.root)
    source = path.read_text(encoding="utf-8")
    pragmas = parse_pragmas(source)
    file_rules = [r for r in rules if not isinstance(r, ProgramRule)]
    return [
        finding
        for finding in _raw_findings(path, rel, source, file_rules, config)
        if finding.rule == SYNTAX_RULE
        or not is_suppressed(finding.rule, finding.line, pragmas)
    ]


def run_program_rules(
    program_rules: Sequence[ProgramRule],
    config: LintConfig,
    cache: FlowCache | None = None,
    summaries: dict[str, tuple[str, ModuleSummary]] | None = None,
    fingerprint: str | None = None,
) -> list[Finding]:
    """All program-rule findings for the whole tree (unfiltered, sorted).

    With a cache and a matching whole-tree ``fingerprint``, previously
    computed findings are replayed without building the graph.
    """
    if not program_rules:
        return []
    if cache is not None and fingerprint is not None:
        cached = cache.get_program_findings(fingerprint)
        if cached is not None:
            return cached
    analysis = build_program_analysis(config, cache=cache, summaries=summaries)
    findings: list[Finding] = []
    for rule in program_rules:
        findings.extend(rule.check_program(analysis))
    findings.sort()
    if cache is not None and fingerprint is not None:
        cache.put_program_findings(fingerprint, findings)
    return findings


def lint_paths(
    paths: Sequence[Path | str] | None = None,
    *,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
    use_baseline: bool = True,
    cache: FlowCache | None = None,
) -> LintResult:
    """Lint ``paths`` (default: the configured default paths).

    ``baseline=None`` with ``use_baseline=True`` loads the configured
    baseline file; pass ``use_baseline=False`` to see every finding
    (the CLI's ``--no-baseline``).  ``cache`` opts into the on-disk
    findings cache (the caller owns the path; the CLI uses the configured
    ``.lint-cache.json``).
    """
    config = config or load_config()
    if paths is None:
        paths = [config.root / p for p in config.default_paths]
    files = iter_python_files([Path(p) for p in paths])
    rules = instantiate(config.enabled)
    file_rules = [r for r in rules if not isinstance(r, ProgramRule)]
    program_rules = [r for r in rules if isinstance(r, ProgramRule)]
    cache_key = config_fingerprint([rule.name for rule in rules], config)
    flow_modules = (
        {rel: module for _path, rel, module in flow_files(config)}
        if program_rules
        else {}
    )

    all_findings: list[Finding] = []
    suppressed = 0
    pragma_map: dict[str, dict[int, frozenset[str]]] = {}
    prebuilt: dict[str, tuple[str, ModuleSummary]] = {}
    for path in files:
        rel = _rel_path(path, config.root)
        source = path.read_text(encoding="utf-8")
        digest = digest_text(source)
        cached = (
            cache.get_file_results(rel, digest, cache_key)
            if cache is not None
            else None
        )
        if cached is not None:
            raw, pragmas = cached
        else:
            pragmas = parse_pragmas(source)
            tree, raw = _parse(path, rel, source)
            if tree is not None:
                raw = _walk_findings(tree, path, rel, source, file_rules, config)
                if rel in flow_modules:
                    # Reuse this parse for the flow summary (cold path:
                    # one parse per file, total).
                    summary = (
                        cache.get_summary(rel, digest)
                        if cache is not None
                        else None
                    )
                    if summary is None:
                        summary = summarize_source(
                            rel, flow_modules[rel], tree
                        )
                    prebuilt[rel] = (digest, summary)
            if cache is not None:
                cache.put_file_results(rel, digest, cache_key, raw, pragmas)
        pragma_map[rel] = pragmas
        for finding in raw:
            if finding.rule != SYNTAX_RULE and is_suppressed(
                finding.rule, finding.line, pragmas
            ):
                suppressed += 1
            else:
                all_findings.append(finding)

    if program_rules:
        fingerprint = (
            tree_fingerprint(config, cache_key) if cache is not None else None
        )
        program_findings = run_program_rules(
            program_rules,
            config,
            cache=cache,
            summaries=prebuilt,
            fingerprint=fingerprint,
        )
        linted = set(pragma_map)
        for finding in program_findings:
            if finding.path not in linted:
                continue
            if is_suppressed(
                finding.rule, finding.line, pragma_map.get(finding.path, {})
            ):
                suppressed += 1
            else:
                all_findings.append(finding)

    if cache is not None:
        cache.save()

    if baseline is None:
        baseline = (
            load_baseline(config.root / config.baseline_path)
            if use_baseline
            else Baseline.empty()
        )
    fresh, grandfathered = baseline.split(sorted(all_findings))
    return LintResult(
        findings=fresh,
        baselined=grandfathered,
        suppressed=suppressed,
        files=[_rel_path(path, config.root) for path in files],
        rules=[rule.name for rule in rules],
    )
