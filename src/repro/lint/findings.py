"""The unit of lint output: one finding at one source location.

Findings are plain frozen dataclasses so reporters, the baseline store and
tests can treat them as values: two findings are the same finding iff their
``(path, rule, line, column, message)`` tuples are equal.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is stored relative to the project root (posix separators) so
    findings are stable across machines and usable as baseline keys.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def as_dict(self) -> dict:
        """The JSON-reporter / baseline representation (schema v1)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            column=int(data.get("column", 0)),
            rule=str(data["rule"]),
            message=str(data.get("message", "")),
        )
