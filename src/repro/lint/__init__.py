"""``repro.lint`` — the project's AST-based static-analysis subsystem.

Enforces, at review time, the invariants the reproduction's headline
numbers rest on:

* **determinism** — no ``hash()``-derived RNG seeds, no module-level
  ``random.*``, no wall-clock reads (rules ``hash-seed``, ``unseeded-rng``,
  ``wall-clock``);
* **cache discipline** — reconstruction goes through
  :class:`repro.core.engine.CorridorEngine`, never a privately constructed
  kernel (rule ``cache-discipline``);
* **float safety** — no ``==``/``!=`` against float literals in the
  numeric kernels (rule ``float-eq``);
* **API hygiene** — no mutable default arguments, no bare/broad excepts
  (rules ``mutable-default``, ``broad-except``);
* **unit safety** — no additive mixing of ``_m``/``_km`` or
  ``_s``/``_ms``/``_us`` identifiers (rule ``unit-suffix``).

Entry points: :func:`lint_paths` (library), ``hftnetview lint`` (CLI),
``scripts/check.sh`` (CI gate).  Suppression: inline
``# lint: disable=rule`` pragmas with justification, or the committed
baseline file (see :mod:`repro.lint.baseline`).  Configuration:
``[tool.repro.lint]`` in pyproject.toml (see :mod:`repro.lint.config`).
"""

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.config import LintConfig, LintConfigError, load_config
from repro.lint.driver import (
    SYNTAX_RULE,
    LintResult,
    lint_file,
    lint_paths,
)
from repro.lint.findings import Finding
from repro.lint.registry import (
    FileContext,
    Rule,
    instantiate,
    register,
    registered_rules,
)
from repro.lint.reporters import JSON_SCHEMA_VERSION, render_json, render_text

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "LintConfigError",
    "LintResult",
    "Rule",
    "SYNTAX_RULE",
    "instantiate",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "load_config",
    "register",
    "registered_rules",
    "render_json",
    "render_text",
    "write_baseline",
]
