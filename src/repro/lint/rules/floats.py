"""Float safety: no ``==``/``!=`` against float literals in numeric kernels.

Geodesic distances and refractive-index latencies are chains of
floating-point operations; comparing their results to a float literal with
``==`` is almost always a bug (the classic ``0.1 + 0.2 != 0.3``).  The rule
is scoped to the numeric kernels (``geodesy/``, ``core/latency.py``,
``metrics/`` by default) where such comparisons decide physics, not to the
whole tree — elsewhere float equality is rare enough to review by hand.

Genuine exact-sentinel checks (e.g. Vincenty's ``sin_sigma == 0.0`` guard
for coincident points, where the value is *assigned*, not computed
approximately) are kept with an inline ``# lint: disable=float-eq`` pragma
and a one-line justification.
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.registry import FileContext, Rule, register


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # A negated literal (-1.5) parses as UnaryOp(USub, Constant).
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


@register
class FloatEqualityRule(Rule):
    """No ``==`` / ``!=`` against float literals in the numeric kernels."""

    name = "float-eq"
    description = (
        "== / != against a float literal in a numeric kernel: compare "
        "with a tolerance (math.isclose) or justify the exact sentinel "
        "with a pragma"
    )
    interests = (ast.Compare,)

    def applies_to(self, rel_path: str, config: LintConfig) -> bool:
        return any(
            rel_path == prefix or rel_path.startswith(prefix)
            for prefix in config.float_eq_paths()
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                ctx.report(
                    self,
                    node,
                    f"float literal compared with {symbol}; use a tolerance "
                    "(math.isclose) or pragma-justify the exact sentinel",
                )
                return
