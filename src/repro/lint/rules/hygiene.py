"""API hygiene rules: mutable default arguments, bare/broad excepts.

Not reproduction-specific, but both constructs have bitten pipelines like
this one: a mutable default silently accumulates licenses across calls,
and a broad ``except`` swallows the exact numeric errors (convergence
failures, degenerate geometry) the analyses must surface, not hide.
"""

from __future__ import annotations

import ast

from repro.lint.registry import FileContext, Rule, call_name, register

#: Constructor names (bare or the trailing part of a dotted call) whose
#: result is a fresh mutable container: ``dict()`` and
#: ``collections.defaultdict(list)`` are the same trap.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
)
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and call_name(node) in _MUTABLE_CONSTRUCTORS
    )


@register
class MutableDefaultRule(Rule):
    """No list/dict/set literals (or constructors) as argument defaults."""

    name = "mutable-default"
    description = (
        "mutable default argument: one shared instance across every call; "
        "default to None and construct inside the function"
    )
    interests = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        args = node.args  # type: ignore[union-attr]
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None and _is_mutable_default(default):
                ctx.report(
                    self,
                    default,
                    "mutable default argument is shared across calls; "
                    "use None and construct per call",
                )


@register
class BroadExceptRule(Rule):
    """No bare ``except:`` and no ``except Exception/BaseException``."""

    name = "broad-except"
    description = (
        "bare or Exception-wide except swallows numeric and logic errors "
        "the pipeline must surface; catch the specific exception"
    )
    interests = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            ctx.report(
                self, node, "bare except: catches everything including "
                "KeyboardInterrupt; name the expected exception"
            )
            return
        names = (
            node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        )
        for name_node in names:
            if (
                isinstance(name_node, ast.Name)
                and name_node.id in _BROAD_EXCEPTIONS
            ):
                ctx.report(
                    self,
                    node,
                    f"except {name_node.id} is too broad; catch the "
                    "specific exception the call can raise",
                )
                return
