"""Unit-suffix safety: don't add metres to kilometres.

The codebase encodes physical units in identifier suffixes — ``_m`` /
``_km`` for distances, ``_s`` / ``_ms`` / ``_us`` for times (latencies are
quoted in ms, gaps in µs, per-tower overheads in µs; geodesics in metres,
corridor lengths in km).  The cheapest unit bug is additive: summing or
comparing two identifiers whose suffixes disagree *within one dimension*
(``trunk_km + tail_m``) silently produces numbers off by 10³ — exactly the
class of error a speed-of-light latency reproduction cannot absorb.

The rule is deliberately conservative to stay false-positive-free: it only
fires when **both direct operands** of a ``+``/``-``/comparison are plain
identifiers (names, attributes or calls) with recognised, conflicting
suffixes of the same dimension.  Multiplication and division are exempt —
they are how conversions are written (``geodesic_m(...) / 1000.0``).
"""

from __future__ import annotations

import ast

from repro.lint.registry import FileContext, Rule, register


def _suffix_map(
    groups: tuple[tuple[str, ...], ...]
) -> dict[str, int]:
    """suffix → dimension-group index, longest suffixes first."""
    mapping: dict[str, int] = {}
    for index, group in enumerate(groups):
        for suffix in group:
            mapping[suffix] = index
    return mapping


def _identifier_of(node: ast.AST) -> str | None:
    """The trailing identifier if ``node`` is a name/attribute/call chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _identifier_of(node.func)
    return None


@register
class UnitSuffixRule(Rule):
    """No additive mixing of conflicting unit suffixes (``_m`` + ``_km``)."""

    name = "unit-suffix"
    description = (
        "identifiers with conflicting unit suffixes (_m vs _km, _ms vs "
        "_us) mixed additively; convert explicitly before combining"
    )
    interests = (ast.BinOp, ast.Compare, ast.AugAssign)

    def _unit_of(self, node: ast.AST, ctx: FileContext) -> tuple[str, int] | None:
        identifier = _identifier_of(node)
        if identifier is None:
            return None
        suffixes = _suffix_map(ctx.config.unit_groups())
        # Longest suffix wins so ``_ms`` is not mistaken for ``_s``.
        for suffix in sorted(suffixes, key=len, reverse=True):
            if identifier.endswith(suffix) and len(identifier) > len(suffix):
                return suffix, suffixes[suffix]
        return None

    def _check_pair(
        self, left: ast.AST, right: ast.AST, node: ast.AST, ctx: FileContext
    ) -> None:
        unit_left = self._unit_of(left, ctx)
        unit_right = self._unit_of(right, ctx)
        if unit_left is None or unit_right is None:
            return
        (suffix_left, group_left) = unit_left
        (suffix_right, group_right) = unit_right
        if group_left == group_right and suffix_left != suffix_right:
            ctx.report(
                self,
                node,
                f"mixing units {suffix_left!r} and {suffix_right!r} in one "
                "expression; convert explicitly before combining",
            )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_pair(node.left, node.right, node, ctx)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_pair(node.target, node.value, node, ctx)
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for left, right in zip(operands, operands[1:]):
                self._check_pair(left, right, node, ctx)
