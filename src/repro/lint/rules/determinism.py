"""Determinism rules: the pipeline must be a pure function of its inputs.

Every headline artefact (Table 1/2 latencies, the Fig 1/2 timelines) is
regenerated from the synthetic scenario; the reproduction's claims are
only checkable if two runs — on different machines, different days,
different ``PYTHONHASHSEED`` values — produce byte-identical results.
Three constructs break that silently:

* ``hash()``-derived RNG seeds — string hashing is randomised per process
  since Python 3.3, so ``random.Random(hash(name))`` generates different
  "deterministic" data in every interpreter;
* the module-level ``random.*`` API and unseeded ``random.Random()`` —
  global hidden state, seeded from the OS;
* wall-clock reads (``datetime.now()``, ``date.today()``, ``time.time()``)
  — the paper's analyses are pinned to its snapshot dates, never to today.
"""

from __future__ import annotations

import ast

from repro.lint.registry import (
    FileContext,
    Rule,
    call_name,
    dotted_name,
    register,
)

#: random-module functions that drive the hidden global RNG.
_MODULE_RNG_FUNCTIONS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: Callables that seed an RNG from their first argument.
_SEEDING_CALLS = frozenset({"Random", "seed", "SmoothNoise", "default_rng"})

#: Wall-clock reads: dotted-suffix → offending call.
_WALL_CLOCK_SUFFIXES = (
    "datetime.now",
    "datetime.today",
    "datetime.utcnow",
    "date.today",
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
)

#: The process-timer subset of the wall-clock vocabulary.  These are the
#: legitimate clock of the obs layer (``repro.obs.spans`` times spans with
#: ``perf_counter_ns``) and of the benchmark harness, so — mirroring the
#: obs-discipline rule's confinement — they are exempt inside the
#: configured obs-allowed paths.  Absolute wall-clock reads
#: (``datetime.now`` & co.) stay banned everywhere.
_PROCESS_TIMER_SUFFIXES = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)

#: Public aliases consumed by the whole-program effect extractor
#: (:mod:`repro.lint.flow.summary`) so the leaf vocabulary has one home.
WALL_CLOCK_SUFFIXES = _WALL_CLOCK_SUFFIXES
PROCESS_TIMER_SUFFIXES = _PROCESS_TIMER_SUFFIXES
MODULE_RNG_FUNCTIONS = _MODULE_RNG_FUNCTIONS


def _contains_hash_call(node: ast.AST) -> ast.Call | None:
    """The first ``hash(...)`` call anywhere inside ``node``, if any."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "hash"
        ):
            return child
    return None


@register
class HashSeedRule(Rule):
    """No RNG seeds derived from the builtin ``hash()``."""

    name = "hash-seed"
    description = (
        "RNG seeded from hash(): string hashing is per-process randomised "
        "(PYTHONHASHSEED), so the 'deterministic' stream differs every run"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        if call_name(node) not in _SEEDING_CALLS:
            return
        for arg in (*node.args, *(kw.value for kw in node.keywords)):
            offender = _contains_hash_call(arg)
            if offender is not None:
                ctx.report(
                    self,
                    offender,
                    "RNG seed derived from hash(); use a stable digest "
                    "such as zlib.crc32(text.encode())",
                )
                return


@register
class UnseededRngRule(Rule):
    """No module-level ``random.*`` usage and no unseeded ``Random()``."""

    name = "unseeded-rng"
    description = (
        "module-level random.* or unseeded random.Random(): hidden global "
        "state seeded from the OS breaks reproducibility"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        dotted = dotted_name(node.func)
        if dotted is not None and dotted.startswith("random."):
            member = dotted.split(".", 1)[1]
            if member in _MODULE_RNG_FUNCTIONS:
                ctx.report(
                    self,
                    node,
                    f"module-level random.{member}() uses the hidden global "
                    "RNG; construct a seeded random.Random(seed) instead",
                )
                return
        if call_name(node) == "Random" and not node.args and not node.keywords:
            ctx.report(
                self,
                node,
                "unseeded random.Random() is seeded from the OS; pass an "
                "explicit integer seed",
            )


@register
class WallClockRule(Rule):
    """No wall-clock reads inside the analysis pipeline."""

    name = "wall-clock"
    description = (
        "datetime.now()/date.today()/time.time(): analyses are pinned to "
        "scenario snapshot dates, never the machine clock"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        for suffix in _WALL_CLOCK_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                if suffix in _PROCESS_TIMER_SUFFIXES and any(
                    ctx.rel_path.startswith(prefix)
                    for prefix in ctx.config.obs_allowed_paths()
                ):
                    # Process timers are the obs layer's own clock; the
                    # obs-discipline rule governs them elsewhere.
                    return
                ctx.report(
                    self,
                    node,
                    f"wall-clock read {dotted}(): pass dates/times in "
                    "explicitly (scenario snapshot dates)",
                )
                return
