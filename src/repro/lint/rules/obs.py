"""Observability discipline: library code times through ``repro.obs``.

PR 3 added the obs layer so every timing measurement flows through one
instrumented, centrally-disableable channel (``obs.span(...)``), with a
single clock (``time.perf_counter_ns`` inside ``repro.obs.spans``).  A
module that reads a process timer directly re-invents that channel: its
measurements are invisible to trace sinks, aren't aggregated into the
metrics registry, and cannot be switched off with the rest of the
instrumentation.  This rule confines raw timer reads to the obs package
itself and to the benchmark harness (where pytest-benchmark owns the
clock).
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.registry import FileContext, Rule, dotted_name, register

#: Process-timer reads: dotted-suffix → offending call.
_TIMER_SUFFIXES = (
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.thread_time",
    "time.thread_time_ns",
)


@register
class ObsDisciplineRule(Rule):
    """Raw process-timer reads are confined to obs/ and benchmarks/."""

    name = "obs-discipline"
    description = (
        "direct time.monotonic()/perf_counter() timing outside repro.obs "
        "and the benchmark harness; wrap the region in obs.span(...) so "
        "the measurement reaches trace sinks and the metrics registry"
    )
    interests = (ast.Call,)

    def applies_to(self, rel_path: str, config: LintConfig) -> bool:
        return not any(
            rel_path.startswith(prefix)
            for prefix in config.obs_allowed_paths()
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        for suffix in _TIMER_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                ctx.report(
                    self,
                    node,
                    f"raw timer read {dotted}(): time through "
                    "obs.span(...) instead (raw timers are allowed only "
                    "under src/repro/obs/ and benchmarks/)",
                )
                return
