"""Built-in lint rules.

Importing this package registers every built-in rule with the registry —
:func:`repro.lint.registry.registered_rules` does so lazily, so rule
modules stay import-cycle-free and cheap to load.

Adding a rule: create (or extend) a module here, subclass
:class:`repro.lint.registry.Rule`, decorate it with ``@register``, and add
the module to the import list below.  DESIGN.md §"Static analysis"
documents the conventions (naming, path scoping, configuration).
"""

from repro.lint.rules import (  # noqa: F401  (imports register the rules)
    cache,
    determinism,
    floats,
    hygiene,
    obs,
    parallel,
    units,
)
