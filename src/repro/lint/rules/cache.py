"""Cache discipline: all reconstruction goes through the CorridorEngine.

PR 1 centralised snapshot/route caching in
:class:`repro.core.engine.CorridorEngine`; its correctness argument (cached
results bit-identical to cache-free reconstruction) only holds if consumers
actually route through it.  A driver that quietly constructs its own
:class:`NetworkReconstructor` re-stitches every network from scratch —
correct but orders of magnitude slower, and invisible to the engine's
cache statistics.  This rule turns that convention into tooling: only the
engine module and the kernel module itself may construct the kernel or
call ``reconstruct_all``.
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.registry import FileContext, Rule, call_name, register

#: Callables that bypass the engine's caches.
_KERNEL_CALLS = frozenset({"NetworkReconstructor", "reconstruct_all"})


@register
class CacheDisciplineRule(Rule):
    """Kernel construction is confined to the engine and kernel modules."""

    name = "cache-discipline"
    description = (
        "NetworkReconstructor(...)/reconstruct_all(...) outside the engine "
        "and kernel modules bypasses the snapshot/route caches; use "
        "CorridorEngine or Scenario.engine()"
    )
    interests = (ast.Call,)

    def applies_to(self, rel_path: str, config: LintConfig) -> bool:
        return rel_path not in config.cache_allowed_files()

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        name = call_name(node)
        if name in _KERNEL_CALLS:
            ctx.report(
                self,
                node,
                f"{name}(...) bypasses the CorridorEngine caches; "
                "go through CorridorEngine / Scenario.engine() "
                "(allowed only in the engine and kernel modules)",
            )
