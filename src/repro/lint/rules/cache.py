"""Cache discipline: all reconstruction goes through the CorridorEngine.

PR 1 centralised snapshot/route caching in
:class:`repro.core.engine.CorridorEngine`; its correctness argument (cached
results bit-identical to cache-free reconstruction) only holds if consumers
actually route through it.  A driver that quietly constructs its own
:class:`NetworkReconstructor` re-stitches every network from scratch —
correct but orders of magnitude slower, and invisible to the engine's
cache statistics.  This rule turns that convention into tooling: only the
engine module and the kernel module itself may construct the kernel or
call ``reconstruct_all``.
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.registry import FileContext, Rule, call_name, register

#: Callables that bypass the engine's caches.
_KERNEL_CALLS = frozenset({"NetworkReconstructor", "reconstruct_all"})

#: Linear-scan active-set lookups (confined to the index's own home).
_SCAN_CALLS = frozenset({"active_on"})

#: Per-generation derived state that must come from the database's cache
#: (``UlsDatabase.columnar_store()``), not be constructed ad hoc.
_COLUMNAR_CALLS = frozenset({"ColumnarLicenseStore"})

#: The persistent store's on-disk layout functions
#: (:mod:`repro.store.layout`).  Direct entry-file access anywhere else
#: bypasses atomic write-then-rename publication and corrupt-entry
#: quarantine; everything outside the store package goes through
#: ``CacheStore``.
_STORE_CALLS = frozenset(
    {"entry_path", "read_entry", "write_entry", "quarantine_entry"}
)


def _prefix_allowed(rel_path: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        rel_path == prefix or rel_path.startswith(prefix)
        for prefix in prefixes
    )


@register
class CacheDisciplineRule(Rule):
    """Kernel construction is confined to the engine and kernel modules,
    and linear active-set scans to the uls layer and the engine."""

    name = "cache-discipline"
    description = (
        "NetworkReconstructor(...)/reconstruct_all(...) outside the engine "
        "and kernel modules bypasses the snapshot/route caches (use "
        "CorridorEngine or Scenario.engine()); active_on(...) outside the "
        "uls layer and the engine rescans every license (use "
        "UlsDatabase.temporal_index()); ColumnarLicenseStore(...) outside "
        "the uls layer and the engine risks stale columns (use "
        "UlsDatabase.columnar_store()); store layout calls "
        "(read_entry/write_entry/...) outside src/repro/store/ bypass "
        "atomic publication and quarantine (use CacheStore)"
    )
    interests = (ast.Call,)

    def applies_to(self, rel_path: str, config: LintConfig) -> bool:
        return (
            rel_path not in config.cache_allowed_files()
            or not _prefix_allowed(rel_path, config.active_on_allowed_paths())
            or not _prefix_allowed(rel_path, config.columnar_allowed_paths())
            or not _prefix_allowed(rel_path, config.store_allowed_paths())
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        name = call_name(node)
        if (
            name in _KERNEL_CALLS
            and ctx.rel_path not in ctx.config.cache_allowed_files()
        ):
            ctx.report(
                self,
                node,
                f"{name}(...) bypasses the CorridorEngine caches; "
                "go through CorridorEngine / Scenario.engine() "
                "(allowed only in the engine and kernel modules)",
            )
        elif name in _SCAN_CALLS and not _prefix_allowed(
            ctx.rel_path, ctx.config.active_on_allowed_paths()
        ):
            ctx.report(
                self,
                node,
                "active_on(...) linear-scans and materialises the license "
                "list; resolve active sets via "
                "UlsDatabase.temporal_index().active_ids_at(...) "
                "(allowed only under src/repro/uls/ and the engine)",
            )
        elif name in _COLUMNAR_CALLS and not _prefix_allowed(
            ctx.rel_path, ctx.config.columnar_allowed_paths()
        ):
            ctx.report(
                self,
                node,
                "ColumnarLicenseStore(...) built outside the uls layer and "
                "the engine risks stale columns after a database mutation; "
                "use UlsDatabase.columnar_store() (cached per generation)",
            )
        elif name in _STORE_CALLS and not _prefix_allowed(
            ctx.rel_path, ctx.config.store_allowed_paths()
        ):
            ctx.report(
                self,
                node,
                f"{name}(...) touches the persistent store's entry files "
                "directly, bypassing atomic publication and corrupt-entry "
                "quarantine; go through repro.store.CacheStore "
                "(allowed only under src/repro/store/)",
            )
