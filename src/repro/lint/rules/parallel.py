"""Parallelism discipline: fan-out goes through ``repro.parallel``.

The parallel package is the one place in the codebase where worker pools
are constructed — it is what guarantees spawn safety (no forked
interpreter state), ordered reduction, and cache/metrics merge-back.  A
module that builds its own ``ProcessPoolExecutor`` or calls
``multiprocessing.Pool`` bypasses all three: results may arrive in
completion order, worker caches are silently discarded, and the fork
start method can capture half-initialised parent state.  This rule
confines pool and process construction to ``src/repro/parallel/``.
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.registry import FileContext, Rule, dotted_name, register

#: Pool/process constructors that match bare or dotted
#: (``ProcessPoolExecutor(...)`` and ``futures.ProcessPoolExecutor(...)``).
_POOL_NAMES = (
    "ProcessPoolExecutor",
    "ThreadPoolExecutor",
)

#: Constructors that only count when module-qualified — a bare ``Pool`` or
#: ``Process`` is too common a local name to flag.
_DOTTED_SUFFIXES = (
    "multiprocessing.Pool",
    "multiprocessing.Process",
    "mp.Pool",
    "mp.Process",
    "os.fork",
)


@register
class ParallelDisciplineRule(Rule):
    """Pool/process construction is confined to src/repro/parallel/."""

    name = "parallel-discipline"
    description = (
        "direct pool/process construction outside repro.parallel; fan "
        "out through repro.parallel (pmap/ParallelMap/GridSession) so "
        "results stay ordered and worker caches merge back"
    )
    interests = (ast.Call,)

    def applies_to(self, rel_path: str, config: LintConfig) -> bool:
        return not any(
            rel_path.startswith(prefix)
            for prefix in config.parallel_allowed_paths()
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        for name in _POOL_NAMES:
            if dotted == name or dotted.endswith("." + name):
                self._report(ctx, node, dotted)
                return
        for suffix in _DOTTED_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                self._report(ctx, node, dotted)
                return

    def _report(self, ctx: FileContext, node: ast.Call, dotted: str) -> None:
        ctx.report(
            self,
            node,
            f"direct pool/process construction {dotted}(): fan out "
            "through repro.parallel instead (pools are allowed only "
            "under src/repro/parallel/)",
        )
