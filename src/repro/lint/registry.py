"""The rule registry and the base class every lint rule extends.

A rule declares which AST node types it wants (``interests``) and receives
each matching node exactly once from the driver's single tree walk, together
with a :class:`FileContext` describing the file being linted.  Rules report
violations by calling ``ctx.report(...)``; suppression (pragmas, baseline)
is the driver's job, never the rule's.

Registering is one decorator::

    @register
    class MyRule(Rule):
        name = "my-rule"
        description = "what it catches and why"
        interests = (ast.Call,)

        def visit(self, node, ctx):
            ...

Rules must be stateless across files (the driver instantiates one rule
object per run and reuses it for every file); per-file state belongs in
``begin_file``/``end_file`` hooks or on the context.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Type

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.config import LintConfig


@dataclass
class FileContext:
    """Everything a rule may know about the file under analysis."""

    #: Project-root-relative posix path (``src/repro/core/engine.py``).
    rel_path: str
    #: Absolute path on disk.
    abs_path: Path
    #: The file's source, split into lines (1-indexed via ``line(n)``).
    source_lines: list[str]
    #: The effective configuration for this run.
    config: "LintConfig"
    #: Findings reported so far for this file (driver-owned).
    findings: list[Finding] = field(default_factory=list)

    def line(self, lineno: int) -> str:
        """The 1-indexed source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""

    def report(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> None:
        """Record a violation of ``rule`` at ``node``."""
        self.findings.append(
            Finding(
                path=self.rel_path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0) + 1,
                rule=rule.name,
                message=message,
            )
        )


class Rule:
    """Base class for lint rules (see module docstring for the contract)."""

    #: Unique kebab-case identifier (pragma and config key).
    name: str = ""
    #: One-line human description shown by reporters and ``--list-rules``.
    description: str = ""
    #: AST node types the driver should dispatch to :meth:`visit`.
    interests: tuple[type, ...] = ()

    def applies_to(self, rel_path: str, config: "LintConfig") -> bool:
        """Whether this rule runs on ``rel_path`` at all.

        The default is every file; path-scoped rules (float safety, cache
        discipline) override this using their configuration section.
        """
        return True

    def begin_file(self, ctx: FileContext) -> None:
        """Hook before any node of a file is visited."""

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Inspect one node of interest (override in subclasses)."""
        raise NotImplementedError

    def end_file(self, ctx: FileContext) -> None:
        """Hook after the last node of a file was visited."""


class ProgramRule(Rule):
    """Base class for whole-program rules.

    Unlike per-file rules, a program rule never visits AST nodes: the
    driver builds one :class:`~repro.lint.flow.program.ProgramAnalysis`
    (symbol table, call graph, transitive effects) for the run and hands
    it to :meth:`check_program`, which returns findings directly.  The
    driver then applies the ordinary pragma/baseline machinery, so
    ``# lint: disable=shared-state`` works exactly like for file rules.
    """

    interests: tuple[type, ...] = ()

    def check_program(self, analysis) -> list[Finding]:
        """Inspect the whole-program analysis (override in subclasses)."""
        raise NotImplementedError

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Program rules never receive per-node dispatch."""


#: All registered rule classes, keyed by rule name.
_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.name:
        raise ValueError(f"rule {rule_cls.__name__} has no name")
    existing = _REGISTRY.get(rule_cls.name)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate rule name: {rule_cls.name!r}")
    _REGISTRY[rule_cls.name] = rule_cls
    return rule_cls


def registered_rules() -> dict[str, Type[Rule]]:
    """Name → class for every registered rule (built-ins auto-import)."""
    # Importing the rules package registers every built-in rule module.
    # The whole-program rules live beside the analysis they consume and
    # are imported second: they depend on the per-file rule vocabularies.
    import repro.lint.rules  # noqa: F401  (import for side effect)
    import repro.lint.flow.rules  # noqa: F401  (import for side effect)

    return dict(_REGISTRY)


def instantiate(names: Iterable[str] | None = None) -> list[Rule]:
    """Rule instances for ``names`` (default: every registered rule)."""
    available = registered_rules()
    if names is None:
        selected = sorted(available)
    else:
        selected = list(names)
        unknown = [name for name in selected if name not in available]
        if unknown:
            raise KeyError(f"unknown lint rules: {sorted(unknown)}")
    return [available[name]() for name in selected]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None.

    The helper most rules use to recognise calls like ``random.Random`` or
    ``datetime.now`` without resolving imports.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The trailing identifier of a call's callee (``C`` for ``a.b.C()``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
