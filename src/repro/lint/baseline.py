"""The committed baseline: grandfathered findings that do not fail CI.

A baseline lets the linter be adopted on a codebase with existing findings
— the debt is committed, visible and diffable, while *new* findings fail
immediately.  This repository's baseline is empty (the PR introducing the
linter also fixed or pragma-justified every finding), but the machinery
stays so future rules can land before their remediation sweeps.

Format (JSON, schema v1)::

    {"version": 1,
     "findings": [{"path": ..., "line": ..., "column": ...,
                   "rule": ..., "message": ...}]}

Matching is exact on ``(path, rule, line)`` — message text may be reworded
and columns may shift without un-baselining a finding, but moving code
does.  That is deliberate: a drifted baseline should be regenerated (with
``--update-baseline``) under review, not silently tolerated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.lint.findings import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """An unreadable or wrong-version baseline file."""


@dataclass(frozen=True)
class Baseline:
    """An immutable set of grandfathered findings."""

    entries: frozenset[tuple[str, str, int]]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=frozenset())

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(
            entries=frozenset((f.path, f.rule, f.line) for f in findings)
        )

    def contains(self, finding: Finding) -> bool:
        return (finding.path, finding.rule, finding.line) in self.entries

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """(new, grandfathered) partition of ``findings``."""
        fresh = [f for f in findings if not self.contains(f)]
        old = [f for f in findings if self.contains(f)]
        return fresh, old

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.is_file():
        return Baseline.empty()
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BaselineError(f"unreadable baseline {path}: {error}") from error
    if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} is not schema version {BASELINE_VERSION}"
        )
    findings = [Finding.from_dict(entry) for entry in document.get("findings", [])]
    return Baseline.from_findings(findings)


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Write ``findings`` as the new committed baseline (sorted, stable)."""
    document = {
        "version": BASELINE_VERSION,
        "findings": [f.as_dict() for f in sorted(findings)],
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
