"""Tests for the deterministic fan-out executor (repro.parallel.executor).

The process-backend tests force ``backend="process"`` explicitly: on a
single-CPU host ``auto`` resolves to the inline backend, and the spawn
transport (pickling of tasks, contexts, and chunk extras) must be
exercised regardless of the machine the suite runs on.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.parallel import (
    BACKENDS,
    ContextSpec,
    ParallelMap,
    chunk_spans,
    pmap,
    resolve_backend,
    usable_cpu_count,
)


# -- module-level task/context functions (picklable by reference, as the
# -- process backend requires) ------------------------------------------

def _square(x: int) -> int:
    return x * x


def _ctx_task(ctx, item):
    return (ctx.tag, item)


class _Recorder:
    """A context that records the begin_chunk protocol."""

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self.chunks: list[int] = []

    def begin_chunk(self, worker: int) -> None:
        self.chunks.append(worker)


def _make_recorder(tag: str) -> _Recorder:
    return _Recorder(tag)


def _finalize_tag(ctx) -> str:
    return ctx.tag


class TestChunkSpans:
    def test_even_split(self):
        assert chunk_spans(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_first_chunks(self):
        assert chunk_spans(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_fewer_items_than_jobs_drops_empty_chunks(self):
        assert chunk_spans(2, 4) == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert chunk_spans(0, 4) == []

    def test_single_job_is_one_span(self):
        assert chunk_spans(7, 1) == [(0, 7)]

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            chunk_spans(5, 0)

    @pytest.mark.parametrize("n,jobs", [(1, 1), (5, 2), (7, 3), (16, 5), (3, 8)])
    def test_spans_are_contiguous_balanced_and_cover(self, n, jobs):
        spans = chunk_spans(n, jobs)
        # Contiguous cover of [0, n).
        assert spans[0][0] == 0 and spans[-1][1] == n
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
        # Balanced: chunk sizes differ by at most one.
        sizes = [stop - start for start, stop in spans]
        assert max(sizes) - min(sizes) <= 1


class TestResolveBackend:
    def test_jobs_one_is_always_serial(self):
        for requested in ("auto", "inline", "process"):
            assert resolve_backend(1, requested) == "serial"

    def test_auto_matches_machine(self):
        resolved = resolve_backend(4, "auto")
        expected = "process" if usable_cpu_count() > 1 else "inline"
        assert resolved == expected

    def test_forced_backends_override_machine_check(self):
        assert resolve_backend(4, "inline") == "inline"
        assert resolve_backend(4, "process") == "process"

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            resolve_backend(0)
        with pytest.raises(ValueError):
            resolve_backend(2, "threads")

    def test_backends_tuple(self):
        assert BACKENDS == ("serial", "inline", "process")


class TestPmapLocal:
    def test_serial_matches_list_comprehension(self):
        items = list(range(10))
        assert pmap(_square, items, jobs=1) == [x * x for x in items]

    def test_inline_preserves_submission_order(self):
        items = list(range(11))
        assert pmap(_square, items, jobs=3, backend="inline") == [
            x * x for x in items
        ]

    def test_empty_items(self):
        assert pmap(_square, [], jobs=4, backend="inline") == []

    def test_context_tasks_receive_context(self):
        spec = ContextSpec(_make_recorder, ("w",))
        results = pmap(_ctx_task, [1, 2, 3], jobs=2, backend="inline", context=spec)
        assert results == [("w", 1), ("w", 2), ("w", 3)]

    def test_begin_chunk_reports_dense_worker_ids(self):
        recorder = _Recorder("r")
        with ParallelMap(2, backend="inline", local_context=recorder) as executor:
            executor.map(_ctx_task, list(range(4)))
        assert recorder.chunks == [0, 1]

    def test_local_context_is_built_once_and_reused(self):
        spec = ContextSpec(_make_recorder, ("once",))
        with ParallelMap(2, backend="inline", context=spec) as executor:
            executor.map(_ctx_task, [1, 2])
            executor.map(_ctx_task, [3, 4])
            recorder = executor._local()
        # One recorder saw every chunk of both map calls.
        assert recorder.chunks == [0, 1, 0, 1]

    def test_finalize_and_on_chunk_result_run_in_chunk_order(self):
        collected: list[tuple[int, str]] = []
        recorder = _Recorder("tag")
        with ParallelMap(3, backend="inline", local_context=recorder) as executor:
            executor.map(
                _ctx_task,
                list(range(6)),
                finalize=_finalize_tag,
                on_chunk_result=lambda worker, extra: collected.append(
                    (worker, extra)
                ),
            )
        assert collected == [(0, "tag"), (1, "tag"), (2, "tag")]

    def test_task_counter_and_spans_under_obs(self):
        with obs.capture() as cap:
            pmap(_square, list(range(5)), jobs=2, backend="inline")
        assert cap.counters().get("parallel.tasks") == 5
        names = [record.name for record in cap.spans]
        assert names.count("parallel.task") == 5
        assert "parallel.map" in names


class TestPmapProcess:
    """Spawn transport, forced explicitly (auto would pick inline on a
    one-CPU host)."""

    def test_results_match_serial_and_keep_order(self):
        items = list(range(9))
        assert pmap(_square, items, jobs=2, backend="process") == [
            x * x for x in items
        ]

    def test_builtin_task_without_context(self):
        words = ["alpha", "beta", "gamma"]
        assert pmap(str.upper, words, jobs=2, backend="process") == [
            "ALPHA", "BETA", "GAMMA"
        ]

    def test_context_rebuilt_in_workers_and_extras_come_home(self):
        collected: list[tuple[int, str]] = []
        spec = ContextSpec(_make_recorder, ("worker-made",))
        with ParallelMap(2, backend="process", context=spec) as executor:
            results = executor.map(
                _ctx_task,
                [10, 20, 30, 40],
                finalize=_finalize_tag,
                on_chunk_result=lambda worker, extra: collected.append(
                    (worker, extra)
                ),
            )
        assert results == [
            ("worker-made", 10),
            ("worker-made", 20),
            ("worker-made", 30),
            ("worker-made", 40),
        ]
        assert collected == [(0, "worker-made"), (1, "worker-made")]

    def test_worker_metrics_merge_into_parent_registry(self):
        with obs.capture() as cap:
            pmap(_square, list(range(6)), jobs=2, backend="process")
        # Worker-side task counters ship home via the registry snapshot.
        assert cap.counters().get("parallel.tasks") == 6
