"""Tests for longitudinal reconstruction."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.core.timeline import (
    active_license_count,
    dense_date_grid,
    grant_cancellation_activity,
    latency_timeline,
    license_count_timeline,
    yearly_snapshot_dates,
)
from repro.core.corridor import chicago_nj_corridor
from repro.uls.database import UlsDatabase
from tests.conftest import make_license
from tests.test_core_reconstruction import _chain_licenses

CORRIDOR = chicago_nj_corridor()


class TestDateGrid:
    def test_default_grid_matches_paper(self):
        dates = yearly_snapshot_dates()
        assert dates[0] == dt.date(2013, 1, 1)
        assert dates[-2] == dt.date(2019, 1, 1)
        assert dates[-1] == dt.date(2020, 4, 1)
        assert len(dates) == 8

    def test_dense_grid_paper_step_is_yearly(self):
        assert dense_date_grid("paper") == yearly_snapshot_dates()

    def test_dense_grid_monthly(self):
        dates = dense_date_grid("monthly")
        assert dates[0] == dt.date(2013, 1, 1)
        assert dates[-1] == dt.date(2020, 4, 1)
        assert len(dates) == 88  # 12 * 7 years + Jan..Apr 2020
        assert all(d.day == 1 for d in dates)
        assert dates == sorted(dates)

    def test_dense_grid_weekly(self):
        dates = dense_date_grid(
            "weekly", start=dt.date(2019, 1, 1), end=dt.date(2019, 2, 1)
        )
        assert dates == [
            dt.date(2019, 1, 1) + dt.timedelta(days=7 * i) for i in range(5)
        ]

    def test_dense_grid_custom_bounds(self):
        dates = dense_date_grid(
            "monthly", start=dt.date(2018, 3, 1), end=dt.date(2018, 6, 15)
        )
        assert dates == [
            dt.date(2018, 3, 1),
            dt.date(2018, 4, 1),
            dt.date(2018, 5, 1),
            dt.date(2018, 6, 1),
        ]

    def test_dense_grid_unknown_step_raises(self):
        with pytest.raises(ValueError):
            dense_date_grid("daily")

    def test_custom_range(self):
        dates = yearly_snapshot_dates(2015, 2016, final_date=dt.date(2017, 6, 1))
        assert dates == [dt.date(2015, 1, 1), dt.date(2016, 1, 1), dt.date(2017, 6, 1)]

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            yearly_snapshot_dates(2019, 2013)

    def test_rejects_final_date_before_grid(self):
        with pytest.raises(ValueError):
            yearly_snapshot_dates(2013, 2019, final_date=dt.date(2018, 1, 1))

    def test_none_final_date_yields_bare_yearly_grid(self):
        dates = yearly_snapshot_dates(final_date=None)
        assert dates == [dt.date(year, 1, 1) for year in range(2013, 2020)]

    def test_none_final_date_custom_range(self):
        assert yearly_snapshot_dates(2018, 2019, final_date=None) == [
            dt.date(2018, 1, 1),
            dt.date(2019, 1, 1),
        ]


class TestLatencyTimeline:
    def test_series_tracks_grant_and_cancellation(self):
        licenses = _chain_licenses(
            "Demo Net", grant=dt.date(2015, 6, 1), cancellation=dt.date(2018, 6, 1)
        )
        db = UlsDatabase(licenses)
        dates = [dt.date(year, 1, 1) for year in (2015, 2016, 2017, 2018, 2019)]
        points = latency_timeline(db, CORRIDOR, "Demo Net", dates)
        values = [p.latency_ms for p in points]
        assert values[0] is None  # before grant
        assert values[1] is not None and values[1] == pytest.approx(3.96, abs=0.01)
        assert values[3] is not None  # Jan 2018: still active
        assert values[4] is None  # after cancellation

    def test_tower_count_recorded_when_connected(self):
        db = UlsDatabase(_chain_licenses("Demo Net"))
        (point,) = latency_timeline(db, CORRIDOR, "Demo Net", [dt.date(2020, 1, 1)])
        assert point.tower_count == 24


class TestLicenseCounts:
    def test_counts_step_with_events(self):
        lics = [
            make_license("L1", grant=dt.date(2014, 1, 1)),
            make_license("L2", grant=dt.date(2015, 6, 1)),
            make_license("L3", grant=dt.date(2015, 7, 1), cancellation=dt.date(2016, 2, 1)),
        ]
        db = UlsDatabase(lics)
        dates = [dt.date(year, 1, 1) for year in (2014, 2015, 2016, 2017)]
        series = license_count_timeline(db, "Test Networks LLC", dates)
        assert series.counts == (1, 1, 3, 2)
        assert series.as_pairs()[0] == (dt.date(2014, 1, 1), 1)

    def test_active_license_count_helper(self):
        lics = [make_license("L1"), make_license("L2", cancellation=dt.date(2016, 1, 1))]
        assert active_license_count(lics, dt.date(2017, 1, 1)) == 1

    def test_grant_cancellation_activity(self):
        lics = [
            make_license("L1", grant=dt.date(2014, 3, 1)),
            make_license("L2", grant=dt.date(2014, 9, 1), cancellation=dt.date(2014, 12, 1)),
            make_license("L3", grant=dt.date(2015, 1, 1)),
        ]
        db = UlsDatabase(lics)
        grants, cancels = grant_cancellation_activity(db, "Test Networks LLC", 2014)
        assert (grants, cancels) == (2, 1)
