"""Tests for the storm simulation and §5's reliability thesis."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.geodesy import GeoPoint, geodesic_destination
from repro.synth.weather import (
    RainCell,
    Storm,
    apply_storm,
    random_storm,
    storm_latency_ms,
)

CENTER = GeoPoint(41.0, -80.0)


class TestRainCell:
    def test_peak_at_center(self):
        cell = RainCell(CENTER, radius_km=30.0, peak_rate_mm_h=100.0)
        assert cell.rate_at(CENTER) == pytest.approx(100.0)

    def test_gaussian_falloff(self):
        cell = RainCell(CENTER, radius_km=30.0, peak_rate_mm_h=100.0)
        at_radius = cell.rate_at(geodesic_destination(CENTER, 90.0, 30_000.0))
        assert at_radius == pytest.approx(100.0 * 2.718281828**-1, rel=0.01)
        far = cell.rate_at(geodesic_destination(CENTER, 90.0, 150_000.0))
        assert far < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            RainCell(CENTER, radius_km=0.0, peak_rate_mm_h=10.0)
        with pytest.raises(ValueError):
            RainCell(CENTER, radius_km=10.0, peak_rate_mm_h=-1.0)


class TestStorm:
    def test_cells_superpose(self):
        cell = RainCell(CENTER, 30.0, 50.0)
        storm = Storm(cells=(cell, cell))
        assert storm.rate_at(CENTER) == pytest.approx(100.0)

    def test_max_rate_over_link_sees_midpath_cell(self):
        a = geodesic_destination(CENTER, 270.0, 40_000.0)
        b = geodesic_destination(CENTER, 90.0, 40_000.0)
        storm = Storm(cells=(RainCell(CENTER, 20.0, 80.0),))
        # Neither endpoint is in heavy rain, but the middle of the hop is.
        assert storm.rate_at(a) < 2.0
        assert storm.max_rate_over_link(a, b) == pytest.approx(80.0, rel=0.05)

    def test_random_storm_deterministic(self):
        along = (GeoPoint(41.7, -88.0), GeoPoint(40.8, -74.1))
        s1, s2 = random_storm(5, along), random_storm(5, along)
        assert [c.center.rounded() for c in s1.cells] == [
            c.center.rounded() for c in s2.cells
        ]
        assert random_storm(6, along).cells != s1.cells

    def test_random_storm_validation(self):
        with pytest.raises(ValueError):
            random_storm(1, (CENTER, CENTER), n_cells=0)


class TestApplyStorm:
    def test_storm_kills_high_band_but_not_low_band(
        self, scenario, reconstructor, snapshot_date
    ):
        nln = reconstructor.reconstruct_licensee(
            scenario.database, "New Line Networks", snapshot_date
        )
        wh = reconstructor.reconstruct_licensee(
            scenario.database, "Webline Holdings", snapshot_date
        )
        # A violent cell centred on an *unbypassed* stretch of NLN's
        # 11 GHz trunk (link 12 is uncovered; the route node at index ~13
        # sits mid-corridor).  170 mm/h fades ~49 km 11 GHz hops but not
        # 6 GHz ones, so WH rides through on its low-band links.
        route = nln.lowest_latency_route("CME", "NY4")
        anchor_node = route.nodes[13]
        anchor = nln.graph.nodes[anchor_node]["point"]
        storm = Storm(cells=(RainCell(anchor, 40.0, 170.0),))
        nln_latency = storm_latency_ms(nln, storm, "CME", "NY4")
        wh_latency = storm_latency_ms(wh, storm, "CME", "NY4")
        assert wh_latency is not None
        # WH barely degrades...
        assert wh_latency == pytest.approx(3.97157, abs=0.01)
        # ...while NLN either loses connectivity or pays a large detour:
        # the reliability crossover of §5.
        assert nln_latency is None or nln_latency > wh_latency

    def test_clear_weather_changes_nothing(self, nln_network):
        storm = Storm(cells=(RainCell(CENTER, 20.0, 0.0),))
        graph = apply_storm(nln_network, storm)
        assert graph.number_of_edges() == nln_network.graph.number_of_edges()

    def test_fiber_never_fails(self, nln_network):
        storm = Storm(
            cells=(RainCell(nln_network.data_centers["NY4"].point, 50.0, 200.0),)
        )
        graph = apply_storm(nln_network, storm)
        fiber_edges = [
            (u, v)
            for u, v, d in graph.edges(data=True)
            if d["medium"] == "fiber"
        ]
        original_fiber = [
            (u, v)
            for u, v, d in nln_network.graph.edges(data=True)
            if d["medium"] == "fiber"
        ]
        assert len(fiber_edges) == len(original_fiber)

    def test_storm_latency_none_when_disconnected(self, nln_network):
        # Saturate the whole corridor with extreme rain: all MW links die.
        cells = tuple(
            RainCell(GeoPoint(41.3, lon), 80.0, 280.0)
            for lon in range(-88, -73, 2)
        )
        latency = storm_latency_ms(nln_network, Storm(cells=cells), "CME", "NY4")
        assert latency is None
