"""Tests for entity resolution (§2.4 / §6 future work)."""

from __future__ import annotations

import pytest

from repro.analysis.entities import (
    complementary_pairs,
    contact_domains,
    joint_analysis,
    resolve_entities,
    shared_domain_groups,
)
from repro.synth.scenario import (
    SPLIT_NETWORK_EAST,
    SPLIT_NETWORK_EMAIL,
    SPLIT_NETWORK_WEST,
)


class TestContactDomains:
    def test_split_halves_share_domain(self, scenario):
        west = contact_domains(scenario.database, SPLIT_NETWORK_WEST)
        east = contact_domains(scenario.database, SPLIT_NETWORK_EAST)
        expected = {SPLIT_NETWORK_EMAIL.rpartition("@")[2]}
        assert west == expected
        assert east == expected

    def test_independent_networks_have_distinct_domains(self, scenario):
        nln = contact_domains(scenario.database, "New Line Networks")
        wh = contact_domains(scenario.database, "Webline Holdings")
        assert nln and wh
        assert nln.isdisjoint(wh)

    def test_shared_domain_groups_finds_only_the_pair(self, scenario):
        groups = shared_domain_groups(scenario.database)
        assert list(groups.values()) == [
            [SPLIT_NETWORK_EAST, SPLIT_NETWORK_WEST]
        ]


class TestJointAnalysis:
    def test_split_pair_is_complementary(self, scenario):
        analysis = joint_analysis(
            scenario.database,
            scenario.corridor,
            (SPLIT_NETWORK_WEST, SPLIT_NETWORK_EAST),
            scenario.snapshot_date,
        )
        assert analysis.complementary
        assert not any(analysis.connected_alone.values())
        assert analysis.joint_latency_ms == pytest.approx(3.967, abs=0.01)

    def test_unrelated_pair_is_not_complementary(self, scenario):
        analysis = joint_analysis(
            scenario.database,
            scenario.corridor,
            ("Great Lakes Wave", "Prairie Wireless Transit"),
            scenario.snapshot_date,
        )
        assert not analysis.complementary

    def test_joining_a_connected_network_is_not_complementary(self, scenario):
        analysis = joint_analysis(
            scenario.database,
            scenario.corridor,
            ("New Line Networks", SPLIT_NETWORK_WEST),
            scenario.snapshot_date,
        )
        assert analysis.jointly_connected  # NLN alone suffices
        assert not analysis.complementary

    def test_requires_two_licensees(self, scenario):
        with pytest.raises(ValueError):
            joint_analysis(
                scenario.database,
                scenario.corridor,
                ("New Line Networks",),
                scenario.snapshot_date,
            )


class TestResolveEntities:
    def test_finds_exactly_the_planted_entity(self, scenario):
        resolved = resolve_entities(
            scenario.database, scenario.corridor, scenario.snapshot_date
        )
        assert len(resolved) == 1
        entity = resolved[0]
        assert set(entity.licensees) == {SPLIT_NETWORK_WEST, SPLIT_NETWORK_EAST}
        assert entity.domain == SPLIT_NETWORK_EMAIL.rpartition("@")[2]
        assert entity.analysis.joint_latency_ms is not None

    def test_hidden_network_would_rank_midpack(self, scenario):
        # The joint Tradewave network slots between JM (3.96597) and
        # BC (3.96940) — invisible to the paper's per-licensee Table 1.
        (entity,) = resolve_entities(
            scenario.database, scenario.corridor, scenario.snapshot_date
        )
        assert 3.96597 < entity.analysis.joint_latency_ms < 3.96940


class TestComplementaryPairs:
    def test_geometric_search_finds_the_pair(self, scenario, funnel_result):
        not_connected = [
            name
            for name in funnel_result.shortlisted_licensees
            if name not in funnel_result.connected_licensees
        ]
        candidates = not_connected + [SPLIT_NETWORK_EAST]
        pairs = complementary_pairs(
            scenario.database,
            scenario.corridor,
            candidates,
            scenario.snapshot_date,
        )
        assert any(
            set(p.licensees) == {SPLIT_NETWORK_WEST, SPLIT_NETWORK_EAST}
            for p in pairs
        )

    def test_connected_members_are_skipped(self, scenario):
        pairs = complementary_pairs(
            scenario.database,
            scenario.corridor,
            ["New Line Networks", "Webline Holdings"],
            scenario.snapshot_date,
        )
        assert pairs == []
