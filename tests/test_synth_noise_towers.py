"""Tests for noise and tower-placement primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesy import GeoPoint, geodesic_distance
from repro.geodesy.path import cross_track_distance, polyline_length
from repro.synth.noise import SmoothNoise
from repro.synth.towers import (
    bypass_point,
    chain_points,
    route_lengths_km,
    spacing_fractions,
)

A = GeoPoint(41.7580, -88.1801)
B = GeoPoint(40.7773, -74.0700)


class TestSmoothNoise:
    def test_deterministic_per_seed(self):
        n1, n2 = SmoothNoise(42), SmoothNoise(42)
        assert [n1(t / 10) for t in range(11)] == [n2(t / 10) for t in range(11)]

    def test_seeds_differ(self):
        n1, n2 = SmoothNoise(1), SmoothNoise(2)
        assert any(abs(n1(t / 10) - n2(t / 10)) > 1e-6 for t in range(11))

    @given(st.integers(0, 10_000), st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_bounded(self, seed, t):
        assert abs(SmoothNoise(seed)(t)) <= 1.0 + 1e-12

    def test_tapered_zero_at_ends(self):
        noise = SmoothNoise(7)
        assert noise.tapered(0.0) == 0.0
        assert noise.tapered(1.0) == pytest.approx(0.0, abs=1e-12)

    def test_tapered_domain(self):
        with pytest.raises(ValueError):
            SmoothNoise(7).tapered(1.5)

    def test_requires_octave(self):
        with pytest.raises(ValueError):
            SmoothNoise(1, octaves=0)


class TestSpacing:
    def test_uniform(self):
        fractions = spacing_fractions(4)
        assert fractions == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_always_ends_at_one(self):
        for profile in ("uniform", "mixed", "jittered"):
            assert spacing_fractions(7, profile, seed=3)[-1] == 1.0

    def test_monotone(self):
        fractions = spacing_fractions(20, "mixed", seed=5)
        assert all(a < b for a, b in zip(fractions, fractions[1:]))

    def test_mixed_has_two_hop_lengths(self):
        fractions = [0.0] + spacing_fractions(20, "mixed", seed=5, length_ratio=2.0)
        hops = [b - a for a, b in zip(fractions, fractions[1:])]
        distinct = sorted(set(round(h, 9) for h in hops))
        assert len(distinct) == 2
        assert distinct[1] / distinct[0] == pytest.approx(2.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            spacing_fractions(0)
        with pytest.raises(ValueError):
            spacing_fractions(5, "bogus")
        with pytest.raises(ValueError):
            spacing_fractions(5, "mixed", short_fraction=1.5)
        with pytest.raises(ValueError):
            spacing_fractions(5, "mixed", length_ratio=0.9)


class TestChainPoints:
    def test_endpoints_exact(self):
        chain = chain_points(A, B, 10, 3_000.0, SmoothNoise(1))
        assert chain[0] is A and chain[-1] is B
        assert len(chain) == 11

    def test_zero_amplitude_lies_on_geodesic(self):
        chain = chain_points(A, B, 10, 0.0, SmoothNoise(1))
        for point in chain[1:-1]:
            assert cross_track_distance(point, A, B) < 10.0

    def test_amplitude_monotone_in_length(self):
        noise = SmoothNoise(1)
        lengths = [
            polyline_length(chain_points(A, B, 24, amp, noise))
            for amp in (0.0, 5_000.0, 20_000.0, 60_000.0)
        ]
        assert all(x < y for x, y in zip(lengths, lengths[1:]))

    def test_route_lengths_helper(self):
        chain = chain_points(A, B, 5, 0.0, SmoothNoise(1))
        lengths = route_lengths_km(chain)
        assert len(lengths) == 5
        assert sum(lengths) == pytest.approx(
            geodesic_distance(A, B) / 1000.0, rel=1e-6
        )


class TestBypassPoint:
    def test_detour_strictly_longer(self):
        mid = chain_points(A, B, 2, 0.0, SmoothNoise(1))[1]
        bypass = bypass_point(A, mid, 4_000.0)
        direct = geodesic_distance(A, mid)
        detour = geodesic_distance(A, bypass) + geodesic_distance(bypass, mid)
        assert detour > direct

    def test_rejects_zero_offset(self):
        with pytest.raises(ValueError):
            bypass_point(A, B, 0.0)
