"""Tests for link-length / frequency metrics and rankings on the
calibrated scenario (integration-level) and small fixtures."""

from __future__ import annotations

import pytest

from repro.metrics.cdf import EmpiricalCdf
from repro.metrics.frequencies import (
    alternate_path_frequencies_ghz,
    fraction_below_ghz,
    frequency_cdf,
    shortest_path_frequencies_ghz,
)
from repro.metrics.link_lengths import (
    link_length_cdf,
    median_link_length_km,
    near_optimal_link_lengths_km,
)
from repro.metrics.rankings import latency_gap_us, rank_connected_networks


class TestLinkLengths:
    def test_methods_agree_on_nln(self, nln_network):
        by_edges = sorted(near_optimal_link_lengths_km(nln_network, "CME", "NY4"))
        by_enumeration = sorted(
            near_optimal_link_lengths_km(
                nln_network, "CME", "NY4", method="enumerate"
            )
        )
        assert by_edges == pytest.approx(by_enumeration)

    def test_unknown_method_rejected(self, nln_network):
        with pytest.raises(ValueError):
            near_optimal_link_lengths_km(nln_network, "CME", "NY4", method="magic")

    def test_fig4a_medians_match_paper_shape(self, nln_network, wh_network):
        nln_median = median_link_length_km(nln_network, "CME", "NY4")
        wh_median = median_link_length_km(wh_network, "CME", "NY4")
        # Paper: WH 36 km is ~26% lower than NLN 48.5 km.
        assert wh_median < nln_median
        assert nln_median == pytest.approx(48.5, abs=2.5)
        assert wh_median == pytest.approx(36.0, abs=2.5)

    def test_lengths_include_bypass_links(self, nln_network):
        lengths = near_optimal_link_lengths_km(nln_network, "CME", "NY4")
        route = nln_network.lowest_latency_route("CME", "NY4")
        mw_hops = sum(
            1
            for u, v in zip(route.nodes, route.nodes[1:])
            if nln_network.graph.edges[u, v]["medium"] == "microwave"
        )
        assert len(lengths) > mw_hops  # alternates contribute

    def test_cdf_raises_when_no_links(self, scenario, reconstructor):
        network = reconstructor.reconstruct(
            [], scenario.snapshot_date, licensee="Empty"
        )
        with pytest.raises(ValueError):
            link_length_cdf(network, "CME", "NY4")


class TestFrequencies:
    def test_nln_trunk_is_11ghz(self, nln_network):
        freqs = shortest_path_frequencies_ghz(nln_network, "CME", "NY4")
        assert freqs
        assert all(10.5 <= f <= 12.0 for f in freqs)

    def test_wh_mostly_under_7ghz(self, wh_network):
        freqs = shortest_path_frequencies_ghz(wh_network, "CME", "NY4")
        assert fraction_below_ghz(freqs, 7.0) >= 0.94  # paper: "more than 94%"

    def test_nln_alternate_has_6ghz_share(self, nln_network):
        freqs = alternate_path_frequencies_ghz(nln_network, "CME", "NY4")
        assert fraction_below_ghz(freqs, 7.0) >= 0.18  # paper: "at least 18%"

    def test_alternate_and_shortest_disjoint_edges(self, nln_network):
        # Frequencies exist for both, and the alternate sample is not
        # simply the shortest-path sample again.
        shortest = shortest_path_frequencies_ghz(nln_network, "CME", "NY4")
        alternate = alternate_path_frequencies_ghz(nln_network, "CME", "NY4")
        assert shortest and alternate
        assert min(alternate) < min(shortest)  # 6 GHz appears only off-path

    def test_disconnected_network_yields_empty(self, scenario, reconstructor):
        network = reconstructor.reconstruct(
            [], scenario.snapshot_date, licensee="Empty"
        )
        assert shortest_path_frequencies_ghz(network, "CME", "NY4") == []
        assert alternate_path_frequencies_ghz(network, "CME", "NY4") == []

    def test_frequency_cdf_requires_data(self):
        with pytest.raises(ValueError):
            frequency_cdf([])
        cdf = frequency_cdf([6.0, 11.0])
        assert isinstance(cdf, EmpiricalCdf)


class TestRankings:
    def test_rankings_sorted_by_latency(self, scenario):
        rankings = rank_connected_networks(
            scenario.database, scenario.corridor, scenario.snapshot_date
        )
        latencies = [r.latency_ms for r in rankings]
        assert latencies == sorted(latencies)

    def test_restricting_licensees(self, scenario):
        rankings = rank_connected_networks(
            scenario.database,
            scenario.corridor,
            scenario.snapshot_date,
            licensees=["New Line Networks", "Webline Holdings", "Great Lakes Wave"],
        )
        assert [r.licensee for r in rankings] == [
            "New Line Networks",
            "Webline Holdings",
        ]

    def test_latency_gap_us(self, scenario):
        rankings = rank_connected_networks(
            scenario.database, scenario.corridor, scenario.snapshot_date
        )
        gap = latency_gap_us(rankings[0], rankings[1])
        # Paper: NLN leads PB by ~0.4 us on CME-NY4.
        assert gap == pytest.approx(0.38, abs=0.15)

    def test_as_row(self, scenario):
        ranking = rank_connected_networks(
            scenario.database, scenario.corridor, scenario.snapshot_date
        )[0]
        row = ranking.as_row()
        assert row[0] == "New Line Networks"
        assert isinstance(row[1], float)
