"""Tests for the SVG chart renderer and the paper-figure renderings."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.figures import (
    fig1_latency_evolution,
    fig2_active_licenses,
    fig4a_link_length_cdfs,
    fig4b_frequency_cdfs,
    fig5_leo_comparison,
)
from repro.viz.charts import SvgChart, nice_ticks
from repro.viz.paperfigs import (
    fig1_chart,
    fig2_chart,
    fig4a_chart,
    fig4b_chart,
    fig5_chart,
)


class TestNiceTicks:
    def test_unit_range(self):
        assert nice_ticks(0.0, 1.0) == pytest.approx([0.0, 0.2, 0.4, 0.6, 0.8, 1.0])

    def test_covers_range(self):
        ticks = nice_ticks(3.95, 4.05)
        assert ticks[0] >= 3.95 and ticks[-1] <= 4.05001
        assert len(ticks) >= 3

    def test_degenerate_range(self):
        ticks = nice_ticks(5.0, 5.0)
        assert ticks  # expands to a unit span instead of crashing

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            nice_ticks(float("nan"), 1.0)

    def test_large_magnitudes(self):
        ticks = nice_ticks(0.0, 8000.0)
        assert all(t % 1000 == 0 or t % 2000 == 0 for t in ticks)


class TestSvgChart:
    def _chart(self) -> SvgChart:
        chart = SvgChart(title="T", x_label="X", y_label="Y")
        chart.add_line("a", [(0.0, 0.0), (1.0, 2.0)])
        chart.add_cdf("b", [1.0, 2.0, 2.0, 3.0])
        return chart

    def test_renders_well_formed_xml(self):
        root = ET.fromstring(self._chart().render())
        assert root.tag.endswith("svg")

    def test_contains_series_and_labels(self):
        text = self._chart().render()
        assert text.count("<polyline") == 2
        for token in ("T", "X", "Y", ">a<", ">b<"):
            assert token in text

    def test_line_series_has_markers(self):
        text = self._chart().render()
        assert text.count("<circle") == 2  # only the line series gets markers

    def test_empty_series_rejected(self):
        chart = SvgChart(title="T", x_label="X", y_label="Y")
        with pytest.raises(ValueError):
            chart.add_line("a", [])
        with pytest.raises(ValueError):
            chart.render()

    def test_writes_file(self, tmp_path):
        path = tmp_path / "chart.svg"
        self._chart().render(path)
        assert path.read_text().startswith("<svg")

    def test_fixed_ranges_respected(self):
        chart = SvgChart(
            title="T", x_label="X", y_label="Y", y_range=(3.95, 4.05)
        )
        chart.add_line("a", [(2013.0, 4.0), (2020.0, 3.96)])
        text = chart.render()
        assert "3.96" in text  # tick labels from the fixed range
        assert "4.04" in text


class TestPaperFigureCharts:
    def test_fig1(self, scenario, tmp_path):
        chart = fig1_chart(fig1_latency_evolution(scenario))
        text = chart.render(tmp_path / "fig1.svg")
        # Paper's legend names appear; PB has a (short) series.
        for name in ("New Line Networks", "Pierce Broadband"):
            assert name in text
        ET.fromstring(text)

    def test_fig2(self, scenario):
        text = fig2_chart(fig2_active_licenses(scenario)).render()
        assert "No. of active licenses" in text
        ET.fromstring(text)

    def test_fig4a(self, scenario):
        text = fig4a_chart(fig4a_link_length_cdfs(scenario)).render()
        assert ">WH<" in text and ">NLN<" in text
        ET.fromstring(text)

    def test_fig4b(self, scenario):
        text = fig4b_chart(fig4b_frequency_cdfs(scenario)).render()
        assert "NLN-alternate" in text
        ET.fromstring(text)

    def test_fig5(self):
        text = fig5_chart(fig5_leo_comparison()).render()
        assert "Terrestrial MW" in text and "Fiber" in text
        ET.fromstring(text)
