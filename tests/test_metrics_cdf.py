"""Tests for empirical CDF utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.cdf import EmpiricalCdf, cdf_series

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestBasics:
    def test_requires_values(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([1.0, float("nan")])

    def test_simple_quartiles(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0
        assert cdf(9.0) == 1.0

    def test_median_definitions(self):
        assert EmpiricalCdf([1, 2, 3]).median == 2
        assert EmpiricalCdf([1, 2, 3, 4]).median == 2  # lower median

    def test_quantile_bounds(self):
        cdf = EmpiricalCdf([5.0])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)
        assert cdf.quantile(1.0) == 5.0

    def test_fraction_below_strict_vs_at_most(self):
        cdf = EmpiricalCdf([6.0, 6.0, 11.0, 11.0])
        assert cdf.fraction_below(6.0) == 0.0
        assert cdf.fraction_at_most(6.0) == 0.5
        assert cdf.fraction_below(7.0) == 0.5

    def test_step_points_collapse_duplicates(self):
        points = EmpiricalCdf([1.0, 1.0, 2.0]).step_points()
        assert points == [(1.0, pytest.approx(2 / 3)), (2.0, pytest.approx(1.0))]

    def test_cdf_series_helper(self):
        assert cdf_series([3.0, 1.0]) == [(1.0, 0.5), (3.0, 1.0)]


class TestProperties:
    @given(samples)
    @settings(max_examples=100, deadline=None)
    def test_monotone_and_bounded(self, values):
        cdf = EmpiricalCdf(values)
        probes = sorted(values)
        evaluations = [cdf(x) for x in probes]
        assert all(0.0 <= e <= 1.0 for e in evaluations)
        assert all(a <= b for a, b in zip(evaluations, evaluations[1:]))
        assert cdf(max(values)) == 1.0

    @given(samples, st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_quantile_inverts_cdf(self, values, q):
        cdf = EmpiricalCdf(values)
        value = cdf.quantile(q)
        assert cdf(value) >= q
        assert value in values

    @given(samples)
    @settings(max_examples=50, deadline=None)
    def test_step_points_end_at_one(self, values):
        points = EmpiricalCdf(values).step_points()
        assert points[-1][1] == pytest.approx(1.0)
        xs = [x for x, _ in points]
        assert xs == sorted(set(xs))
