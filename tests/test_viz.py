"""Tests for SVG maps, GeoJSON export, and figure data files."""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET

import pytest

from repro.viz.figdata import write_cdf_dat, write_series_dat
from repro.viz.geojson import network_to_geojson
from repro.viz.svgmap import render_network_svg


class TestSvg:
    def test_renders_well_formed_xml(self, nln_network):
        text = render_network_svg(nln_network)
        root = ET.fromstring(text)
        assert root.tag.endswith("svg")

    def test_contains_expected_elements(self, nln_network):
        text = render_network_svg(nln_network)
        assert text.count("<circle") == nln_network.tower_count
        assert text.count("<line") == nln_network.link_count + len(
            nln_network.fiber_tails
        )
        assert "<polyline" in text  # highlighted route
        assert "New Line Networks" in text

    def test_route_highlight_optional(self, nln_network):
        text = render_network_svg(nln_network, highlight_route=None)
        assert "<polyline" not in text

    def test_writes_file(self, nln_network, tmp_path):
        path = tmp_path / "map.svg"
        render_network_svg(nln_network, path=path)
        assert path.read_text().startswith("<svg")

    def test_rejects_empty_network(self, scenario, reconstructor):
        network = reconstructor.reconstruct(
            [], scenario.snapshot_date, licensee="Empty"
        )
        # Data centers alone still project (4 points) — should not raise.
        text = render_network_svg(network)
        assert "<svg" in text


class TestGeoJson:
    def test_schema(self, nln_network):
        collection = network_to_geojson(nln_network)
        assert collection["type"] == "FeatureCollection"
        kinds = {f["properties"]["kind"] for f in collection["features"]}
        assert kinds == {"datacenter", "tower", "microwave", "fiber"}

    def test_counts(self, nln_network):
        collection = network_to_geojson(nln_network)
        towers = [
            f for f in collection["features"] if f["properties"]["kind"] == "tower"
        ]
        links = [
            f for f in collection["features"] if f["properties"]["kind"] == "microwave"
        ]
        assert len(towers) == nln_network.tower_count
        assert len(links) == nln_network.link_count

    def test_lonlat_order(self, nln_network):
        collection = network_to_geojson(nln_network)
        cme = next(
            f
            for f in collection["features"]
            if f["properties"].get("name") == "CME"
        )
        lon, lat = cme["geometry"]["coordinates"]
        assert lon == pytest.approx(-88.1801) and lat == pytest.approx(41.758)

    def test_json_serialisable_and_written(self, nln_network, tmp_path):
        path = tmp_path / "net.geojson"
        collection = network_to_geojson(nln_network, path=path)
        loaded = json.loads(path.read_text())
        assert loaded["properties"]["licensee"] == collection["properties"]["licensee"]


class TestFigData:
    def test_series_blocks(self, tmp_path):
        path = tmp_path / "fig1.dat"
        write_series_dat(
            path,
            {"NLN": [(2016.0, 3.98), (2020.0, 3.96)], "WH": [(2013.0, 4.03)]},
            header="Fig 1\nlatency ms",
        )
        text = path.read_text()
        assert '# series: "NLN"' in text
        assert "# Fig 1" in text
        assert "2016.000000 3.980000" in text

    def test_cdf_blocks(self, tmp_path):
        path = tmp_path / "fig4a.dat"
        write_cdf_dat(path, {"WH": [36.0, 36.0, 60.0], "NLN": [48.5]})
        text = path.read_text()
        assert '# series: "WH"' in text
        lines = [
            line
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        # WH collapses the duplicate 36.0 into one step.
        assert lines[0].split()[0] == "36.000000"
        assert float(lines[0].split()[1]) == pytest.approx(2 / 3)


class TestCorridorOverview:
    def test_renders_all_networks(self, scenario, reconstructor, snapshot_date):
        import xml.etree.ElementTree as ET

        from repro.viz.svgmap import render_corridor_svg

        networks = [
            reconstructor.reconstruct_licensee(scenario.database, name, snapshot_date)
            for name in ("New Line Networks", "Webline Holdings")
        ]
        text = render_corridor_svg(networks)
        ET.fromstring(text)
        assert "New Line Networks" in text and "Webline Holdings" in text
        total_links = sum(network.link_count for network in networks)
        assert text.count("<line") == total_links + 2  # + 2 legend swatches

    def test_rejects_empty(self):
        import pytest as _pytest

        from repro.viz.svgmap import render_corridor_svg

        with _pytest.raises(ValueError):
            render_corridor_svg([])
