"""Regression test for the ``hash(name)`` seed bug (repro.lint's catch).

``_split_half_licenses`` used to seed its RNG with ``hash(name)`` — the
builtin string hash is randomised per process (``PYTHONHASHSEED``), so the
"deterministic" synthetic licenses could differ between two interpreter
runs.  The seed is now a stable CRC-32 digest; this test pins the whole
scenario's byte-level determinism by generating it in two subprocesses
with *different* hash seeds and comparing full ULS-dump serialisations.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The child generates the split-network and funnel licenses (the code
#: paths seeded per licensee *name*) plus one calibrated network build,
#: serialises everything with the pipe-delimited ULS dump writer, and
#: prints a digest of the exact bytes.
_CHILD_SCRIPT = """
import hashlib
from repro.core.corridor import chicago_nj_corridor
from repro.synth.scenario import (
    decoy_licenses,
    partial_builder_licenses,
    split_network_east_licenses,
    split_network_west_licenses,
)
from repro.uls.dumpio import dumps

corridor = chicago_nj_corridor()
licenses = (
    split_network_west_licenses(corridor)
    + split_network_east_licenses(corridor)
    + partial_builder_licenses(corridor)
    + decoy_licenses(corridor)
)
payload = dumps(licenses).encode()
print(hashlib.sha256(payload).hexdigest())
"""


def _generate_digest(hash_seed: str) -> str:
    process = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PYTHONHASHSEED": hash_seed,
            "PATH": "/usr/bin:/bin",
        },
    )
    assert process.returncode == 0, process.stderr
    return process.stdout.strip()


@pytest.mark.parametrize("seeds", [("0", "1")])
def test_generation_identical_across_hash_seeds(seeds):
    """Byte-identical license generation under PYTHONHASHSEED=0 and =1."""
    first, second = (_generate_digest(seed) for seed in seeds)
    assert first == second


def test_string_hash_actually_differs_across_child_processes():
    """Sanity check that the harness exercises what it claims: the builtin
    string hash *does* differ between the two child environments, so equal
    digests above cannot be explained by equal hash() values."""
    script = "print(hash('Midwest Relay Partners'))"
    values = set()
    for seed in ("0", "1"):
        process = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
        )
        assert process.returncode == 0, process.stderr
        values.add(process.stdout.strip())
    assert len(values) == 2
