"""Tests for the analysis drivers (funnel, figures, ablations, report)."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.analysis.ablations import (
    apa_slack_sweep,
    fiber_mode_comparison,
    fiber_radius_sweep,
    per_tower_overhead_crossover,
    stitch_tolerance_sweep,
)
from repro.analysis.figures import fig3_network_maps, fig5_leo_comparison
from repro.analysis.funnel import run_scraping_funnel
from repro.analysis.report import format_latency_ms, format_table


class TestFunnelDriver:
    def test_stage_sets_nest(self, funnel_result):
        result = funnel_result
        assert set(result.connected_licensees) <= set(result.shortlisted_licensees)
        assert set(result.shortlisted_licensees) <= set(result.candidate_licensees)
        assert result.pages_scraped > 0

    def test_ntc_shortlisted_but_not_connected(self, funnel_result):
        assert "National Tower Company" in funnel_result.shortlisted_licensees
        assert "National Tower Company" not in funnel_result.connected_licensees

    def test_ntc_was_connected_in_2015(self, scenario, engine):
        result = run_scraping_funnel(
            scenario.database,
            scenario.corridor,
            dt.date(2015, 6, 1),
            engine=engine,
        )
        assert "National Tower Company" in result.connected_licensees


class TestFig3Driver:
    def test_writes_both_snapshots(self, scenario, tmp_path):
        artifacts = fig3_network_maps(scenario, output_dir=tmp_path)
        assert len(artifacts) == 2
        for artifact in artifacts:
            assert artifact.svg_path.exists()
            assert artifact.geojson_path.exists()
        # The 2020 network is visibly bigger than the 2016 one (Fig 3).
        assert artifacts[1].tower_count > artifacts[0].tower_count
        assert artifacts[1].link_count > artifacts[0].link_count

    def test_dry_run_without_output_dir(self, scenario):
        artifacts = fig3_network_maps(scenario)
        assert all(a.svg_path is None for a in artifacts)


class TestFig5Driver:
    def test_default_sweep(self):
        points = fig5_leo_comparison()
        assert len(points) == 32
        assert points[0].distance_km == 250.0
        assert all(p.microwave_ms < p.leo_550_ms for p in points)


class TestAblations:
    def test_apa_slack_monotone(self, scenario):
        sweep = apa_slack_sweep(scenario)
        values = [sweep[s] for s in sorted(sweep)]
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert sweep[1.05] == 54  # the paper's operating point

    def test_fiber_mode_all_inflates_apa(self, scenario):
        comparison = fiber_mode_comparison(scenario)
        assert comparison["all"] > comparison["nearest"]
        assert comparison["nearest"] == 54

    def test_overhead_crossover_at_14us(self, scenario):
        results = per_tower_overhead_crossover(scenario)
        by_overhead = {r.overhead_us: r.leader for r in results}
        assert by_overhead[0.0] == "New Line Networks"
        assert by_overhead[1.0] == "New Line Networks"
        # Paper §3: above ~1.4 µs/tower JM's 22-tower path wins.
        assert by_overhead[2.0] == "Jefferson Microwave"
        assert by_overhead[3.0] == "Jefferson Microwave"

    def test_stitch_tolerance_extremes(self, scenario):
        sweep = stitch_tolerance_sweep(scenario)
        towers_30, connected_30 = sweep[30.0]
        assert connected_30
        # A 1 km tolerance merges bypass towers' neighbours?  No — bypasses
        # sit 4 km off; but towers must not collapse below the trunk count.
        towers_1000, _ = sweep[1000.0]
        assert towers_1000 <= towers_30

    def test_fiber_radius_sweep_monotone(self, scenario):
        sweep = fiber_radius_sweep(scenario, radii_km=(0.3, 1.0, 50.0))
        counts = [sweep[r] for r in sorted(sweep)]
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        assert sweep[50.0] == 9
        # With almost no fiber reach, no network can touch the exchanges.
        assert sweep[0.3] == 0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(("A", "Name"), [(1, "x"), (22, "longer")])
        lines = text.splitlines()
        assert lines[0].startswith("A ")
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("A",), [(1, 2)])

    def test_format_latency(self):
        assert format_latency_ms(3.961714) == "3.96171"
        assert format_latency_ms(None) == "—"
        assert format_latency_ms(3.9617, 2) == "3.96"
