"""Incremental snapshot evolution: cursor-based resolution must be
indistinguishable from full fingerprint rescans.

The tentpole claims of this layer:

* an incrementally-evolved timeline is element-wise identical to a
  per-date full rebuild (``incremental=False``);
* on dense date grids the vast majority (>80%) of snapshot resolutions
  are served incrementally;
* empty deltas reuse the cached network object outright;
* the CLI's ``--no-incremental`` escape hatch is byte-identical,
  enforced here through real subprocesses at more than one ``--jobs``
  width.
"""

from __future__ import annotations

import datetime as dt
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.engine import CorridorEngine
from repro.core.timeline import dense_date_grid
from repro.uls.database import UlsDatabase
from tests.conftest import make_license

_LICENSEES = (
    "New Line Networks",
    "Webline Holdings",
    "Jefferson Microwave",
    "Pierce Broadband",
)

MONTHLY = dense_date_grid("monthly")


def _engines(scenario):
    return (
        CorridorEngine(scenario.database, scenario.corridor, incremental=True),
        CorridorEngine(scenario.database, scenario.corridor, incremental=False),
    )


class TestEquivalence:
    def test_timeline_identical_to_full_rebuild(self, scenario):
        incremental, full = _engines(scenario)
        for name in _LICENSEES:
            a = incremental.timeline(name, MONTHLY)
            b = full.timeline(name, MONTHLY)
            assert len(a) == len(b) == len(MONTHLY)
            for pa, pb in zip(a, b):
                assert pa == pb

    def test_fingerprints_agree_with_scan(self, scenario):
        incremental, full = _engines(scenario)
        for name in _LICENSEES:
            for date in MONTHLY[::7]:
                assert incremental.active_fingerprint(
                    name, date
                ) == full.active_fingerprint(name, date)

    def test_snapshot_key_pure_and_mode_invariant(self, scenario):
        incremental, full = _engines(scenario)
        date = dt.date(2018, 6, 1)
        key_i = incremental.snapshot_key("New Line Networks", date)
        key_f = full.snapshot_key("New Line Networks", date)
        assert key_i == key_f
        # snapshot_key is an inspection helper: it must not move the
        # resolution counters or create cursors.
        assert incremental.stats.snapshot_incremental == 0
        assert incremental.stats.snapshot_full == 0


class TestIncrementalShare:
    def test_dense_grid_mostly_incremental(self, scenario):
        engine, _ = _engines(scenario)
        for name in _LICENSEES:
            engine.timeline(name, MONTHLY)
        stats = engine.stats
        total = stats.snapshot_incremental + stats.snapshot_full
        assert total == len(_LICENSEES) * len(MONTHLY)
        # Only the first touch of each licensee resolves fully.
        assert stats.snapshot_full == len(_LICENSEES)
        assert stats.incremental_share > 0.80

    def test_obs_counters_mirror_stats(self, scenario):
        from repro import obs

        engine, _ = _engines(scenario)
        with obs.capture() as captured:
            engine.timeline("New Line Networks", MONTHLY)
        counters = captured.counters()
        assert counters["engine.snapshot.incremental"] == len(MONTHLY) - 1
        assert counters["engine.snapshot.full"] == 1

    def test_full_mode_counts_only_full(self, scenario):
        _, full = _engines(scenario)
        full.timeline("New Line Networks", MONTHLY[:12])
        assert full.stats.snapshot_incremental == 0
        assert full.stats.snapshot_full == 12
        assert full.stats.incremental_share == 0.0


class TestEmptyDeltaReuse:
    def test_unchanged_window_reuses_network_object(self, scenario):
        engine, _ = _engines(scenario)
        name = "New Line Networks"
        # Two dates inside the same constant-active-set interval must hit
        # the same snapshot key and return the identical cached object.
        index = scenario.database.temporal_index(name)
        d1 = dt.date(2018, 3, 5)
        d2 = dt.date(2018, 3, 25)
        assert index.diff(d1, d2).is_empty  # guard: interval really is quiet
        n1 = engine.snapshot(name, d1)
        n2 = engine.snapshot(name, d2)
        # One stitch served both dates: the second call resolved
        # incrementally (empty delta, key reused) and hit the snapshot
        # cache instead of reconstructing.
        assert n2.as_of == d2
        assert n1.towers == n2.towers
        assert list(n1.links) == list(n2.links)
        stats = engine.stats
        assert stats.snapshot.hits == 1
        assert stats.snapshot.misses == 1
        assert stats.snapshot_incremental == 1
        assert stats.snapshot_full == 1

    def test_describe_reports_split_and_events(self, scenario):
        engine, _ = _engines(scenario)
        engine.timeline("New Line Networks", MONTHLY[:6])
        text = engine.stats.describe()
        assert "snapshot resolutions:" in text
        assert "incremental=5" in text
        assert "full=1" in text
        assert "incremental-share=" in text
        assert "temporal index: events=" in text
        assert engine.stats.index_events == scenario.database.temporal_index().event_count


class TestStaleness:
    def test_database_mutation_invalidates_cursors(self):
        db = UlsDatabase(
            [make_license("L1", licensee="Solo", grant=dt.date(2015, 1, 1))]
        )
        from repro.core.corridor import chicago_nj_corridor

        engine = CorridorEngine(db, chicago_nj_corridor(), incremental=True)
        d = dt.date(2016, 1, 1)
        fp1 = engine.active_fingerprint("Solo", d)
        engine.snapshot("Solo", d)
        db.add(make_license("L2", licensee="Solo", grant=dt.date(2015, 6, 1)))
        fp2 = engine.active_fingerprint("Solo", d)
        assert fp1 == {"L1"}
        assert fp2 == {"L1", "L2"}
        # The stale cursor must not be consulted: the post-mutation
        # resolution is a full one under the new generation.
        full_before = engine.stats.snapshot_full
        engine.snapshot("Solo", d)
        assert engine.stats.snapshot_full == full_before + 1
        network = engine.snapshot("Solo", d)
        assert network.tower_count > 0


class TestCursorTransplant:
    def test_export_and_seed_carry_cursors(self, scenario):
        engine, _ = _engines(scenario)
        engine.timeline("New Line Networks", MONTHLY[:10])
        export = engine.export_cache_state()
        assert export.cursors
        (licensee, date, key, generation) = export.cursors[0]
        assert licensee == "New Line Networks"
        assert date == MONTHLY[9]
        assert generation == scenario.database.generation

        sibling = CorridorEngine(
            scenario.database, scenario.corridor, incremental=True
        )
        sibling.seed_cache_state(export)
        # The seeded cursor serves the next resolution incrementally.
        sibling.snapshot("New Line Networks", MONTHLY[10])
        assert sibling.stats.snapshot_full == 0
        assert sibling.stats.snapshot_incremental == 1

    def test_geodesic_only_export_has_no_cursors(self, scenario):
        engine, _ = _engines(scenario)
        engine.timeline("New Line Networks", MONTHLY[:4])
        export = engine.export_cache_state(geodesic_only=True)
        assert export.cursors == ()

    def test_delta_absorption_adopts_cursors_and_counters(self, scenario):
        engine, _ = _engines(scenario)
        baseline = engine.cache_baseline()
        engine.timeline("Webline Holdings", MONTHLY[:8])
        delta = engine.collect_cache_delta(baseline)
        assert delta.stats.snapshot_incremental == 7
        assert delta.stats.snapshot_full == 1
        assert delta.cursors

        parent = CorridorEngine(
            scenario.database, scenario.corridor, incremental=True
        )
        parent.absorb_cache_delta(delta)
        assert parent.stats.snapshot_incremental == 7
        assert parent.stats.snapshot_full == 1
        parent.snapshot("Webline Holdings", MONTHLY[8])
        assert parent.stats.snapshot_full == 1  # cursor reused, no full


class TestWithParams:
    def test_with_params_preserves_mode(self, scenario):
        engine = CorridorEngine(
            scenario.database, scenario.corridor, incremental=False
        )
        derived = engine.with_params(stitch_tolerance_m=5.0)
        assert derived.incremental is False
        derived2 = _engines(scenario)[0].with_params(stitch_tolerance_m=5.0)
        assert derived2.incremental is True


class TestCliByteIdentity:
    """--no-incremental must be invisible in stdout at any --jobs width."""

    @staticmethod
    def _run(*extra: str) -> bytes:
        root = Path(__file__).resolve().parent.parent
        env = dict(os.environ, PYTHONPATH=str(root / "src"))
        result = subprocess.run(
            [sys.executable, "-m", "repro", "timeline", *extra],
            capture_output=True,
            env=env,
            cwd=root,
            check=True,
        )
        return result.stdout

    @pytest.mark.parametrize("jobs", ["1", "2"])
    def test_timeline_byte_identical(self, jobs):
        base = ("--step", "monthly", "--jobs", jobs)
        assert self._run(*base) == self._run(*base, "--no-incremental")
