"""The query service's payloads, validation and structured fault paths.

Transport-free: these tests drive :class:`CorridorQueryService` directly
(`handle_url`), so they pin the service contract — payload shapes,
defaults, error codes — without a socket in the loop.  The HTTP layer's
behaviour is pinned in ``tests/test_serve_http.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.metrics.rankings import rank_connected_networks
from repro.serve.payloads import (
    DATE_MAX,
    DATE_MIN,
    render_payload,
    timeline_dates,
)
from repro.serve.service import CorridorQueryService, ServiceError, parse_request


class TestParseRequest:
    def test_splits_path_and_params(self):
        path, params = parse_request("/rankings?date=2019-01-01&source=CME")
        assert path == "/rankings"
        assert params == {"date": "2019-01-01", "source": "CME"}

    def test_no_query(self):
        assert parse_request("/apa") == ("/apa", {})

    def test_percent_decoding(self):
        _, params = parse_request("/timeline?licensee=New%20Line%20Networks")
        assert params == {"licensee": "New Line Networks"}

    def test_duplicate_param_rejected(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_request("/rankings?date=2019-01-01&date=2020-01-01")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "duplicate-param"


class TestEndpointPayloads:
    def test_healthz(self, serve_service):
        status, payload = serve_service.handle_url("/healthz")
        assert (status, payload) == (200, {"status": "ok", "warm": True})

    def test_rankings_matches_metrics_layer(self, serve_service, scenario, engine):
        status, payload = serve_service.handle_url("/rankings")
        assert status == 200
        expected = rank_connected_networks(
            scenario.database,
            scenario.corridor,
            scenario.snapshot_date,
            engine=engine,
        )
        assert payload["date"] == scenario.snapshot_date.isoformat()
        assert [r["licensee"] for r in payload["rankings"]] == [
            r.licensee for r in expected
        ]
        assert [r["latency_ms"] for r in payload["rankings"]] == [
            r.latency_ms for r in expected
        ]

    def test_rankings_respects_date_param(self, serve_service):
        _, at_2016 = serve_service.handle_url("/rankings?date=2016-06-01")
        _, at_default = serve_service.handle_url("/rankings")
        assert at_2016["date"] == "2016-06-01"
        assert at_2016["rankings"] != at_default["rankings"]

    def test_timeline_covers_featured_networks(self, serve_service, scenario):
        status, payload = serve_service.handle_url("/timeline")
        assert status == 200
        assert [s["licensee"] for s in payload["series"]] == list(
            scenario.featured_names
        )
        dates = timeline_dates("paper")
        assert payload["dates"] == [d.isoformat() for d in dates]
        for series in payload["series"]:
            assert len(series["latency_ms"]) == len(dates)
            assert len(series["active_licenses"]) == len(dates)

    def test_timeline_single_licensee(self, serve_service, engine, scenario):
        status, payload = serve_service.handle_url(
            "/timeline?licensee=New%20Line%20Networks"
        )
        assert status == 200
        (series,) = payload["series"]
        points = engine.timeline(
            "New Line Networks", timeline_dates("paper"), "CME", "NY4"
        )
        assert series["latency_ms"] == [p.latency_ms for p in points]

    def test_apa_defaults_to_paper_pair(self, serve_service, scenario):
        status, payload = serve_service.handle_url("/apa")
        assert status == 200
        assert payload["licensees"] == ["New Line Networks", "Webline Holdings"]
        assert len(payload["paths"]) == len(tuple(scenario.corridor.paths))
        for row in payload["paths"]:
            for value in row["apa_percent"].values():
                assert 0 <= value <= 100

    def test_search_defaults_to_cme(self, serve_service, scenario):
        status, payload = serve_service.handle_url("/search")
        assert status == 200
        cme = scenario.corridor.site("CME").point
        assert payload["center"] == {
            "latitude": cme.latitude,
            "longitude": cme.longitude,
        }
        assert payload["results"]

    def test_search_active_on_filters(self, serve_service):
        _, everything = serve_service.handle_url("/search")
        _, early = serve_service.handle_url("/search?active_on=2013-06-01")
        assert len(early["results"]) < len(everything["results"])

    def test_map_is_geojson(self, serve_service):
        status, payload = serve_service.handle_url("/map")
        assert status == 200
        assert payload["type"] == "FeatureCollection"
        assert payload["properties"]["licensee"] == "New Line Networks"
        kinds = {f["properties"]["kind"] for f in payload["features"]}
        assert "datacenter" in kinds

    def test_stats_counts_requests(self, scenario):
        from repro.core.engine import CorridorEngine

        fresh = CorridorEngine(scenario.database, scenario.corridor)
        service = CorridorQueryService(scenario=scenario, engine=fresh)
        service.handle_url("/healthz")
        service.handle_url("/rankings?bogus=1")
        _, stats = service.handle_url("/stats")
        assert stats["facade"]["requests"] == 3  # /stats counts itself
        assert stats["facade"]["errors"] == 1
        assert stats["facade"]["in_flight"] == 1  # the /stats call itself
        # Neither /healthz nor a validation failure touches the engine.
        assert stats["engine"]["snapshot_full"] == 0


class TestFaultPaths:
    @pytest.mark.parametrize(
        "url, status, code",
        [
            ("/nope", 404, "unknown-endpoint"),
            ("/rankings?date=not-a-date", 400, "bad-date"),
            ("/rankings?date=2020-13-45", 400, "bad-date"),
            ("/rankings?bogus=1", 400, "unknown-param"),
            ("/rankings?source=LHR", 400, "unknown-site"),
            (f"/rankings?date={(DATE_MIN.replace(year=DATE_MIN.year - 1))}", 400, "date-out-of-range"),
            (f"/apa?date={(DATE_MAX.replace(year=DATE_MAX.year + 1))}", 400, "date-out-of-range"),
            ("/apa?licensee=Nobody%20Networks", 404, "unknown-licensee"),
            ("/timeline?licensee=Nobody", 404, "unknown-licensee"),
            ("/timeline?step=hourly", 400, "bad-step"),
            ("/map?licensee=Nobody", 404, "unknown-licensee"),
            ("/search?lat=ninety", 400, "bad-number"),
            ("/search?lat=91", 400, "bad-number"),
            ("/search?lon=-181", 400, "bad-number"),
            ("/search?radius_m=-5", 400, "bad-number"),
            ("/search?radius_m=inf", 400, "bad-number"),
            ("/search?active_on=yesterday", 400, "bad-date"),
            ("/healthz?x=1", 400, "unknown-param"),
        ],
    )
    def test_structured_4xx(self, serve_service, url, status, code):
        got_status, payload = serve_service.handle_url(url)
        assert got_status == status
        assert payload["error"]["code"] == code
        assert "Traceback" not in payload["error"]["message"]

    def test_handler_crash_becomes_structured_500(self, scenario, engine):
        service = CorridorQueryService(scenario=scenario, engine=engine)
        service.routes["/boom"] = lambda engine, params: 1 / 0
        status, payload = service.handle_url("/boom")
        assert status == 500
        assert payload["error"]["code"] == "internal"
        assert "ZeroDivisionError" in payload["error"]["message"]
        # The service survives: the next request is served normally.
        status, payload = service.handle_url("/healthz")
        assert status == 200

    def test_service_error_payload_roundtrips_json(self):
        error = ServiceError(400, "bad-date", "nope")
        assert json.loads(render_payload(error.payload())) == {
            "error": {"code": "bad-date", "message": "nope"}
        }


class TestRenderPayload:
    def test_canonical_encoding(self):
        assert render_payload({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_byte_equality_is_payload_equality(self, serve_service):
        _, first = serve_service.handle_url("/rankings")
        _, second = serve_service.handle_url("/rankings")
        assert render_payload(first) == render_payload(second)
