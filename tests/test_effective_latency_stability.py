"""Tests for effective latency and ranking-stability analyses."""

from __future__ import annotations

import pytest

from repro.analysis.stability import ranking_stability
from repro.metrics.effective_latency import (
    WeatherLatencyProfile,
    route_availability,
    storm_winner,
    weather_latency_profile,
)


@pytest.fixture(scope="module")
def corridor_points(scenario):
    return (
        scenario.corridor.site("CME").point,
        scenario.corridor.site("NY4").point,
    )


class TestRouteAvailability:
    def test_wh_route_more_available_than_nln(self, nln_network, wh_network):
        nln = route_availability(nln_network, "CME", "NY4")
        wh = route_availability(wh_network, "CME", "NY4")
        assert 0.0 < nln < wh <= 1.0

    def test_wh_availability_is_high(self, wh_network):
        # An all-6 GHz short-hop chain is essentially rain-proof.
        assert route_availability(wh_network, "CME", "NY4") > 0.999

    def test_disconnected_network_zero(self, scenario, reconstructor):
        empty = reconstructor.reconstruct(
            [], scenario.snapshot_date, licensee="Empty"
        )
        assert route_availability(empty, "CME", "NY4") == 0.0


class TestWeatherProfile:
    @pytest.fixture(scope="class")
    def profiles(self, nln_network, wh_network, corridor_points):
        return {
            "NLN": weather_latency_profile(
                nln_network, "CME", "NY4", corridor_points, n_storms=25
            ),
            "WH": weather_latency_profile(
                wh_network, "CME", "NY4", corridor_points, n_storms=25
            ),
        }

    def test_fair_weather_matches_table1(self, profiles):
        assert profiles["NLN"].fair_weather_ms == pytest.approx(3.96171, abs=1e-4)
        assert profiles["WH"].fair_weather_ms == pytest.approx(3.97157, abs=1e-4)

    def test_wh_never_out_nln_often_out(self, profiles):
        assert profiles["WH"].outage_fraction == 0.0
        assert profiles["NLN"].outage_fraction > 0.3

    def test_percentiles_ordered(self, profiles):
        for profile in profiles.values():
            if profile.median_ms is not None and profile.p90_ms is not None:
                assert profile.fair_weather_ms <= profile.median_ms + 1e-9
                assert profile.median_ms <= profile.p90_ms <= profile.worst_ms

    def test_degradation_metric(self, profiles):
        wh = profiles["WH"]
        assert wh.degradation_p90_us is not None
        assert wh.degradation_p90_us < 50.0  # WH barely degrades

    def test_reliability_buyer_picks_wh(self, profiles):
        assert storm_winner(profiles) == "WH"

    def test_validation(self, nln_network, corridor_points):
        with pytest.raises(ValueError):
            weather_latency_profile(
                nln_network, "CME", "NY4", corridor_points, n_storms=0
            )
        with pytest.raises(ValueError):
            storm_winner({})


class TestRankingStability:
    def test_jm_nln_flip_near_paper_estimate(self, scenario):
        report = ranking_stability(scenario, max_overhead_us=3.0)
        flip = next(
            (
                f
                for f in report.flips
                if {f.faster_at_zero, f.slower_at_zero}
                == {"New Line Networks", "Jefferson Microwave"}
            ),
            None,
        )
        assert flip is not None
        assert flip.faster_at_zero == "New Line Networks"
        # Paper §3: "if the per-tower added latency was higher than
        # 1.4 µs, JM would offer lower end-end latency".
        assert flip.crossover_us == pytest.approx(1.42, abs=0.05)

    def test_order_at_zero_matches_table1(self, scenario):
        report = ranking_stability(scenario)
        assert report.order_at_zero[:3] == (
            "New Line Networks",
            "Pierce Broadband",
            "Jefferson Microwave",
        )

    def test_jm_leads_at_high_overhead(self, scenario):
        report = ranking_stability(scenario, max_overhead_us=3.0)
        assert report.order_at_max[0] == "Jefferson Microwave"
        assert not report.stable

    def test_slow_networks_never_flip_into_the_lead(self, scenario):
        report = ranking_stability(scenario, max_overhead_us=3.0)
        leaders = {report.order_at_zero[0], report.order_at_max[0]}
        assert "SW Networks" not in leaders  # 74 towers: overhead only hurts

    def test_validation(self, scenario):
        with pytest.raises(ValueError):
            ranking_stability(scenario, max_overhead_us=0.0)
