"""The headline verification: the calibrated scenario reproduces the
paper's published tables and figures through the measurement pipeline.

Tolerances: latencies are calibrated to ~5 m of path length (≈0.02 µs),
so most assertions are tight; the two documented deviations (JM's APA 71
vs 73, WH's CME–NYSE APA 93 vs 92 — see EXPERIMENTS.md) are asserted at
their measured values to catch regressions.
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro.analysis.tables import (
    table1_connected_networks,
    table2_top_networks,
    table3_apa,
)
from repro.core.timeline import (
    grant_cancellation_activity,
    yearly_snapshot_dates,
)
from repro.analysis.figures import (
    fig1_latency_evolution,
    fig2_active_licenses,
    fig4a_link_length_cdfs,
    fig4b_frequency_cdfs,
)
from repro.metrics.cdf import EmpiricalCdf
from repro.metrics.frequencies import fraction_below_ghz

#: Table 1 of the paper: licensee -> (latency ms, APA %, towers).
PAPER_TABLE1 = {
    "New Line Networks": (3.96171, 54, 25),
    "Pierce Broadband": (3.96209, 7, 29),
    "Jefferson Microwave": (3.96597, 73, 22),
    "Blueline Comm": (3.96940, 0, 29),
    "Webline Holdings": (3.97157, 85, 27),
    "AQ2AT": (4.01101, 0, 29),
    "Wireless Internetwork": (4.12246, 0, 33),
    "GTT Americas": (4.24241, 0, 28),
    "SW Networks": (4.44530, 0, 74),
}

#: Table 2: path -> [(rank-1 licensee, ms), ...].
PAPER_TABLE2 = {
    ("CME", "NY4"): [
        ("New Line Networks", 3.96171),
        ("Pierce Broadband", 3.96209),
        ("Jefferson Microwave", 3.96597),
    ],
    ("CME", "NYSE"): [
        ("New Line Networks", 3.93209),
        ("Jefferson Microwave", 3.94021),
        ("Blueline Comm", 3.95866),
    ],
    ("CME", "NASDAQ"): [
        ("New Line Networks", 3.92728),
        ("Webline Holdings", 3.92805),
        ("Jefferson Microwave", 3.92828),
    ],
}

LATENCY_TOLERANCE_MS = 5e-5  # 0.05 µs ≈ 15 m of path


class TestFunnel:
    def test_57_29_9(self, funnel_result):
        assert funnel_result.counts == (57, 29, 9)

    def test_connected_set_matches_table1(self, funnel_result):
        assert set(funnel_result.connected_licensees) == set(PAPER_TABLE1)


class TestTable1:
    def test_order_latency_and_towers(self, scenario):
        rankings = table1_connected_networks(scenario)
        assert [r.licensee for r in rankings] == list(PAPER_TABLE1)
        for ranking in rankings:
            latency, _, towers = PAPER_TABLE1[ranking.licensee]
            assert ranking.latency_ms == pytest.approx(
                latency, abs=LATENCY_TOLERANCE_MS
            ), ranking.licensee
            assert ranking.tower_count == towers, ranking.licensee

    def test_apa_values(self, scenario):
        measured = {
            r.licensee: r.apa_percent for r in table1_connected_networks(scenario)
        }
        for name, (_, paper_apa, _) in PAPER_TABLE1.items():
            # Documented deviation: JM combinatorics cap at 15/21 = 71%.
            expected = 71 if name == "Jefferson Microwave" else paper_apa
            assert measured[name] == expected, name

    def test_nln_leads_pb_by_04us(self, scenario):
        rankings = table1_connected_networks(scenario)
        gap_us = (rankings[1].latency_ms - rankings[0].latency_ms) * 1e3
        assert gap_us == pytest.approx(0.38, abs=0.1)


class TestTable2:
    def test_all_paths(self, scenario):
        for path_ranking in table2_top_networks(scenario):
            expected = PAPER_TABLE2[(path_ranking.source, path_ranking.target)]
            assert [entry.licensee for entry in path_ranking.top] == [
                name for name, _ in expected
            ]
            for entry, (_, latency) in zip(path_ranking.top, expected):
                assert entry.latency_ms == pytest.approx(
                    latency, abs=LATENCY_TOLERANCE_MS
                )

    def test_geodesic_distances(self, scenario):
        distances = {
            (p.source, p.target): p.geodesic_km
            for p in table2_top_networks(scenario)
        }
        assert distances[("CME", "NY4")] == pytest.approx(1186.0, abs=0.5)
        assert distances[("CME", "NYSE")] == pytest.approx(1174.0, abs=0.5)
        assert distances[("CME", "NASDAQ")] == pytest.approx(1176.0, abs=0.5)

    def test_nasdaq_is_a_photo_finish(self, scenario):
        # Paper §3: NLN's NASDAQ edge over WH is ~0.8 µs; WH-JM is 0.2 µs.
        (nasdaq,) = [
            p for p in table2_top_networks(scenario) if p.target == "NASDAQ"
        ]
        gap_1_2 = (nasdaq.top[1].latency_ms - nasdaq.top[0].latency_ms) * 1e3
        gap_2_3 = (nasdaq.top[2].latency_ms - nasdaq.top[1].latency_ms) * 1e3
        assert gap_1_2 == pytest.approx(0.77, abs=0.1)
        assert gap_2_3 == pytest.approx(0.23, abs=0.1)


class TestTable3:
    def test_apa_nln_vs_wh(self, scenario):
        rows = {row.path: row.values for row in table3_apa(scenario)}
        assert rows[("CME", "NY4")] == {
            "New Line Networks": 54,
            "Webline Holdings": 85,
        }
        assert rows[("CME", "NYSE")]["New Line Networks"] == 58
        # Documented deviation: WH CME-NYSE measures 92 or 93 (paper 92).
        assert rows[("CME", "NYSE")]["Webline Holdings"] in (92, 93)
        assert rows[("CME", "NASDAQ")] == {
            "New Line Networks": 30,
            "Webline Holdings": 80,
        }

    def test_wh_dominates_every_path(self, scenario):
        for row in table3_apa(scenario):
            assert row.values["Webline Holdings"] > row.values["New Line Networks"]


class TestFig1:
    def test_trajectories(self, scenario):
        series = fig1_latency_evolution(scenario)
        by_year = {
            name: {p.date.year: p.latency_ms for p in points}
            for name, points in series.items()
        }
        # 2013 minimum is 4.00 ms (NTC), 2020 minimum is 3.962 (NLN).
        in_2013 = [v[2013] for v in by_year.values() if v[2013] is not None]
        assert min(in_2013) == pytest.approx(4.002, abs=0.002)
        in_2020 = [v[2020] for v in by_year.values() if v[2020] is not None]
        assert min(in_2020) == pytest.approx(3.96171, abs=1e-4)

    def test_ntc_perishes(self, scenario):
        points = fig1_latency_evolution(scenario)["National Tower Company"]
        values = {p.date.year: p.latency_ms for p in points}
        assert values[2016] is not None
        assert values[2018] is None  # gone from the ecosystem

    def test_pb_only_in_2020(self, scenario):
        points = fig1_latency_evolution(scenario)["Pierce Broadband"]
        values = [(p.date.year, p.latency_ms) for p in points]
        assert all(latency is None for year, latency in values if year < 2020)
        assert values[-1][1] == pytest.approx(3.96209, abs=1e-4)

    def test_nln_fastest_by_2018(self, scenario):
        series = fig1_latency_evolution(scenario)
        at_2018 = {
            name: {p.date.year: p.latency_ms for p in points}.get(2018)
            for name, points in series.items()
        }
        connected = {k: v for k, v in at_2018.items() if v is not None}
        assert min(connected, key=connected.get) == "New Line Networks"

    def test_every_network_monotonically_improves(self, scenario):
        for name, points in fig1_latency_evolution(scenario).items():
            values = [p.latency_ms for p in points if p.latency_ms is not None]
            assert all(a >= b - 1e-9 for a, b in zip(values, values[1:])), name


class TestFig2:
    def test_count_shapes(self, scenario):
        series = fig2_active_licenses(scenario)
        nln = dict(series["New Line Networks"].as_pairs())
        assert nln[dt.date(2016, 1, 1)] == 95  # paper: 95 active on 2016-01-01
        ntc = dict(series["National Tower Company"].as_pairs())
        assert ntc[dt.date(2015, 1, 1)] == 160
        assert ntc[dt.date(2018, 1, 1)] == 0
        assert 60 <= ntc[dt.date(2017, 1, 1)] <= 85  # mid-wind-down (paper ~71)

    def test_nln_2015_grant_burst(self, scenario):
        # §4: NLN's 2015 licensing burst takes it from 40 active licenses
        # on 2015-01-01 to 95 on 2016-01-01 (+55 net).  Gross grants
        # exceed the net because era transitions also churn licenses —
        # the same grants-plus-cancellations pattern §4 notes for NTC.
        series = fig2_active_licenses(scenario)["New Line Networks"]
        counts = dict(series.as_pairs())
        assert counts[dt.date(2016, 1, 1)] - counts[dt.date(2015, 1, 1)] == 55
        grants, _ = grant_cancellation_activity(
            scenario.database, "New Line Networks", 2015
        )
        assert grants >= 55

    def test_pb_smallest_active_count(self, scenario):
        series = fig2_active_licenses(scenario)
        final = {
            name: counts.counts[-1]
            for name, counts in series.items()
            if name != "National Tower Company"
        }
        assert min(final, key=final.get) == "Pierce Broadband"
        assert final["Pierce Broadband"] == 34

    def test_counts_never_negative(self, scenario):
        for series in fig2_active_licenses(scenario).values():
            assert all(count >= 0 for count in series.counts)


class TestFig4:
    def test_link_length_medians(self, scenario):
        samples = fig4a_link_length_cdfs(scenario)
        wh = EmpiricalCdf(samples["Webline Holdings"])
        nln = EmpiricalCdf(samples["New Line Networks"])
        assert wh.median == pytest.approx(36.0, abs=2.5)
        assert nln.median == pytest.approx(48.5, abs=2.5)
        # Paper: WH's median is ~26% lower.
        assert (nln.median - wh.median) / nln.median == pytest.approx(0.26, abs=0.08)

    def test_frequency_profiles(self, scenario):
        samples = fig4b_frequency_cdfs(scenario)
        assert fraction_below_ghz(samples["WH"], 7.0) > 0.94
        assert fraction_below_ghz(samples["NLN"], 7.0) == 0.0
        assert fraction_below_ghz(samples["NLN-alternate"], 7.0) >= 0.18
        # NLN's trunk is in the 11 GHz band.
        assert all(10.5 <= f <= 12.0 for f in samples["NLN"])


class TestScenarioHygiene:
    def test_deterministic_rebuild(self, scenario):
        from repro.synth.scenario import build_scenario

        rebuilt = build_scenario()
        assert len(rebuilt.database) == len(scenario.database)
        a = sorted(lic.license_id for lic in scenario.database)
        b = sorted(lic.license_id for lic in rebuilt.database)
        assert a == b

    def test_snapshot_grid_includes_final_date(self, scenario):
        dates = yearly_snapshot_dates()
        assert dates[-1] == scenario.snapshot_date

    def test_featured_names_exist(self, scenario):
        for name in scenario.featured_names:
            assert scenario.database.licenses_for(name), name
