"""The disabled path adds nothing: no output changes, no API changes.

Two regression nets around the obs layer's core guarantee:

* **Byte-identical results** — a subprocess running the timeline sweep
  with observation enabled (``--trace``/``--metrics``) produces stdout
  byte-identical to a plain run; traces and metrics only ever go to the
  trace file and stderr.
* **No API surface** — instrumentation wraps bodies; it never threads
  parameters through hot functions.  The signatures of every hot-path
  callable are pinned here so an instrumentation change that touches one
  fails loudly.
"""

from __future__ import annotations

import inspect
import os
import subprocess
import sys
from pathlib import Path

import pytest

PROJECT_ROOT = Path(__file__).resolve().parents[1]


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=PROJECT_ROOT,
    )


class TestBitIdenticalOutput:
    def test_timeline_stdout_identical_under_observation(self, tmp_path):
        plain = run_cli("timeline")
        observed = run_cli(
            "timeline", "--trace", str(tmp_path / "trace.jsonl"), "--metrics"
        )
        assert plain.returncode == observed.returncode == 0
        assert observed.stdout == plain.stdout  # byte-identical results
        assert "metrics summary:" in observed.stderr
        assert "metrics summary:" not in plain.stderr

    def test_table1_stdout_identical_under_observation(self, tmp_path):
        plain = run_cli("table1")
        observed = run_cli("table1", "--trace", str(tmp_path / "t.jsonl"))
        assert plain.returncode == observed.returncode == 0
        assert observed.stdout == plain.stdout


#: Hot-path callables -> their pinned signatures.  The obs layer's
#: disabled-path promise includes "no public API surface": spans wrap
#: function bodies, so instrumenting a function must never change its
#: signature.  Update this table only for a deliberate API change.
PINNED_SIGNATURES = {
    "repro.core.engine.CorridorEngine.snapshot": (
        "(self, licensee: 'str', on_date: 'dt.date') -> 'HftNetwork'"
    ),
    "repro.core.engine.CorridorEngine.snapshot_from_licenses": (
        "(self, licenses: 'Iterable[License]', on_date: 'dt.date', "
        "licensee: 'str | None' = None) -> 'HftNetwork'"
    ),
    "repro.core.engine.CorridorEngine.route": (
        "(self, licensee: 'str', on_date: 'dt.date', source: 'str', "
        "target: 'str') -> 'Route | None'"
    ),
    "repro.core.engine.CorridorEngine.timeline": (
        "(self, licensee: 'str', dates: 'Sequence[dt.date]', "
        "source: 'str | None' = None, target: 'str | None' = None) "
        "-> 'list[TimelinePoint]'"
    ),
    "repro.core.reconstruction.NetworkReconstructor.reconstruct": (
        "(self, licenses: 'Iterable[License]', on_date: 'dt.date', "
        "licensee: 'str | None' = None) -> 'HftNetwork'"
    ),
    "repro.core.reconstruction.stitch_licenses": (
        "(licenses: 'list[License]', tolerance_m: 'float' = 30.0) "
        "-> 'tuple[list[Tower], list[MicrowaveLink]]'"
    ),
    "repro.core.reconstruction.attach_fiber_tails": (
        "(data_centers: 'Iterable[DataCenterSite]', "
        "towers: 'Iterable[Tower]', max_tail_m: 'float' = 50000.0, "
        "mode: 'str' = 'nearest') -> 'list[FiberTail]'"
    ),
    "repro.core.network.HftNetwork.lowest_latency_route": (
        "(self, source: 'str', target: 'str') -> 'Route | None'"
    ),
    "repro.geodesy.memo.GeodesicMemo.lookup": (
        "(self, key: 'tuple[float, float, float, float]') "
        "-> 'InverseSolution | None'"
    ),
    "repro.geodesy.memo.GeodesicMemo.store": (
        "(self, key: 'tuple[float, float, float, float]', "
        "solution: 'InverseSolution') -> 'None'"
    ),
}


def _resolve(dotted: str):
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            module = __import__(module_name, fromlist=["_"])
        except ImportError:
            continue
        obj = module
        for attr in parts[split:]:
            obj = getattr(obj, attr)
        return obj
    raise ImportError(dotted)


class TestNoApiSurface:
    @pytest.mark.parametrize("dotted", sorted(PINNED_SIGNATURES))
    def test_hot_function_signature_unchanged(self, dotted):
        assert (
            str(inspect.signature(_resolve(dotted)))
            == PINNED_SIGNATURES[dotted]
        ), f"{dotted} signature changed (obs must not add parameters)"

    def test_noop_span_is_a_singleton(self):
        from repro import obs
        from repro.obs.spans import _NOOP

        assert obs.span("x") is obs.span("y") is _NOOP
