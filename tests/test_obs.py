"""Unit tests for the repro.obs tracing + metrics layer."""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs.metrics import _validate_name
from repro.obs.spans import _NOOP, _STATE


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()
        assert obs.get_registry() is None

    def test_span_returns_shared_noop(self):
        first = obs.span("engine.snapshot", licensee="NLN")
        second = obs.span("core.stitch")
        assert first is second is _NOOP

    def test_noop_span_supports_protocol(self):
        with obs.span("a.b", x=1) as sp:
            assert sp.tag(y=2) is sp

    def test_counters_are_noops_when_disabled(self):
        obs.count("engine.snapshot.hit")
        obs.observe("span.x.us", 1.0)
        obs.set_gauge("cache.size", 3)
        assert obs.get_registry() is None

    def test_disabled_span_records_nothing(self):
        sink = obs.InMemorySink()
        with obs.span("a.b"):
            pass
        assert sink.records == []


class TestSpanNesting:
    def test_parent_child_depth_and_ids(self):
        with obs.capture() as cap:
            with obs.span("outer"):
                with obs.span("inner.first"):
                    pass
                with obs.span("inner.second"):
                    pass
        # Completion order: children before parents.
        assert cap.sink.names() == ["inner.first", "inner.second", "outer"]
        # Start order: the flattened tree.
        assert cap.sink.tree() == [
            (0, "outer"), (1, "inner.first"), (1, "inner.second"),
        ]
        by_name = {record.name: record for record in cap.spans}
        outer = by_name["outer"]
        assert outer.parent_id is None and outer.depth == 0
        for name in ("inner.first", "inner.second"):
            assert by_name[name].parent_id == outer.span_id
            assert by_name[name].depth == 1

    def test_attrs_and_tagging(self):
        with obs.capture() as cap:
            with obs.span("engine.route", licensee="NLN") as sp:
                sp.tag(cache="hit")
        (record,) = cap.spans
        assert record.attrs == (("licensee", "NLN"), ("cache", "hit"))

    def test_exception_tags_error_and_propagates(self):
        with obs.capture() as cap:
            with pytest.raises(KeyError):
                with obs.span("engine.snapshot"):
                    raise KeyError("boom")
        (record,) = cap.spans
        assert ("error", "KeyError") in record.attrs

    def test_span_durations_feed_histograms(self):
        with obs.capture() as cap:
            with obs.span("a.b"):
                pass
        hist = cap.registry.snapshot()["histograms"]["span.a.b.us"]
        assert hist["count"] == 1
        assert hist["min"] >= 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=6))
    def test_nesting_and_timing_monotonicity(self, widths):
        """However spans nest, child intervals sit inside their parent's
        interval and every duration is non-negative."""
        with obs.capture() as cap:
            def recurse(level):
                if level >= len(widths):
                    return
                for i in range(widths[level]):
                    with obs.span(f"level{level}.child{i}"):
                        recurse(level + 1)

            with obs.span("root"):
                recurse(0)

        by_id = {record.span_id: record for record in cap.spans}
        for record in cap.spans:
            assert record.duration_us >= 0.0
            if record.parent_id is not None:
                parent = by_id[record.parent_id]
                assert record.depth == parent.depth + 1
                assert record.start_us >= parent.start_us
                assert (
                    record.start_us + record.duration_us
                    <= parent.start_us + parent.duration_us + 1e-6
                )

    def test_span_ids_unique_and_increasing_in_start_order(self):
        with obs.capture() as cap:
            for _ in range(3):
                with obs.span("a"):
                    with obs.span("b"):
                        pass
        ids = [r.span_id for r in sorted(cap.spans, key=lambda r: r.start_us)]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)


class TestSessionSemantics:
    def test_enable_twice_raises(self):
        with obs.capture():
            with pytest.raises(RuntimeError):
                obs.enable()

    def test_capture_restores_previous_state(self):
        assert not obs.is_enabled()
        with obs.capture() as outer:
            obs.count("outer.n")
            with obs.capture() as inner:
                obs.count("inner.n")
            # Inner session fully isolated, outer restored.
            assert inner.counters() == {"inner.n": 1}
            assert obs.get_registry() is outer.registry
            obs.count("outer.n")
        assert outer.counters() == {"outer.n": 2}
        assert not obs.is_enabled()

    def test_capture_restores_on_exception(self):
        with pytest.raises(ValueError):
            with obs.capture():
                raise ValueError("boom")
        assert not obs.is_enabled()
        assert _STATE.stack == []

    def test_disable_returns_registry(self):
        registry = obs.enable()
        obs.count("x.y")
        assert obs.disable() is registry
        assert registry.counter("x.y").value == 1
        assert obs.disable() is None

    def test_count_and_gauge_reach_registry(self):
        with obs.capture() as cap:
            obs.count("uls.scraper.page.detail", 3)
            obs.set_gauge("engine.cache.size", 7)
            obs.observe("geodesy.memo.lookup.us", 2.5)
        snap = cap.registry.snapshot()
        assert snap["counters"]["uls.scraper.page.detail"] == 3
        assert snap["gauges"]["engine.cache.size"] == 7
        assert snap["histograms"]["geodesy.memo.lookup.us"]["count"] == 1


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        registry = obs.MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.histogram("c.d") is registry.histogram("c.d")
        assert len(registry) == 2

    def test_cross_type_name_conflict_raises(self):
        registry = obs.MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("a.b")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a.b")

    def test_name_validation(self):
        registry = obs.MetricsRegistry()
        for bad in ("", ".", "a..b", " a.b", "a.b."):
            with pytest.raises(ValueError):
                registry.counter(bad)
        assert _validate_name("layer.component.event")

    def test_counter_rejects_negative(self):
        counter = obs.MetricsRegistry().counter("a.b")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_histogram_summary(self):
        hist = obs.MetricsRegistry().histogram("a.b")
        assert hist.summary() == {
            "count": 0, "sum": 0.0, "min": None, "max": None, "mean": None,
        }
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist.summary() == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_reset_keeps_instruments_alive(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("a.b") is counter
        counter.inc()
        assert registry.snapshot()["counters"]["a.b"] == 1

    def test_snapshot_is_sorted_and_json_serialisable(self):
        registry = obs.MetricsRegistry()
        registry.counter("b.z").inc()
        registry.counter("a.y").inc()
        registry.histogram("c.x").observe(1)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.y", "b.z"]
        json.dumps(snap)  # must not raise

    def test_render_metrics(self):
        registry = obs.MetricsRegistry()
        registry.counter("engine.snapshot.hit").inc(4)
        registry.gauge("cache.size").set(2)
        registry.histogram("span.a.us").observe(1.5)
        text = obs.render_metrics(registry)
        assert text.startswith("metrics summary:")
        assert "engine.snapshot.hit" in text and "4" in text
        assert "count=1" in text
        empty = obs.render_metrics(obs.MetricsRegistry())
        assert "(no metrics recorded)" in empty


class TestJsonLinesSink:
    def test_schema_header_and_key_order(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.capture(extra_sinks=(obs.JsonLinesSink(path),)):
            with obs.span("engine.snapshot", licensee="NLN"):
                pass
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {
            "type": "trace", "version": obs.TRACE_SCHEMA_VERSION,
        }
        entry = json.loads(lines[1])
        # Key order IS the schema: a reorder is a version bump.
        assert tuple(entry) == obs.SPAN_LINE_KEYS
        assert entry["name"] == "engine.snapshot"
        assert entry["attrs"] == {"licensee": "NLN"}

    def test_schema_version_pinned(self):
        # Bumping the version or the line keys requires updating every
        # consumer (read_trace, benchmarks); this test makes the bump loud.
        assert obs.TRACE_SCHEMA_VERSION == 1
        assert obs.SPAN_LINE_KEYS == (
            "type", "id", "parent", "depth", "name",
            "start_us", "duration_us", "attrs",
        )

    def test_non_json_attrs_coerced_to_str(self):
        stream = io.StringIO()
        sink = obs.JsonLinesSink(stream)
        record = obs.SpanRecord(
            span_id=1, parent_id=None, depth=0, name="a.b",
            start_us=0.0, duration_us=1.0,
            attrs=(("path", object()),),
        )
        sink.emit(record)
        sink.close()
        entry = json.loads(stream.getvalue().splitlines()[1])
        assert isinstance(entry["attrs"]["path"], str)

    def test_read_trace_round_trip(self, tmp_path):
        path = tmp_path / "out" / "trace.jsonl"  # parent dir is created
        with obs.capture(extra_sinks=(obs.JsonLinesSink(path),)):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        spans = obs.read_trace(path)
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["parent"] == outer["id"]

    def test_read_trace_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"span"}\n')
        with pytest.raises(ValueError, match="not a trace header"):
            obs.read_trace(path)
        path.write_text('{"type":"trace","version":99}\n')
        with pytest.raises(ValueError, match="version"):
            obs.read_trace(path)
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            obs.read_trace(path)


class TestTextSummarySink:
    def test_aggregates_per_name(self):
        sink = obs.TextSummarySink()
        with obs.capture(extra_sinks=(sink,)):
            for _ in range(3):
                with obs.span("a.b"):
                    pass
        text = sink.render()
        assert "span summary" in text
        assert "n=3" in text and "a.b" in text

    def test_close_writes_to_stream(self):
        stream = io.StringIO()
        sink = obs.TextSummarySink(stream)
        with obs.capture(extra_sinks=(sink,)):
            with obs.span("a.b"):
                pass
        sink.close()
        assert "a.b" in stream.getvalue()

    def test_empty_summary(self):
        assert "(no spans recorded)" in obs.TextSummarySink().render()
