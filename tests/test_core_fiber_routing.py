"""Tests for fiber-tail attachment and near-optimal routing."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.corridor import DataCenterSite
from repro.core.fiber import attach_fiber_tails
from repro.core.network import Tower
from repro.core.routing import (
    PathExplosionError,
    alternate_edges,
    edges_within_latency_bound,
    enumerate_paths_within_bound,
    path_edges,
)
from repro.geodesy import GeoPoint, geodesic_destination

DC = DataCenterSite("CME", GeoPoint(41.75, -88.00))


def _tower(name: str, bearing: float, distance_m: float) -> Tower:
    return Tower(name, geodesic_destination(DC.point, bearing, distance_m))


class TestFiberTails:
    def test_nearest_mode_attaches_one_tail(self):
        towers = [_tower("a", 90.0, 1_000.0), _tower("b", 90.0, 20_000.0)]
        tails = attach_fiber_tails([DC], towers, mode="nearest")
        assert len(tails) == 1
        assert tails[0].tower_id == "a"
        assert tails[0].length_m == pytest.approx(1_000.0, abs=0.5)

    def test_all_mode_attaches_every_tower_in_range(self):
        towers = [
            _tower("a", 90.0, 1_000.0),
            _tower("b", 90.0, 20_000.0),
            _tower("c", 90.0, 60_000.0),  # beyond 50 km
        ]
        tails = attach_fiber_tails([DC], towers, mode="all")
        assert {tail.tower_id for tail in tails} == {"a", "b"}

    def test_out_of_range_unattached(self):
        tails = attach_fiber_tails([DC], [_tower("far", 90.0, 51_000.0)])
        assert tails == []

    def test_custom_radius(self):
        tails = attach_fiber_tails(
            [DC], [_tower("far", 90.0, 51_000.0)], max_tail_m=60_000.0
        )
        assert len(tails) == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            attach_fiber_tails([DC], [], max_tail_m=-1.0)
        with pytest.raises(ValueError):
            attach_fiber_tails([DC], [], mode="some")


def _ladder_graph() -> nx.Graph:
    """s - a - b - t with a parallel bypass a - x - b, plus a dead-end spur.

    Latencies: direct a-b = 10; bypass a-x-b = 6+6=12; spur b-d = 1.
    """
    graph = nx.Graph()
    for u, v, latency in [
        ("s", "a", 5.0),
        ("a", "b", 10.0),
        ("b", "t", 5.0),
        ("a", "x", 6.0),
        ("x", "b", 6.0),
        ("b", "d", 1.0),
    ]:
        graph.add_edge(u, v, latency_s=latency, medium="microwave", length_m=latency)
    return graph


class TestBoundedEnumeration:
    def test_finds_both_paths_within_generous_bound(self):
        paths = enumerate_paths_within_bound(_ladder_graph(), "s", "t", 25.0)
        assert [p.nodes for p in paths] == [
            ("s", "a", "b", "t"),
            ("s", "a", "x", "b", "t"),
        ]
        assert paths[0].latency_s == 20.0
        assert paths[1].latency_s == 22.0

    def test_tight_bound_excludes_bypass(self):
        paths = enumerate_paths_within_bound(_ladder_graph(), "s", "t", 21.0)
        assert len(paths) == 1

    def test_unreachable_bound(self):
        assert enumerate_paths_within_bound(_ladder_graph(), "s", "t", 19.0) == []

    def test_missing_nodes(self):
        assert enumerate_paths_within_bound(_ladder_graph(), "s", "zz", 100.0) == []

    def test_explosion_cap(self):
        # A chain of n diamonds has 2^n shortest-ish paths.
        graph = nx.Graph()
        previous = "n0"
        for index in range(14):
            top, bottom, nxt = f"t{index}", f"b{index}", f"n{index + 1}"
            for u, v in [(previous, top), (previous, bottom), (top, nxt), (bottom, nxt)]:
                graph.add_edge(u, v, latency_s=1.0, medium="microwave", length_m=1.0)
            previous = nxt
        with pytest.raises(PathExplosionError):
            enumerate_paths_within_bound(graph, "n0", previous, 1e9, max_paths=1000)


class TestEdgeCriterion:
    def test_matches_enumeration_on_ladder(self):
        graph = _ladder_graph()
        bound = 25.0
        from_enumeration = set()
        for path in enumerate_paths_within_bound(graph, "s", "t", bound):
            from_enumeration |= path_edges(path.nodes)
        assert edges_within_latency_bound(graph, "s", "t", bound) == from_enumeration

    def test_dead_end_spur_excluded(self):
        edges = edges_within_latency_bound(_ladder_graph(), "s", "t", 100.0)
        assert frozenset(("b", "d")) not in edges

    def test_tight_bound_excludes_bypass_edges(self):
        edges = edges_within_latency_bound(_ladder_graph(), "s", "t", 21.0)
        assert edges == {
            frozenset(("s", "a")),
            frozenset(("a", "b")),
            frozenset(("b", "t")),
        }

    def test_alternate_edges_are_off_shortest_path(self):
        graph = _ladder_graph()
        shortest = ("s", "a", "b", "t")
        alternates = alternate_edges(graph, "s", "t", 25.0, shortest)
        assert alternates == {frozenset(("a", "x")), frozenset(("x", "b"))}

    def test_empty_when_nodes_missing(self):
        assert edges_within_latency_bound(_ladder_graph(), "zz", "t", 10.0) == set()


class TestEdgeCriterionProperty:
    """The polynomial edge criterion vs exact enumeration, randomised."""

    @staticmethod
    def _random_layered_graph(rng_seed: int):
        """A corridor-shaped random graph: layered west→east with skip
        links, plus random dead-end stubs."""
        import random as _random

        import networkx as _nx

        rng = _random.Random(rng_seed)
        graph = _nx.Graph()
        layers = rng.randint(3, 6)
        width = rng.randint(1, 3)
        nodes_by_layer = [["s"]]
        for layer in range(1, layers):
            nodes_by_layer.append([f"n{layer}_{i}" for i in range(width)])
        nodes_by_layer.append(["t"])
        for a_layer, b_layer in zip(nodes_by_layer, nodes_by_layer[1:]):
            for a in a_layer:
                for b in b_layer:
                    if rng.random() < 0.8:
                        graph.add_edge(
                            a, b,
                            latency_s=rng.uniform(1.0, 5.0),
                            medium="microwave",
                            length_m=1.0,
                        )
        # Dead-end stubs that must never appear in near-optimal sets.
        for index in range(rng.randint(0, 3)):
            anchor_layer = rng.choice(nodes_by_layer[1:-1])
            anchor = rng.choice(anchor_layer)
            graph.add_edge(
                anchor, f"stub{index}",
                latency_s=0.1, medium="microwave", length_m=1.0,
            )
        return graph

    @given(st.integers(0, 500), st.floats(1.0, 1.6))
    @settings(max_examples=60, deadline=None)
    def test_matches_enumeration(self, seed, slack):
        from hypothesis import assume

        graph = self._random_layered_graph(seed)
        assume("s" in graph and "t" in graph and nx.has_path(graph, "s", "t"))
        best = nx.dijkstra_path_length(graph, "s", "t", weight="latency_s")
        bound = best * slack
        exact_edges = set()
        for path in enumerate_paths_within_bound(graph, "s", "t", bound):
            exact_edges |= path_edges(path.nodes)
        criterion_edges = edges_within_latency_bound(graph, "s", "t", bound)
        # The criterion is sound (never misses a real edge); on layered
        # graphs, where partial paths cannot share interior nodes
        # accidentally, it is exact.
        assert exact_edges <= criterion_edges
        assert criterion_edges == exact_edges
